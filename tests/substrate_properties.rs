//! Property-based tests over the substrates, spanning crates.

use proptest::prelude::*;
use vega_cpplite::{lex, parse_stmts, render_stmts, Token};
use vega_model::{pieces_to_spellings, spellings_to_source, tokens_to_pieces};
use vega_treediff::{align_sequences, align_stmts, lcs_indices, lcs_similarity};

/// A strategy over small identifier names.
fn ident() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9_]{0,12}".prop_filter("keywords excluded", |s| {
        !matches!(
            s.as_str(),
            "if" | "else" | "switch" | "case" | "default" | "return" | "break" | "while" | "for"
                | "true" | "false" | "nullptr" | "const"
        )
    })
}

/// A strategy over simple statements.
fn simple_stmt() -> impl Strategy<Value = String> {
    (ident(), ident(), 0i64..10000).prop_map(|(a, b, n)| format!("{a} = {b} + {n};"))
}

/// A strategy over small statement forests (with nesting).
fn stmt_block(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        simple_stmt().boxed()
    } else {
        prop_oneof![
            simple_stmt(),
            (ident(), stmt_block(depth - 1)).prop_map(|(c, b)| format!("if ({c}) {{ {b} }}")),
            (ident(), 0i64..50, stmt_block(depth - 1), stmt_block(depth - 1)).prop_map(
                |(s, k, a, b)| format!(
                    "switch ({s}) {{ case {k}: {a} break; default: {b} break; }}"
                )
            ),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse → render → parse is the identity on the statement AST.
    #[test]
    fn parse_render_roundtrip(blocks in prop::collection::vec(stmt_block(2), 1..4)) {
        let src = blocks.join(" ");
        let stmts = parse_stmts(&src).expect("generated source parses");
        let printed = render_stmts(&stmts, 0);
        let reparsed = parse_stmts(&printed).expect("printed source parses");
        prop_assert_eq!(stmts, reparsed);
    }

    /// Subword pieces reassemble to the exact token spellings.
    #[test]
    fn subtok_roundtrip(blocks in prop::collection::vec(simple_stmt(), 1..4)) {
        let src = blocks.join(" ");
        let toks = lex(&src).unwrap();
        let pieces = tokens_to_pieces(&toks);
        let spell = pieces_to_spellings(&pieces);
        let rejoined = spellings_to_source(&spell);
        prop_assert_eq!(lex(&rejoined).unwrap(), toks);
    }

    /// LCS length is symmetric, bounded, and its pairs are strictly monotone.
    #[test]
    fn lcs_is_sane(a in prop::collection::vec(0u8..6, 0..24),
                   b in prop::collection::vec(0u8..6, 0..24)) {
        let ab = lcs_indices(&a, &b, |x, y| x == y);
        let ba = lcs_indices(&b, &a, |x, y| x == y);
        prop_assert_eq!(ab.len(), ba.len());
        prop_assert!(ab.len() <= a.len().min(b.len()));
        for w in ab.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        for (i, j) in &ab {
            prop_assert_eq!(a[*i], b[*j]);
        }
        let sim = lcs_similarity(&a, &b, |x, y| x == y);
        prop_assert!((0.0..=1.0).contains(&sim));
        let self_sim = lcs_similarity(&a, &a, |x, y| x == y);
        prop_assert!((self_sim - 1.0).abs() < 1e-12);
    }

    /// Weighted alignment never pairs below the threshold and is monotone.
    #[test]
    fn alignment_respects_threshold(a in prop::collection::vec(0i32..8, 0..16),
                                    b in prop::collection::vec(0i32..8, 0..16)) {
        let sim = |x: &i32, y: &i32| 1.0 - (x - y).abs() as f64 / 8.0;
        let pairs = align_sequences(&a, &b, sim, 0.8);
        for (i, j) in &pairs {
            prop_assert!(sim(&a[*i], &b[*j]) >= 0.8);
        }
        for w in pairs.windows(2) {
            prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }

    /// Aligning a forest with itself matches every statement.
    #[test]
    fn self_alignment_is_total(blocks in prop::collection::vec(stmt_block(2), 1..4)) {
        let src = blocks.join(" ");
        let stmts = parse_stmts(&src).unwrap();
        let al = align_stmts(&stmts, &stmts);
        prop_assert_eq!(al.pairs.len(), al.left_len);
        prop_assert!(al.pairs.iter().all(|(l, r)| l == r));
    }

    /// The lexer never loses integer values.
    #[test]
    fn lexer_preserves_ints(v in 0i64..1_000_000_000) {
        let toks = lex(&format!("x = {v};")).unwrap();
        prop_assert!(toks.contains(&Token::Int(v)));
    }
}
