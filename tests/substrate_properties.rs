//! Property-based tests over the substrates, spanning crates.
//!
//! Inputs are drawn from the deterministic [`Mix64`] generator (the same one
//! the corpus uses), so the 96 cases per property are identical on every run
//! and no external property-testing crate is needed.

use vega_corpus::Mix64;
use vega_cpplite::{lex, parse_stmts, render_stmts, Token};
use vega_model::{pieces_to_spellings, spellings_to_source, tokens_to_pieces};
use vega_treediff::{align_sequences, align_stmts, lcs_indices, lcs_similarity};

const CASES: u64 = 96;

const KEYWORDS: &[&str] = &[
    "if", "else", "switch", "case", "default", "return", "break", "while", "for", "true", "false",
    "nullptr", "const",
];

/// A small identifier, never a keyword.
fn ident(rng: &mut Mix64) -> String {
    loop {
        let len = rng.range(1, 13) as usize;
        let mut s = String::with_capacity(len);
        const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
        const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
        s.push(*rng.pick(FIRST) as char);
        for _ in 1..len {
            s.push(*rng.pick(REST) as char);
        }
        if !KEYWORDS.contains(&s.as_str()) {
            return s;
        }
    }
}

/// A simple assignment statement.
fn simple_stmt(rng: &mut Mix64) -> String {
    format!("{} = {} + {};", ident(rng), ident(rng), rng.below(10000))
}

/// A statement block with nesting up to `depth`.
fn stmt_block(rng: &mut Mix64, depth: u32) -> String {
    if depth == 0 {
        return simple_stmt(rng);
    }
    match rng.below(3) {
        0 => simple_stmt(rng),
        1 => format!("if ({}) {{ {} }}", ident(rng), stmt_block(rng, depth - 1)),
        _ => format!(
            "switch ({}) {{ case {}: {} break; default: {} break; }}",
            ident(rng),
            rng.below(50),
            stmt_block(rng, depth - 1),
            stmt_block(rng, depth - 1)
        ),
    }
}

/// A source snippet of 1–3 top-level blocks.
fn source(rng: &mut Mix64) -> String {
    let n = rng.range(1, 3);
    (0..n)
        .map(|_| stmt_block(rng, 2))
        .collect::<Vec<_>>()
        .join(" ")
}

fn byte_vec(rng: &mut Mix64, max_len: u64, bound: u64) -> Vec<u8> {
    (0..rng.below(max_len))
        .map(|_| rng.below(bound) as u8)
        .collect()
}

/// parse → render → parse is the identity on the statement AST.
#[test]
fn parse_render_roundtrip() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "parse_render_roundtrip");
        let src = source(&mut rng);
        let stmts = parse_stmts(&src).expect("generated source parses");
        let printed = render_stmts(&stmts, 0);
        let reparsed = parse_stmts(&printed).expect("printed source parses");
        assert_eq!(stmts, reparsed, "case {case}: {src}");
    }
}

/// Subword pieces reassemble to the exact token spellings.
#[test]
fn subtok_roundtrip() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "subtok_roundtrip");
        let n = rng.range(1, 3);
        let src = (0..n)
            .map(|_| simple_stmt(&mut rng))
            .collect::<Vec<_>>()
            .join(" ");
        let toks = lex(&src).unwrap();
        let pieces = tokens_to_pieces(&toks);
        let spell = pieces_to_spellings(&pieces);
        let rejoined = spellings_to_source(&spell);
        assert_eq!(lex(&rejoined).unwrap(), toks, "case {case}: {src}");
    }
}

/// LCS length is symmetric, bounded, and its pairs are strictly monotone.
#[test]
fn lcs_is_sane() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "lcs_is_sane");
        let a = byte_vec(&mut rng, 24, 6);
        let b = byte_vec(&mut rng, 24, 6);
        let ab = lcs_indices(&a, &b, |x, y| x == y);
        let ba = lcs_indices(&b, &a, |x, y| x == y);
        assert_eq!(ab.len(), ba.len());
        assert!(ab.len() <= a.len().min(b.len()));
        for w in ab.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
        for (i, j) in &ab {
            assert_eq!(a[*i], b[*j]);
        }
        let sim = lcs_similarity(&a, &b, |x, y| x == y);
        assert!((0.0..=1.0).contains(&sim));
        let self_sim = lcs_similarity(&a, &a, |x, y| x == y);
        assert!((self_sim - 1.0).abs() < 1e-12);
    }
}

/// Weighted alignment never pairs below the threshold and is monotone.
#[test]
fn alignment_respects_threshold() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "alignment_respects_threshold");
        let a: Vec<i32> = (0..rng.below(16)).map(|_| rng.below(8) as i32).collect();
        let b: Vec<i32> = (0..rng.below(16)).map(|_| rng.below(8) as i32).collect();
        let sim = |x: &i32, y: &i32| 1.0 - (x - y).abs() as f64 / 8.0;
        let pairs = align_sequences(&a, &b, sim, 0.8);
        for (i, j) in &pairs {
            assert!(sim(&a[*i], &b[*j]) >= 0.8);
        }
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }
}

/// Aligning a forest with itself matches every statement.
#[test]
fn self_alignment_is_total() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "self_alignment_is_total");
        let src = source(&mut rng);
        let stmts = parse_stmts(&src).unwrap();
        let al = align_stmts(&stmts, &stmts);
        assert_eq!(al.pairs.len(), al.left_len, "case {case}: {src}");
        assert!(al.pairs.iter().all(|(l, r)| l == r));
    }
}

/// The lexer never loses integer values.
#[test]
fn lexer_preserves_ints() {
    for case in 0..CASES {
        let mut rng = Mix64::keyed(case, "lexer_preserves_ints");
        let v = rng.below(1_000_000_000) as i64;
        let toks = lex(&format!("x = {v};")).unwrap();
        assert!(toks.contains(&Token::Int(v)), "case {case}: {v}");
    }
}
