//! Cross-crate invariants over the corpus: description-file conventions,
//! template construction for every group, and feature discovery coverage.

use std::collections::BTreeMap;
use vega::{prop_catalog, select_features, FunctionTemplate, TgtIndex};
use vega_corpus::{Corpus, CorpusConfig, Module, EVAL_TARGET_NAMES};

fn corpus() -> Corpus {
    Corpus::build(&CorpusConfig::tiny())
}

#[test]
fn every_target_has_conventional_description_files() {
    let c = corpus();
    for t in c.targets() {
        let ns = &t.spec.name;
        for file in [
            format!("lib/Target/{ns}/{ns}.td"),
            format!("lib/Target/{ns}/{ns}InstrInfo.td"),
            format!("lib/Target/{ns}/{ns}RegisterInfo.td"),
            format!("lib/Target/{ns}/{ns}FixupKinds.h"),
            format!("llvm/BinaryFormat/ELFRelocs/{ns}.def"),
        ] {
            assert!(t.descriptions.read(&file).is_some(), "{ns} missing {file}");
        }
        // The Name anchor the motivating example depends on.
        let td = t
            .descriptions
            .read(&format!("lib/Target/{ns}/{ns}.td"))
            .unwrap();
        assert!(
            td.contains(&format!("Name = \"{ns}\"")),
            "{ns}: Name anchor"
        );
    }
}

#[test]
fn every_function_group_folds_into_a_template() {
    let c = corpus();
    let catalog = prop_catalog(c.llvm_fs());
    let mut ixs: BTreeMap<String, TgtIndex> = BTreeMap::new();
    for t in c.training_targets() {
        ixs.insert(t.spec.name.clone(), TgtIndex::build(&t.descriptions));
    }
    for (name, (_, members)) in c.function_groups(false) {
        let template = FunctionTemplate::build(&name, &members);
        // Every member is represented and its statements reconstructible.
        assert_eq!(template.targets.len(), members.len(), "{name}");
        for (target, f) in &members {
            let present = template
                .preorder()
                .into_iter()
                .filter(|&id| template.has(id, target))
                .count();
            assert_eq!(
                present,
                f.stmt_count(),
                "{name}/{target}: template loses statements"
            );
            // head_for reproduces each original statement (as a multiset —
            // template sibling order is a merge artifact, not per-target
            // source order).
            let mut from_template: Vec<String> = template
                .preorder()
                .into_iter()
                .filter(|&id| template.has(id, target))
                .map(|id| {
                    let head = template.stmts[id].head_for(target).unwrap();
                    format!(
                        "{:?}:{}",
                        template.stmts[id].kind,
                        vega_cpplite::render_tokens(&head)
                    )
                })
                .collect();
            let mut from_source: Vec<String> = f
                .iter_stmts()
                .map(|s| format!("{:?}:{}", s.kind, vega_cpplite::render_tokens(&s.head)))
                .collect();
            from_template.sort();
            from_source.sort();
            assert_eq!(
                from_template, from_source,
                "{name}/{target}: statement mismatch"
            );
        }
        // Features select without panicking and stay within caps.
        let member_ix: BTreeMap<String, TgtIndex> = template
            .targets
            .iter()
            .filter_map(|t| ixs.get(t).map(|ix| (t.clone(), ix.clone())))
            .collect();
        let feats = select_features(&template, &catalog, &member_ix);
        assert!(feats.props.len() <= 12, "{name}: too many properties");
    }
}

#[test]
fn group_membership_follows_traits() {
    let c = corpus();
    let groups = c.function_groups(true);
    // Hardware-loop interfaces exist exactly for hwloop targets.
    let (_, hw) = &groups["isHardwareLoopProfitable"];
    for t in c.targets() {
        let has = hw.iter().any(|(n, _)| *n == t.spec.name);
        assert_eq!(has, t.spec.traits.has_hwloop, "{}", t.spec.name);
    }
    // Relaxation interfaces exist exactly for compressed targets.
    let (_, rx) = &groups["getRelaxedOpcode"];
    for t in c.targets() {
        let has = rx.iter().any(|(n, _)| *n == t.spec.name);
        assert_eq!(has, t.spec.traits.has_compressed, "{}", t.spec.name);
    }
}

#[test]
fn module_inventory_matches_paper_shape() {
    let c = corpus();
    let groups = c.function_groups(false);
    let mut per_module: BTreeMap<Module, usize> = BTreeMap::new();
    for (_, (m, _)) in &groups {
        *per_module.entry(*m).or_default() += 1;
    }
    // All seven modules are populated.
    for m in Module::ALL {
        assert!(
            per_module.get(&m).copied().unwrap_or(0) >= 3,
            "{m} too thin"
        );
    }
}

#[test]
fn eval_targets_only_expose_description_files_to_generation() {
    let c = corpus();
    for name in EVAL_TARGET_NAMES {
        let t = c.target(name).unwrap();
        // The description FS must never contain backend C++ code.
        for (path, content) in t.descriptions.iter() {
            assert!(
                !content.contains("getRelocType("),
                "{name}: implementation leaked into {path}"
            );
            assert!(
                path.starts_with(&format!("lib/Target/{name}"))
                    || path.starts_with("llvm/BinaryFormat/ELFRelocs"),
                "{name}: unexpected description path {path}"
            );
        }
    }
}
