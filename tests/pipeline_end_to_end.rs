//! End-to-end integration: corpus → templates → features → model →
//! generation → pass@1 evaluation → corrected compiler, across crates.

use vega::{Vega, VegaConfig};
use vega_eval::{corrected_backend, eval_generated_backend};
use vega_minicc::{benchmark_suite, regression_test, run_kernel, BackendVm, OptLevel};

fn tiny_vega() -> Vega {
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 2;
    Vega::train(cfg)
}

#[test]
fn full_pipeline_produces_consistent_artifacts() {
    let mut vega = tiny_vega();
    let gen = vega.generate_backend("RISCV");
    let eval = eval_generated_backend(&vega.corpus, &gen);

    // Every evaluated function came from a real template and is scored.
    assert!(!eval.functions.is_empty());
    for f in &eval.functions {
        assert!(
            (0.0..=1.0).contains(&f.confidence),
            "{}: {}",
            f.name,
            f.confidence
        );
        assert!(f.stmt_accurate + f.stmt_manual > 0 || f.stmt_total == 0);
        if f.accurate {
            assert!(f.generated, "{} accurate but not generated", f.name);
            assert_eq!(f.stmt_manual, 0);
            assert_eq!(f.stmt_accurate, f.stmt_total);
        }
    }

    // Generated statement records are per template node and score-bounded.
    for (_, gf) in &gen.functions {
        assert!(!gf.stmts.is_empty());
        for s in &gf.stmts {
            assert!((0.0..=1.0).contains(&s.score));
        }
        // Every assembled function round-trips through the pretty-printer.
        if let Some(f) = &gf.function {
            let text = vega_cpplite::render_function(f);
            let reparsed = vega_cpplite::parse_function(&text).expect("round trip");
            assert_eq!(&reparsed, f);
        }
    }
}

#[test]
fn corrected_compiler_is_robust_and_performs_like_base() {
    let mut vega = tiny_vega();
    let gen = vega.generate_backend("RI5CY");
    let eval = eval_generated_backend(&vega.corpus, &gen);
    let corrected = corrected_backend(&vega.corpus, &eval, &gen);
    let t = vega.corpus.target("RI5CY").unwrap();

    // §4.3 robustness: every interface function passes regression.
    for (name, _, reference) in t.backend.iter() {
        let f = corrected.function(name).expect("function present");
        assert!(
            regression_test(name, f, reference, &t.spec).passed(),
            "corrected {name} fails regression"
        );
    }

    // §4.3 performance: identical cycle counts to the base compiler.
    let base_vm = BackendVm::new(&t.spec, &t.backend);
    let fixed_vm = BackendVm::new(&t.spec, &corrected);
    for kernel in benchmark_suite() {
        for level in [OptLevel::O0, OptLevel::O3] {
            let a = run_kernel(&kernel, &base_vm, level).unwrap();
            let b = run_kernel(&kernel, &fixed_vm, level).unwrap();
            assert_eq!(a.result, b.result, "{}", kernel.name);
            assert!((a.cycles - b.cycles).abs() < 1e-9, "{}", kernel.name);
        }
    }
}

#[test]
fn generation_uses_only_description_files() {
    // Generating from the description FS alone (no corpus access by name)
    // must give the same backend as the by-name entry point.
    let mut vega = tiny_vega();
    let desc = vega.corpus.tgt_fs("XCore").unwrap().clone();
    let a = vega.generate_backend("XCore");
    let b = vega.generate_backend_from("XCore", &desc);
    assert_eq!(a.functions.len(), b.functions.len());
    for ((_, fa), (_, fb)) in a.functions.iter().zip(&b.functions) {
        assert_eq!(fa.name, fb.name);
        assert_eq!(fa.confidence, fb.confidence);
        for (sa, sb) in fa.stmts.iter().zip(&fb.stmts) {
            assert_eq!(sa.line, sb.line, "{}", fa.name);
            assert_eq!(sa.score, sb.score);
        }
    }
}

#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    // The full pipeline — corpus build, template folding, fine-tuning,
    // generation — must produce byte-identical artifacts whether vega-par
    // runs one worker or four.
    let run = |threads: usize| -> (String, Vec<String>, Vec<u64>) {
        vega_par::set_threads(threads);
        let mut cfg = VegaConfig::tiny();
        cfg.train.finetune_epochs = 1;
        let mut vega = Vega::train(cfg);
        let gen = vega.generate_backend("RISCV");
        let model_json = vega.model_mut().save_json();
        let mut lines = Vec::new();
        let mut confs = Vec::new();
        for (_, f) in &gen.functions {
            confs.push(f.confidence.to_bits());
            for s in &f.stmts {
                lines.push(format!("{}|{}|{}|{}", f.name, s.node, s.score, s.line));
            }
            if let Some(func) = &f.function {
                lines.push(vega_cpplite::render_function(func));
            }
        }
        (model_json, lines, confs)
    };
    let one = run(1);
    let four = run(4);
    vega_par::set_threads(0);
    assert_eq!(one.2, four.2, "confidences differ across thread counts");
    assert_eq!(
        one.1, four.1,
        "generated backends differ across thread counts"
    );
    assert_eq!(
        one.0, four.0,
        "saved model JSON differs across thread counts"
    );
}

#[test]
fn verification_split_is_disjoint_and_scored() {
    let mut vega = tiny_vega();
    // No (group, node, target) triple may appear in both splits.
    let key = |s: &vega::StatementSample| (s.group.clone(), s.node, s.target.clone());
    let train: std::collections::HashSet<_> = vega.train_samples.iter().map(key).collect();
    assert!(vega.verify_samples.iter().all(|s| !train.contains(&key(s))));
    let em = vega.verification_exact_match();
    assert!((0.0..=1.0).contains(&em));
}
