//! Workspace root crate for the VEGA reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! `examples/` and `tests/` directories can exercise the whole system through
//! one dependency. The real public API lives in the [`vega`] crate; the
//! substrates are [`vega_corpus`], [`vega_cpplite`], [`vega_treediff`],
//! [`vega_nn`], [`vega_model`], [`vega_minicc`], [`vega_forkflow`] and
//! [`vega_eval`].

pub use vega;
pub use vega_corpus;
pub use vega_cpplite;
pub use vega_eval;
pub use vega_forkflow;
pub use vega_minicc;
pub use vega_model;
pub use vega_nn;
pub use vega_treediff;
