//! Generate a complete RISC-V backend and evaluate it with pass@1 regression
//! tests — the paper's core experiment, end to end.
//!
//! ```sh
//! # quick (tiny model):
//! cargo run --release --example generate_riscv_backend
//! # experiment scale (minutes):
//! VEGA_SCALE=small cargo run --release --example generate_riscv_backend
//! ```

use vega::{Scale, Vega, VegaConfig};
use vega_eval::eval_generated_backend;

fn main() {
    let mut cfg = if std::env::var("VEGA_SCALE").as_deref() == Ok("small") {
        VegaConfig::default()
    } else {
        let mut c = VegaConfig::tiny();
        c.train.finetune_epochs = 4;
        c.scale = Scale::Tiny;
        c
    };
    cfg.seed = std::env::var("VEGA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    println!("training …");
    let mut vega = Vega::train(cfg);
    println!("generating the RISC-V backend …");
    let backend = vega.generate_backend("RISCV");
    let eval = eval_generated_backend(&vega.corpus, &backend);

    println!(
        "\npass@1 function accuracy: {:.1}% ({} / {})",
        100.0 * eval.function_accuracy(),
        eval.functions.iter().filter(|f| f.accurate).count(),
        eval.functions.len()
    );
    println!("\nper module:");
    for (module, (acc, total)) in eval.module_accuracy() {
        println!("  {module}: {acc}/{total}");
    }
    println!("\nper function (pass@1, confidence):");
    for f in &eval.functions {
        println!(
            "  {:<28} {}  confidence {:.2}{}",
            f.name,
            if f.accurate { "PASS" } else { "fail" },
            f.confidence,
            if f.multi_source {
                "  [multi-target]"
            } else {
                ""
            }
        );
    }
}
