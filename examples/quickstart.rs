//! Quickstart: train a tiny VEGA and generate the motivating example —
//! a RISC-V `getRelocType` — from RISC-V's description files alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vega::{Vega, VegaConfig};

fn main() {
    // Stage 1 + 2: build the miniature backend corpus, fold function groups
    // into templates, select features, train CodeBE. The tiny configuration
    // trades accuracy for speed; see `generate_riscv_backend` for the full
    // experiment scale.
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 3;
    println!("training VEGA (tiny configuration) …");
    let mut vega = Vega::train(cfg);
    println!(
        "  {} function templates, {} training samples, stage 2 in {:.1}s\n",
        vega.templates.len(),
        vega.train_samples.len(),
        vega.timings.model_creation.as_secs_f64()
    );

    // Stage 3: generate the whole RISC-V backend from its .td/.h/.def files.
    let backend = vega.generate_backend("RISCV");
    println!(
        "generated {} functions for RISC-V in {:.1}s\n",
        backend.functions.len(),
        backend.total_time.as_secs_f64()
    );

    // Show the paper's running example with its statement confidence scores.
    let f = backend
        .function("getRelocType")
        .expect("getRelocType generated");
    println!("getRelocType — function confidence {:.2}", f.confidence);
    for s in &f.stmts {
        let mark = if s.kept { ' ' } else { 'x' };
        println!("  [{:.2}]{mark} {}", s.score, s.line);
    }
    if let Some(func) = &f.function {
        println!(
            "\nassembled function:\n{}",
            vega_cpplite::render_function(func)
        );
    } else {
        println!("\n(function did not assemble under the tiny model)");
    }

    // Everything above was recorded by vega-obs: the span tree covers corpus
    // construction and all three pipeline stages, plus counters, the
    // confidence histogram, and the fine-tune loss curve.
    println!("\n{}", vega_obs::global().text_report());
}
