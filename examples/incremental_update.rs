//! The paper's proposed software-update mechanism (§6), implemented:
//! after developers correct a generated backend, VEGA incorporates it and
//! later generations benefit from the added coverage.
//!
//! ```sh
//! cargo run --release --example incremental_update
//! ```

use vega::{Vega, VegaConfig};
use vega_eval::eval_generated_backend;

fn main() {
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 3;
    println!("training base VEGA (tiny) …");
    let mut vega = Vega::train(cfg);

    // Baseline: RI5CY accuracy before the update.
    let before = {
        let gen = vega.generate_backend("RI5CY");
        eval_generated_backend(&vega.corpus, &gen).function_accuracy()
    };
    println!("RI5CY pass@1 before update: {:.1}%", 100.0 * before);

    // A developer team corrects the RISC-V backend (here: the reference
    // implementation plays the corrected artifact) and feeds it back.
    let (corrected, descriptions) = {
        let rv = vega.corpus.target("RISCV").unwrap();
        (rv.backend.clone(), rv.descriptions.clone())
    };
    println!("incorporating the corrected RISC-V backend (learn_target) …");
    vega.learn_target("RISCV", &corrected, &descriptions, 2);

    // RI5CY shares the RISC-V base, so its generation should not get worse —
    // and typically improves.
    let after = {
        let gen = vega.generate_backend("RI5CY");
        eval_generated_backend(&vega.corpus, &gen).function_accuracy()
    };
    println!("RI5CY pass@1 after update:  {:.1}%", 100.0 * after);

    println!(
        "\ntemplates now cover {} targets for getRelocType",
        vega.templates["getRelocType"].template.targets.len()
    );
}
