//! Run the benchmark suite through the miniature compiler at -O0 and -O3
//! for every built-in target — the substrate behind Fig. 10. No model
//! training involved, so this runs in milliseconds.
//!
//! ```sh
//! cargo run --release --example backend_performance
//! ```

use vega_corpus::{Corpus, CorpusConfig};
use vega_minicc::{benchmark_suite, run_kernel, BackendVm, OptLevel};

fn main() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let kernels = benchmark_suite();

    print!("{:<14}", "target");
    for k in &kernels {
        print!("{:>14}", k.name);
    }
    println!("{:>10}", "geomean");

    for t in corpus.targets() {
        let vm = BackendVm::new(&t.spec, &t.backend);
        let mut speedups = Vec::new();
        print!("{:<14}", t.spec.name);
        for kernel in &kernels {
            let o0 = run_kernel(kernel, &vm, OptLevel::O0).expect("O0 build");
            let o3 = run_kernel(kernel, &vm, OptLevel::O3).expect("O3 build");
            assert_eq!(o0.result, o3.result, "miscompile on {}", kernel.name);
            let s = o0.cycles / o3.cycles.max(1e-9);
            speedups.push(s);
            print!("{:>13.2}x", s);
        }
        let geo = speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64;
        println!("{:>9.2}x", geo.exp());
    }
    println!("\n(speedup = -O0 cycles / -O3 cycles; results verified equal)");
}
