//! Compare VEGA against the traditional fork-flow approach on one target
//! (the paper's §4.2 "Comparing with ForkFlow").
//!
//! ```sh
//! cargo run --release --example forkflow_comparison [TARGET]
//! ```

use vega::{Vega, VegaConfig};
use vega_eval::{eval_generated_backend, eval_plain_backend};
use vega_forkflow::forkflow_backend;

fn main() {
    let target = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "RI5CY".to_string());
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 4;
    println!("training VEGA (tiny) and forking from MIPS for {target} …\n");
    let mut vega = Vega::train(cfg);

    let gen = vega.generate_backend(&target);
    let vega_eval = eval_generated_backend(&vega.corpus, &gen);
    let forked = forkflow_backend(&vega.corpus, "Mips", &target);
    let fork_eval = eval_plain_backend(&vega.corpus, &forked, &target);

    println!(
        "{target}: VEGA pass@1 {:.1}%  vs  ForkFlow pass@1 {:.1}%",
        100.0 * vega_eval.function_accuracy(),
        100.0 * fork_eval.function_accuracy()
    );
    println!(
        "{target}: VEGA stmt accuracy {:.1}%  vs  ForkFlow {:.1}%\n",
        100.0 * vega_eval.stmt_accuracy(),
        100.0 * fork_eval.stmt_accuracy()
    );

    // Show what the fork got wrong on the motivating example.
    let reference = vega.corpus.target(&target).unwrap();
    if let (Some(ff), Some(rf)) = (
        forked.function("getRelocType"),
        reference.backend.function("getRelocType"),
    ) {
        let outcome = vega_minicc::regression_test("getRelocType", ff, rf, &reference.spec);
        println!("ForkFlow getRelocType regression: {outcome:?}");
        println!(
            "\nForkFlow's forked getRelocType:\n{}",
            vega_cpplite::render_function(ff)
        );
    }
}
