//! The developer-productivity story: use VEGA's confidence scores to direct
//! manual review to the code most likely to be wrong (paper §4.2, "Manual
//! Effort Required for VEGA").
//!
//! ```sh
//! cargo run --release --example confidence_review
//! ```

use vega::{Vega, VegaConfig};
use vega_eval::eval_generated_backend;

fn main() {
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 4;
    println!("training (tiny) and generating the RI5CY backend …\n");
    let mut vega = Vega::train(cfg);
    let backend = vega.generate_backend("RI5CY");
    let eval = eval_generated_backend(&vega.corpus, &backend);

    // Rank functions by confidence, lowest first — the review queue.
    let mut queue: Vec<_> = eval.functions.iter().collect();
    queue.sort_by(|a, b| a.confidence.partial_cmp(&b.confidence).unwrap());

    println!("review queue (lowest confidence first):");
    println!(
        "{:<28} {:>10} {:>8}   verdict",
        "function", "confidence", "module"
    );
    for f in queue.iter().take(12) {
        println!(
            "{:<28} {:>10.2} {:>8}   {}",
            f.name,
            f.confidence,
            f.module.code(),
            if f.accurate {
                "actually fine"
            } else {
                "needs work"
            }
        );
    }

    // How well does confidence predict correctness?
    let bins = [(0.0, 0.5), (0.5, 0.9), (0.9, 1.01)];
    println!("\ncalibration:");
    for (lo, hi) in bins {
        let in_bin: Vec<_> = eval
            .functions
            .iter()
            .filter(|f| f.confidence >= lo && f.confidence < hi)
            .collect();
        if in_bin.is_empty() {
            continue;
        }
        let acc = in_bin.iter().filter(|f| f.accurate).count();
        println!(
            "  confidence [{lo:.1}, {hi:.1}): {acc}/{} accurate",
            in_bin.len()
        );
    }

    // Statement-level: the lowest-scored kept statements of one function.
    if let Some(f) = backend.function("getRelocType") {
        let mut stmts: Vec<_> = f.stmts.iter().filter(|s| s.kept).collect();
        stmts.sort_by(|a, b| a.score.partial_cmp(&b.score).unwrap());
        println!("\nlowest-confidence kept statements of getRelocType:");
        for s in stmts.iter().take(5) {
            println!("  [{:.2}] {}", s.score, s.line);
        }
    }
}
