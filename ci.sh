#!/usr/bin/env bash
# Offline CI gate: formatting, a release build, and the full test suite.
# No step touches the network (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --check

echo "== build =="
cargo build --release --workspace

# The suite runs twice so the determinism promise is exercised at both a
# sequential and a parallel vega-par pool size (outputs must be identical).
echo "== test (VEGA_THREADS=1) =="
VEGA_THREADS=1 cargo test -q --workspace

echo "== test (VEGA_THREADS=4) =="
VEGA_THREADS=4 cargo test -q --workspace

echo "ci: all checks passed"
