#!/usr/bin/env bash
# Offline CI gate: formatting, a release build, and the full test suite.
# No step touches the network (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --check

echo "== build =="
cargo build --release --workspace

# The suite runs twice so the determinism promise is exercised at both a
# sequential and a parallel vega-par pool size (outputs must be identical).
echo "== test (VEGA_THREADS=1) =="
VEGA_THREADS=1 cargo test -q --workspace

echo "== test (VEGA_THREADS=4) =="
VEGA_THREADS=4 cargo test -q --workspace

SMOKE_DIR=$(mktemp -d)
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Decode fast path: the incremental KV-cached decoder must be bit-identical
# to the autograd-graph reference at both pool sizes (the full workspace runs
# above include this suite too; the explicit stage keeps the contract visible
# and greppable), and the bench smoke asserts it is not slower than the graph
# path on the small config.
echo "== decode equivalence =="
VEGA_THREADS=1 cargo test -q -p vega-nn --test decode_equivalence
VEGA_THREADS=4 cargo test -q -p vega-nn --test decode_equivalence

# Speculative decoding: the GRU-drafted, transformer-verified decoder must
# be bit-identical to plain greedy at every speculation depth, and its
# primitives (`step_many` multi-position advance, `truncate` rollback, the
# dot-form logits projection on both sides of its switch) must be bitwise
# sound. The kernel matrix below repeats the suite under each forced kernel
# mode; the decode bench smoke enforces the ≥1.3x speculative throughput
# floor and the dot-form trip-wire.
echo "== speculative equivalence =="
VEGA_THREADS=1 cargo test -q -p vega-nn --test spec_equivalence
VEGA_THREADS=4 cargo test -q -p vega-nn --test spec_equivalence

# Kernel matrix: every kernel mode this CPU can run (scalar always; avx2
# when the CPU reports it — a forced `VEGA_KERNEL=avx2` on a host without
# AVX2 falls back to scalar with a logged notice, so the avx2 leg would be
# vacuous there) must pass the kernel conformance property suite, the
# per-mode determinism suite, and the decode/batch equivalence suites, at
# pool sizes 1 and 4. The decode bench smoke below then pins the per-ISA
# throughput rows and the AVX2-vs-scalar floors.
echo "== kernel matrix =="
KERNEL_MODES="scalar"
if grep -q avx2 /proc/cpuinfo 2>/dev/null; then
  KERNEL_MODES="scalar avx2"
else
  echo "(CPU lacks AVX2; kernel matrix runs scalar only)"
fi
for km in $KERNEL_MODES; do
  for vt in 1 4; do
    echo "-- VEGA_KERNEL=$km VEGA_THREADS=$vt --"
    VEGA_KERNEL=$km VEGA_THREADS=$vt cargo test -q -p vega-nn \
      --test kernel_conformance --test kernel_determinism \
      --test decode_equivalence --test batch_equivalence \
      --test spec_equivalence
  done
done

echo "== decode bench smoke =="
VEGA_DECODE_BENCH_FAST=1 VEGA_BENCH_OUT="$SMOKE_DIR/BENCH_decode.json" \
  cargo bench -p vega-bench --bench decode | tee "$SMOKE_DIR/decode-bench.txt"
grep -q "decode: smoke=ok" "$SMOKE_DIR/decode-bench.txt"

# Observability overhead: the disabled flight-recorder record path must stay
# one relaxed atomic load — the bench fails if it costs more than the ns
# budget, so instrumentation can never silently tax the serve hot path.
echo "== obs overhead smoke =="
VEGA_OBS_BENCH_FAST=1 VEGA_OBS_BUDGET_NS=250 \
  VEGA_BENCH_OUT="$SMOKE_DIR/BENCH_obs.json" \
  cargo bench -p vega-bench --bench obs | tee "$SMOKE_DIR/obs-bench.txt"
grep -q "obs: smoke=ok" "$SMOKE_DIR/obs-bench.txt"

# Serve smoke test: train a tiny checkpoint, serve it on an ephemeral port,
# hammer it with the load generator (repeats must hit the cache and verify
# byte-identical against direct generation), shut down cleanly, and check
# the JSONL trace recorded the request spans.
echo "== serve smoke =="
target/release/vega-experiments headline --scale tiny \
  --save-model "$SMOKE_DIR/ckpt.json" > "$SMOKE_DIR/headline.txt"
target/release/vega-serve --checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  --port-file "$SMOKE_DIR/port" --trace-out "$SMOKE_DIR/trace.jsonl" \
  > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 150); do
  [ -s "$SMOKE_DIR/port" ] && break
  sleep 0.2
done
[ -s "$SMOKE_DIR/port" ] || { echo "vega-serve never wrote its port file"; exit 1; }
target/release/vega-loadgen --addr "127.0.0.1:$(cat "$SMOKE_DIR/port")" \
  --requests 24 --conns 4 --distinct 4 \
  --verify-checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  | tee "$SMOKE_DIR/loadgen.txt"
grep -q "loadgen: verify=ok" "$SMOKE_DIR/loadgen.txt"
grep -q "loadgen: cache=ok" "$SMOKE_DIR/loadgen.txt"
grep -q "loadgen: trace=ok" "$SMOKE_DIR/loadgen.txt"
grep -q "loadgen: timing " "$SMOKE_DIR/loadgen.txt"
# vega-top mode: the live dashboard polls the metrics op on the same daemon.
target/release/vega-loadgen --addr "127.0.0.1:$(cat "$SMOKE_DIR/port")" \
  --top 3 --top-interval-ms 100 | tee "$SMOKE_DIR/top.txt"
grep -q "vega-top: rps=" "$SMOKE_DIR/top.txt"
# A second loadgen pass shuts the daemon down (repeats all hit the cache).
target/release/vega-loadgen --addr "127.0.0.1:$(cat "$SMOKE_DIR/port")" \
  --requests 8 --conns 2 --distinct 4 \
  --shutdown | tee "$SMOKE_DIR/loadgen2.txt"
wait "$SERVE_PID"
grep -q "loadgen: shutdown=ok" "$SMOKE_DIR/loadgen2.txt"
grep -q "^served requests=" "$SMOKE_DIR/serve.log"
grep -q "serve.request" "$SMOKE_DIR/trace.jsonl"
echo "serve smoke: ok"

# Speculative serve smoke: train the GRU baseline as a draft checkpoint and
# re-serve the transformer with --speculate 8. Responses must stay
# byte-identical to direct generation (speculation is exact by
# construction), and the loadgen window must show actual drafting.
echo "== speculative serve smoke =="
target/release/vega-experiments headline --scale tiny --model gru \
  --save-model "$SMOKE_DIR/draft.ckpt" > "$SMOKE_DIR/headline-gru.txt"
target/release/vega-serve --checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  --speculate 8 --draft "$SMOKE_DIR/draft.ckpt" \
  --port-file "$SMOKE_DIR/spec-port" > "$SMOKE_DIR/spec-serve.log" 2>&1 &
SPEC_PID=$!
for _ in $(seq 1 150); do
  [ -s "$SMOKE_DIR/spec-port" ] && break
  sleep 0.2
done
[ -s "$SMOKE_DIR/spec-port" ] || { echo "speculative vega-serve never wrote its port file"; exit 1; }
target/release/vega-loadgen --addr "127.0.0.1:$(cat "$SMOKE_DIR/spec-port")" \
  --requests 24 --conns 4 --distinct 4 \
  --verify-checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  --shutdown | tee "$SMOKE_DIR/spec-loadgen.txt"
wait "$SPEC_PID"
grep -q "speculative decoding on (depth 8)" "$SMOKE_DIR/spec-serve.log"
grep -q "loadgen: verify=ok" "$SMOKE_DIR/spec-loadgen.txt"
grep -Eq "spec_drafted=[1-9]" "$SMOKE_DIR/spec-loadgen.txt"
echo "speculative serve smoke: ok"

# Chaos stage: the same checkpoint served under a deterministic fault plan
# (connection drops, stalls, corrupt frames — server side only; the plan is
# set on the daemon's environment, not exported). The retrying loadgen must
# still verify byte-identical responses, and the trace must record the
# injected faults.
echo "== chaos =="
VEGA_FAULT_PLAN="seed=11;serve.conn.drop=0.15;serve.conn.stall=0.1:25;serve.conn.corrupt=0.1" \
  target/release/vega-serve --checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  --port-file "$SMOKE_DIR/chaos-port" --trace-out "$SMOKE_DIR/chaos-trace.jsonl" \
  > "$SMOKE_DIR/chaos-serve.log" &
CHAOS_PID=$!
for _ in $(seq 1 150); do
  [ -s "$SMOKE_DIR/chaos-port" ] && break
  sleep 0.2
done
[ -s "$SMOKE_DIR/chaos-port" ] || { echo "chaos vega-serve never wrote its port file"; exit 1; }
target/release/vega-loadgen --addr "127.0.0.1:$(cat "$SMOKE_DIR/chaos-port")" \
  --requests 24 --conns 4 --distinct 4 \
  --verify-checkpoint "$SMOKE_DIR/ckpt.json" --scale tiny \
  --shutdown | tee "$SMOKE_DIR/chaos-loadgen.txt"
wait "$CHAOS_PID"
grep -q "loadgen: verify=ok" "$SMOKE_DIR/chaos-loadgen.txt"
grep -q "loadgen: cache=ok" "$SMOKE_DIR/chaos-loadgen.txt"
grep -q "loadgen: trace=ok" "$SMOKE_DIR/chaos-loadgen.txt"
grep -q "loadgen: shutdown=ok" "$SMOKE_DIR/chaos-loadgen.txt"
grep -q "fault.injected.serve.conn" "$SMOKE_DIR/chaos-trace.jsonl"
echo "chaos: ok"

# Checkpoint v2 + hot swap: the binary mmap format's fault suite (truncation,
# bit flips, version skew, a doctored tensor table, a crash mid-save), the
# live-swap e2e with chaos injection at pool sizes 1 and 4, and v1↔v2
# interop through the CLI (the serve smoke above already runs on a v2
# checkpoint — `--save-model` defaults to `--ckpt-format v2`). The headline
# artifact must be bit-identical whichever format the model reloads from.
echo "== ckpt v2 =="
cargo test -q -p vega-model --test ckpt_v2
cargo test -q -p vega-serve --test swap_e2e
target/release/vega-experiments headline --scale tiny \
  --load-model "$SMOKE_DIR/ckpt.json" \
  --save-model "$SMOKE_DIR/ckpt-v1.json" --ckpt-format v1 \
  > "$SMOKE_DIR/headline-v2load.txt"
target/release/vega-experiments headline --scale tiny \
  --load-model "$SMOKE_DIR/ckpt-v1.json" > "$SMOKE_DIR/headline-v1load.txt"
diff "$SMOKE_DIR/headline-v2load.txt" "$SMOKE_DIR/headline-v1load.txt"
echo "ckpt v2: ok"

# Checkpoint bench smoke: v2 replica spawn must stay O(header) — at least
# 10x faster than a v1 deep copy — and both formats must decode
# bit-identical weights.
echo "== ckpt bench smoke =="
VEGA_CKPT_BENCH_FAST=1 VEGA_BENCH_OUT="$SMOKE_DIR/BENCH_ckpt.json" \
  cargo bench -p vega-bench --bench ckpt | tee "$SMOKE_DIR/ckpt-bench.txt"
grep -q "ckpt: smoke=ok" "$SMOKE_DIR/ckpt-bench.txt"

# Continuous batching: the batched lockstep decoder must be bit-identical
# to single-slot decode at both pool sizes (nn level), and the serve-level
# batch engine must be an invisible substitution for the replica pool
# (byte-identical responses and score bits, chaos replays, drain).
echo "== batch equivalence =="
VEGA_THREADS=1 cargo test -q -p vega-nn --test batch_equivalence
VEGA_THREADS=4 cargo test -q -p vega-nn --test batch_equivalence
VEGA_THREADS=1 cargo test -q -p vega-serve --test batch_e2e
VEGA_THREADS=4 cargo test -q -p vega-serve --test batch_e2e

# Serve bench smoke: on the score workload with a deploy-shaped model, the
# one-pass prefill scorer must beat the token-stepped loop it replaced, and
# the batch engine must serve score at parity with the replica engine (both
# route scoring through the same multi-position prefill path).
echo "== serve bench smoke =="
VEGA_SERVE_BENCH_FAST=1 VEGA_BENCH_OUT="$SMOKE_DIR/BENCH_serve.json" \
  cargo bench -p vega-bench --bench serve | tee "$SMOKE_DIR/serve-bench.txt"
grep -q "serve: smoke=ok" "$SMOKE_DIR/serve-bench.txt"

echo "ci: all checks passed"
