#!/usr/bin/env bash
# Offline CI gate: formatting, a release build, and the full test suite.
# No step touches the network (the workspace has no external dependencies).
set -euo pipefail
cd "$(dirname "$0")"
export CARGO_NET_OFFLINE=true

echo "== fmt =="
cargo fmt --check

echo "== build =="
cargo build --release --workspace

echo "== test =="
cargo test -q --workspace

echo "ci: all checks passed"
