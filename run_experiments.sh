#!/usr/bin/env bash
# Regenerates every artifact of the paper's evaluation section and the
# workspace's test/bench evidence, with tee'd logs at the repo root.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release --workspace

echo "== experiments (all tables/figures + ablations) =="
cargo run --release -p vega-eval --bin vega-experiments -- all \
  --trace-out trace.jsonl \
  2>&1 | tee experiments_output.txt

echo "== tests =="
cargo test --workspace 2>&1 | tee test_output.txt

echo "== benches =="
cargo bench --workspace 2>&1 | tee bench_output.txt
