//! `vega-forkflow`: the traditional fork-flow baseline (paper §4.2).
//!
//! ForkFlow forks a function from the most similar existing backend (the
//! paper forks from MIPS) and renames target-specific identifiers using the
//! new target's description files — the mechanical part of what a developer
//! would do before the real porting work begins. Its pass@1 accuracy is the
//! baseline VEGA is compared against (the paper measures < 8%).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use vega::{name_similarity, TgtIndex, ValueSource};
use vega_corpus::{ArchSpec, Backend, Corpus, TargetData};
use vega_cpplite::{Function, Stmt, Token};

/// Identifier categories rewritten during the fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Category {
    Namespace,
    Fixup,
    Reloc,
    Instr,
    Reg,
    VariantKind,
}

/// A fork-and-rename of one source backend onto a new target.
#[derive(Debug)]
pub struct ForkFlow {
    source_ns: String,
    target_ns: String,
    /// Source identifier → category.
    source_cats: HashMap<String, Category>,
    /// Category → target candidate values.
    target_values: HashMap<Category, Vec<String>>,
    /// Source mnemonic strings → target mnemonic strings.
    mnemonic_map: HashMap<String, String>,
    /// Memoized renames so a source identifier maps consistently.
    renames: HashMap<String, String>,
}

impl ForkFlow {
    /// Prepares a fork from `source` (its spec is known — the developer owns
    /// that backend) onto `target`, about which only the description files
    /// are consulted.
    pub fn new(source: &ArchSpec, target_ns: &str, target_desc: &TgtIndex) -> Self {
        let mut source_cats = HashMap::new();
        for f in &source.fixups {
            source_cats.insert(f.name.clone(), Category::Fixup);
            source_cats.insert(f.reloc_abs.clone(), Category::Reloc);
            if let Some(p) = &f.reloc_pcrel {
                source_cats.insert(p.clone(), Category::Reloc);
            }
        }
        source_cats.insert(
            format!("R_{}_NONE", source.name.to_uppercase()),
            Category::Reloc,
        );
        for i in &source.instrs {
            source_cats.insert(i.name.clone(), Category::Instr);
        }
        for rc in &source.regs {
            for n in 0..rc.count {
                source_cats.insert(format!("{}{}", rc.prefix, n), Category::Reg);
            }
        }
        for v in &source.variant_kinds {
            source_cats.insert(v.clone(), Category::VariantKind);
        }
        source_cats.insert(source.name.clone(), Category::Namespace);

        let mut target_values = HashMap::new();
        target_values.insert(
            Category::Fixup,
            target_desc.candidates(&ValueSource::TgtEnum {
                llvm_name: "MCFixupKind".into(),
            }),
        );
        target_values.insert(
            Category::Reloc,
            target_desc.candidates(&ValueSource::TgtEnum {
                llvm_name: "ELF".into(),
            }),
        );
        target_values.insert(
            Category::Instr,
            target_desc.candidates(&ValueSource::DefNames {
                class: "Instruction".into(),
            }),
        );
        target_values.insert(
            Category::Reg,
            target_desc.candidates(&ValueSource::RegNames),
        );
        target_values.insert(
            Category::VariantKind,
            target_desc.candidates(&ValueSource::TgtEnum {
                llvm_name: "VariantKind".into(),
            }),
        );

        // Mnemonic strings: source mnemonic → most similar target mnemonic.
        let target_mnemonics = target_desc.candidates(&ValueSource::Field {
            field: "Mnemonic".into(),
        });
        let mut mnemonic_map = HashMap::new();
        for i in &source.instrs {
            if let Some(best) = best_match(&i.mnemonic, &target_mnemonics) {
                mnemonic_map.insert(i.mnemonic.clone(), best);
            }
        }

        ForkFlow {
            source_ns: source.name.clone(),
            target_ns: target_ns.to_string(),
            source_cats,
            target_values,
            mnemonic_map,
            renames: HashMap::new(),
        }
    }

    /// Forks one function.
    pub fn fork_function(&mut self, f: &Function) -> Function {
        let mut out = f.clone();
        out.qualifier = out
            .qualifier
            .iter()
            .map(|q| q.replace(&self.source_ns, &self.target_ns))
            .collect();
        out.ret = self.rewrite_tokens(&f.ret);
        for p in &mut out.params {
            p.ty = self.rewrite_tokens(&p.ty);
        }
        out.body = f.body.iter().map(|s| self.rewrite_stmt(s)).collect();
        out
    }

    fn rewrite_stmt(&mut self, s: &Stmt) -> Stmt {
        let mut out = s.clone();
        out.head = self.rewrite_tokens(&s.head);
        out.children = s.children.iter().map(|c| self.rewrite_stmt(c)).collect();
        out.else_children = s
            .else_children
            .iter()
            .map(|c| self.rewrite_stmt(c))
            .collect();
        out
    }

    fn rewrite_tokens(&mut self, toks: &[Token]) -> Vec<Token> {
        toks.iter()
            .map(|t| match t {
                Token::Ident(id) => Token::Ident(self.rename(id)),
                Token::Str(s) if *s == self.source_ns => Token::Str(self.target_ns.clone()),
                Token::Str(s) => Token::Str(
                    self.mnemonic_map
                        .get(s)
                        .cloned()
                        .unwrap_or_else(|| s.clone()),
                ),
                other => other.clone(),
            })
            .collect()
    }

    fn rename(&mut self, id: &str) -> String {
        if let Some(r) = self.renames.get(id) {
            return r.clone();
        }
        let renamed = match self.source_cats.get(id) {
            Some(Category::Namespace) => self.target_ns.clone(),
            Some(cat) => {
                let cands = self.target_values.get(cat).cloned().unwrap_or_default();
                best_match(id, &cands).unwrap_or_else(|| id.to_string())
            }
            None => {
                // Embedded-namespace identifiers like `MipsELFObjectWriter`.
                if id.contains(&self.source_ns) {
                    id.replace(&self.source_ns, &self.target_ns)
                } else {
                    id.to_string()
                }
            }
        };
        self.renames.insert(id.to_string(), renamed.clone());
        renamed
    }
}

fn best_match(value: &str, candidates: &[String]) -> Option<String> {
    let value_vec = vec![value.to_string()];
    candidates
        .iter()
        .max_by(|a, b| {
            name_similarity(a, &value_vec)
                .partial_cmp(&name_similarity(b, &value_vec))
                .unwrap()
        })
        .cloned()
}

/// Forks the whole `source` backend onto `target` using only the target's
/// description files from the corpus.
///
/// # Panics
/// Panics if either target is not in the corpus.
pub fn forkflow_backend(corpus: &Corpus, source: &str, target: &str) -> Backend {
    let src: &TargetData = corpus.target(source).expect("source target");
    let tgt: &TargetData = corpus.target(target).expect("target");
    let ix = TgtIndex::build(&tgt.descriptions);
    let mut ff = ForkFlow::new(&src.spec, &tgt.spec.name, &ix);
    let mut out = Backend::new(tgt.spec.name.clone());
    for (_, module, f) in src.backend.iter() {
        out.insert(module, ff.fork_function(f));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_corpus::{Corpus, CorpusConfig};
    use vega_minicc::regression_test;

    #[test]
    fn fork_renames_namespace_and_values() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let forked = forkflow_backend(&corpus, "Mips", "RISCV");
        let f = forked.function("getRelocType").unwrap();
        let text = vega_cpplite::render_function(f);
        assert!(!text.contains("Mips"), "{text}");
        assert!(text.contains("RISCV"), "{text}");
        assert!(text.contains("fixup_riscv_"), "{text}");
    }

    #[test]
    fn forked_backend_mostly_fails_regression() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let forked = forkflow_backend(&corpus, "Mips", "RISCV");
        let rv = corpus.target("RISCV").unwrap();
        let mut pass = 0usize;
        let mut total = 0usize;
        for (name, _, reference) in rv.backend.iter() {
            let Some(cand) = forked.function(name) else {
                continue;
            };
            total += 1;
            if regression_test(name, cand, reference, &rv.spec).passed() {
                pass += 1;
            }
        }
        assert!(total >= 25);
        let acc = pass as f64 / total as f64;
        assert!(acc < 0.5, "forkflow suspiciously accurate: {acc}");
    }

    #[test]
    fn fork_is_deterministic() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let a = forkflow_backend(&corpus, "Mips", "XCore");
        let b = forkflow_backend(&corpus, "Mips", "XCore");
        for (name, _, f) in a.iter() {
            assert_eq!(Some(f), b.function(name));
        }
    }
}
