//! One bench group per paper table/figure, at reduced scale.
//!
//! These benches time the machinery that *regenerates* each artifact; the
//! artifact contents themselves come from `vega-experiments`.

use vega_bench::{trained_tiny_vega, Bench};
use vega_corpus::{Corpus, CorpusConfig};
use vega_eval::{eval_generated_backend, eval_plain_backend, DeveloperProfile};
use vega_forkflow::forkflow_backend;
use vega_minicc::{benchmark_suite, run_kernel, BackendVm, OptLevel};

/// Fig. 7 — inference: generating one backend from description files.
fn bench_fig7_inference() {
    let mut vega = trained_tiny_vega();
    let mut g = Bench::group("fig7_inference");
    g.bench_function("generate_backend(RISCV)", || vega.generate_backend("RISCV"));
    g.finish();
}

/// Fig. 8 — pass@1 evaluation of a generated backend.
fn bench_fig8_passk() {
    let mut vega = trained_tiny_vega();
    let backend = vega.generate_backend("RISCV");
    let mut g = Bench::group("fig8_passk");
    g.bench_function("eval_generated_backend(RISCV)", || {
        eval_generated_backend(&vega.corpus, &backend)
    });
    g.finish();
}

/// Table 2 — error-taxonomy computation over an evaluated backend.
fn bench_table2_taxonomy() {
    let mut vega = trained_tiny_vega();
    let backend = vega.generate_backend("RI5CY");
    let eval = eval_generated_backend(&vega.corpus, &backend);
    let mut g = Bench::group("table2_taxonomy");
    g.bench_function("error_rates", || eval.error_rates());
    g.finish();
}

/// Fig. 9 — the ForkFlow baseline: fork + statement-level evaluation.
fn bench_fig9_forkflow() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let mut g = Bench::group("fig9_forkflow");
    g.bench_function("fork(Mips→RISCV)+stmt_eval", || {
        let ff = forkflow_backend(&corpus, "Mips", "RISCV");
        eval_plain_backend(&corpus, &ff, "RISCV").stmt_accuracy()
    });
    g.finish();
}

/// Tables 3/4 — statement counting and the effort model.
fn bench_table34_effort() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let ff = forkflow_backend(&corpus, "Mips", "RISCV");
    let eval = eval_plain_backend(&corpus, &ff, "RISCV");
    let dev = DeveloperProfile::developer_a();
    let mut g = Bench::group("table34_effort");
    g.bench_function("module_stmt_counts+hours", || {
        let manual: std::collections::BTreeMap<_, _> = eval
            .module_stmt_counts()
            .into_iter()
            .map(|(m, (_, man))| (m, man))
            .collect();
        dev.estimate(&manual)
    });
    g.finish();
}

/// Fig. 10 — compiling and simulating the benchmark suite at -O0 and -O3.
fn bench_fig10_perf() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let t = corpus.target("RISCV").unwrap();
    let vm = BackendVm::new(&t.spec, &t.backend);
    let kernels = benchmark_suite();
    let mut g = Bench::group("fig10_perf");
    g.bench_function("suite_O0_and_O3", || {
        let mut total = 0.0;
        for k in &kernels {
            total += run_kernel(k, &vm, OptLevel::O0).unwrap().cycles;
            total += run_kernel(k, &vm, OptLevel::O3).unwrap().cycles;
        }
        total
    });
    g.finish();
}

/// §4.1.2 — Stage 1 code-feature mapping over the whole corpus.
fn bench_stage1_mapping() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let mut g = Bench::group("stage1_code_feature_mapping");
    g.bench_function("templates+features(all groups)", || {
        let catalog = vega::prop_catalog(corpus.llvm_fs());
        let mut ixs = std::collections::BTreeMap::new();
        for t in corpus.training_targets() {
            ixs.insert(t.spec.name.clone(), vega::TgtIndex::build(&t.descriptions));
        }
        let mut n = 0usize;
        for (name, (_, members)) in corpus.function_groups(false) {
            let template = vega::FunctionTemplate::build(&name, &members);
            let feats = vega::select_features(&template, &catalog, &ixs);
            n += feats.props.len();
        }
        n
    });
    g.finish();
}

fn main() {
    bench_fig7_inference();
    bench_fig8_passk();
    bench_table2_taxonomy();
    bench_fig9_forkflow();
    bench_table34_effort();
    bench_fig10_perf();
    bench_stage1_mapping();
}
