//! One Criterion group per paper table/figure, at reduced scale.
//!
//! These benches time the machinery that *regenerates* each artifact; the
//! artifact contents themselves come from `vega-experiments`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vega_bench::trained_tiny_vega;
use vega_corpus::{Corpus, CorpusConfig};
use vega_eval::{eval_generated_backend, eval_plain_backend, DeveloperProfile};
use vega_forkflow::forkflow_backend;
use vega_minicc::{benchmark_suite, run_kernel, BackendVm, OptLevel};

fn quick(c: &mut Criterion, name: &str) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    g
}

/// Fig. 7 — inference: generating one backend from description files.
fn bench_fig7_inference(c: &mut Criterion) {
    let mut vega = trained_tiny_vega();
    let mut g = quick(c, "fig7_inference");
    g.bench_function("generate_backend(RISCV)", |b| {
        b.iter(|| std::hint::black_box(vega.generate_backend("RISCV")))
    });
    g.finish();
}

/// Fig. 8 — pass@1 evaluation of a generated backend.
fn bench_fig8_passk(c: &mut Criterion) {
    let mut vega = trained_tiny_vega();
    let backend = vega.generate_backend("RISCV");
    let mut g = quick(c, "fig8_passk");
    g.bench_function("eval_generated_backend(RISCV)", |b| {
        b.iter(|| std::hint::black_box(eval_generated_backend(&vega.corpus, &backend)))
    });
    g.finish();
}

/// Table 2 — error-taxonomy computation over an evaluated backend.
fn bench_table2_taxonomy(c: &mut Criterion) {
    let mut vega = trained_tiny_vega();
    let backend = vega.generate_backend("RI5CY");
    let eval = eval_generated_backend(&vega.corpus, &backend);
    let mut g = quick(c, "table2_taxonomy");
    g.bench_function("error_rates", |b| b.iter(|| std::hint::black_box(eval.error_rates())));
    g.finish();
}

/// Fig. 9 — the ForkFlow baseline: fork + statement-level evaluation.
fn bench_fig9_forkflow(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let mut g = quick(c, "fig9_forkflow");
    g.bench_function("fork(Mips→RISCV)+stmt_eval", |b| {
        b.iter(|| {
            let ff = forkflow_backend(&corpus, "Mips", "RISCV");
            std::hint::black_box(eval_plain_backend(&corpus, &ff, "RISCV").stmt_accuracy())
        })
    });
    g.finish();
}

/// Tables 3/4 — statement counting and the effort model.
fn bench_table34_effort(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let ff = forkflow_backend(&corpus, "Mips", "RISCV");
    let eval = eval_plain_backend(&corpus, &ff, "RISCV");
    let dev = DeveloperProfile::developer_a();
    let mut g = quick(c, "table34_effort");
    g.bench_function("module_stmt_counts+hours", |b| {
        b.iter(|| {
            let manual: std::collections::BTreeMap<_, _> = eval
                .module_stmt_counts()
                .into_iter()
                .map(|(m, (_, man))| (m, man))
                .collect();
            std::hint::black_box(dev.estimate(&manual))
        })
    });
    g.finish();
}

/// Fig. 10 — compiling and simulating the benchmark suite at -O0 and -O3.
fn bench_fig10_perf(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let t = corpus.target("RISCV").unwrap();
    let vm = BackendVm::new(&t.spec, &t.backend);
    let kernels = benchmark_suite();
    let mut g = quick(c, "fig10_perf");
    g.bench_function("suite_O0_and_O3", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for k in &kernels {
                total += run_kernel(k, &vm, OptLevel::O0).unwrap().cycles;
                total += run_kernel(k, &vm, OptLevel::O3).unwrap().cycles;
            }
            std::hint::black_box(total)
        })
    });
    g.finish();
}

/// §4.1.2 — Stage 1 code-feature mapping over the whole corpus.
fn bench_stage1_mapping(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let mut g = quick(c, "stage1_code_feature_mapping");
    g.bench_function("templates+features(all groups)", |b| {
        b.iter(|| {
            let catalog = vega::prop_catalog(corpus.llvm_fs());
            let mut ixs = std::collections::BTreeMap::new();
            for t in corpus.training_targets() {
                ixs.insert(t.spec.name.clone(), vega::TgtIndex::build(&t.descriptions));
            }
            let mut n = 0usize;
            for (name, (_, members)) in corpus.function_groups(false) {
                let template = vega::FunctionTemplate::build(&name, &members);
                let feats = vega::select_features(&template, &catalog, &ixs);
                n += feats.props.len();
            }
            std::hint::black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    artifacts,
    bench_fig7_inference,
    bench_fig8_passk,
    bench_table2_taxonomy,
    bench_fig9_forkflow,
    bench_table34_effort,
    bench_fig10_perf,
    bench_stage1_mapping,
);
criterion_main!(artifacts);
