//! 1-thread vs N-thread wall-clock for the `vega-par`-accelerated hot paths:
//! the tiled/parallel matmul kernel and one data-parallel fine-tune epoch.
//! The outputs are bit-identical across rows by construction — only the
//! wall-clock may differ (on a single-core host the rows should roughly tie).

use vega_bench::Bench;
use vega_cpplite::lex;
use vega_model::{tokens_to_pieces, CodeBe, TrainConfig, Vocab};
use vega_nn::{Tensor, TransformerConfig};

/// Deterministic pseudo-random tensor (splitmix64).
fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed;
    let data = (0..rows * cols)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

fn bench_matmul(threads: &[usize]) {
    let a = fill(256, 256, 1);
    let b = fill(256, 256, 2);
    let mut g = Bench::group("matmul 256x256x256");
    for &t in threads {
        vega_par::set_threads(t);
        g.bench_function(&format!("{t} thread(s)"), || a.matmul(&b, false));
    }
    vega_par::set_threads(0);
    g.finish();
}

fn bench_finetune_epoch(threads: &[usize]) {
    // A small synthetic mapping task, big enough to fill several
    // micro-batches so the gradient shards actually fan out.
    let samples = [
        "x = 1;",
        "return x;",
        "y = x & 255;",
        "return y;",
        "z = x + y;",
        "return z;",
        "x = z;",
        "return 0;",
    ];
    let mut all_pieces: Vec<String> = Vec::new();
    for s in &samples {
        all_pieces.extend(tokens_to_pieces(&lex(s).unwrap()));
    }
    let vocab = Vocab::build(all_pieces.iter().map(String::as_str));
    let seqs: Vec<Vec<usize>> = samples
        .iter()
        .map(|s| vocab.encode_pieces(&tokens_to_pieces(&lex(s).unwrap())))
        .collect();
    let pairs: Vec<(Vec<usize>, Vec<usize>)> = (0..seqs.len())
        .map(|i| (seqs[i].clone(), seqs[(i + 1) % seqs.len()].clone()))
        .collect();
    let base = CodeBe::transformer(vocab, TransformerConfig::tiny);
    let cfg = TrainConfig {
        pretrain_steps: 0,
        finetune_epochs: 1,
        lr: 3e-3,
        seed: 1,
    };
    let mut g = Bench::group("finetune epoch (8 pairs, tiny transformer)");
    for &t in threads {
        vega_par::set_threads(t);
        g.bench_function(&format!("{t} thread(s)"), || {
            let mut m = base.clone();
            m.finetune(&pairs, &cfg)
        });
    }
    vega_par::set_threads(0);
    g.finish();
}

fn main() {
    let n = vega_par::threads().max(4);
    let threads = [1, n];
    bench_matmul(&threads);
    bench_finetune_epoch(&threads);
}
