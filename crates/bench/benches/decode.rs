//! Graph-path vs incremental (KV-cached) decode throughput.
//!
//! Runs teacher-forced decodes of controlled length (prefix 8/32/96) through
//! both paths on the small transformer config at 1 and 4 threads, reports
//! tokens/sec, and writes a machine-readable baseline to `BENCH_decode.json`
//! (override the path with `VEGA_BENCH_OUT`; `VEGA_DECODE_BENCH_FAST=1`
//! shrinks the sample count for the CI smoke run). The two paths are
//! asserted to produce identical token streams while being timed, and the
//! run prints `decode: smoke=ok` only if the incremental path is at least as
//! fast as the graph path at prefix 96.

use std::time::Instant;
use vega_bench::fmt_secs;
use vega_nn::{Transformer, TransformerConfig};
use vega_obs::json::Json;

/// Deterministic pseudo-random token ids (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

/// Median seconds per call over `samples` timed calls (after one warm-up).
fn median_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    const VOCAB: usize = 512;
    const SRC_LEN: usize = 48;
    let fast_mode = std::env::var("VEGA_DECODE_BENCH_FAST").is_ok();
    let samples = if fast_mode { 2 } else { 5 };
    let mut model = Transformer::new(TransformerConfig::small(VOCAB));
    let src = tokens(101, SRC_LEN, 2, VOCAB);
    let feed = tokens(102, 96, 2, VOCAB);

    let mut rows = Vec::new();
    let mut speedup_p96_t1 = 0.0f64;
    let mut smoke_ok = true;
    println!("== decode (small config, vocab {VOCAB}, src len {SRC_LEN}) ==");
    for &threads in &[1usize, 4] {
        vega_par::set_threads(threads);
        for &prefix in &[8usize, 32, 96] {
            let feed = &feed[..prefix];
            // The timed workloads are also an equivalence check.
            let reference = model.forced_steps(&src, feed);
            assert_eq!(
                reference,
                model.forced_steps_graph(&src, feed),
                "incremental and graph decode diverged (prefix {prefix}, {threads} threads)"
            );
            let inc_secs = median_secs(samples, || {
                std::hint::black_box(model.forced_steps(&src, feed));
            });
            let graph_secs = median_secs(samples, || {
                std::hint::black_box(model.forced_steps_graph(&src, feed));
            });
            let inc_tps = prefix as f64 / inc_secs;
            let graph_tps = prefix as f64 / graph_secs;
            let speedup = graph_secs / inc_secs;
            println!(
                "prefix {prefix:>2}, {threads} thread(s): incremental {:>9}/decode ({inc_tps:>9.0} tok/s) | graph {:>9}/decode ({graph_tps:>8.0} tok/s) | speedup {speedup:.1}x",
                fmt_secs(inc_secs),
                fmt_secs(graph_secs),
            );
            for (path, secs, tps) in [
                ("incremental", inc_secs, inc_tps),
                ("graph", graph_secs, graph_tps),
            ] {
                rows.push(Json::obj([
                    ("prefix", Json::num_usize(prefix)),
                    ("threads", Json::num_usize(threads)),
                    ("path", Json::str(path)),
                    ("seconds_per_decode", Json::num_f64(secs)),
                    ("tokens_per_sec", Json::num_f64(tps)),
                ]));
            }
            if prefix == 96 {
                if threads == 1 {
                    speedup_p96_t1 = speedup;
                }
                smoke_ok &= inc_tps >= graph_tps;
            }
        }
    }
    vega_par::set_threads(0);

    let out_path =
        std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_decode.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("decode")),
        ("config", Json::str("small")),
        ("vocab", Json::num_usize(VOCAB)),
        ("src_len", Json::num_usize(SRC_LEN)),
        ("samples_per_point", Json::num_usize(samples)),
        ("results", Json::Arr(rows)),
        ("speedup_prefix96_threads1", Json::num_f64(speedup_p96_t1)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!("wrote {out_path} (speedup at prefix 96, 1 thread: {speedup_p96_t1:.1}x)");
    if smoke_ok {
        println!("decode: smoke=ok");
    } else {
        println!("decode: smoke=FAIL (incremental slower than graph at prefix 96)");
        std::process::exit(1);
    }
}
