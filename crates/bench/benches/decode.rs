//! Graph-path vs incremental (KV-cached) decode throughput, per kernel mode.
//!
//! Runs teacher-forced decodes of controlled length (prefix 8/32/96) through
//! both paths on the small transformer config at 1 and 4 threads, under
//! every kernel mode this CPU can run (`scalar` always, `avx2` when
//! detected — see `vega_nn::kernel`), reports tokens/sec, and writes a
//! machine-readable baseline to `BENCH_decode.json` (override the path with
//! `VEGA_BENCH_OUT`; `VEGA_DECODE_BENCH_FAST=1` shrinks the sample count for
//! the CI smoke run). A matmul section times the dot-heavy transposed
//! product and the axpy non-transposed product per mode, since those are the
//! two inner-loop shapes the kernel tier dispatches.
//!
//! The ISA headline is measured on a *wide* decode (d_model 128): the small
//! config's 40-wide rows leave exp/normalization — scalar by the
//! determinism contract in every mode — as roughly half of each token, so
//! Amdahl caps any SIMD win there regardless of kernel quality. At
//! representative widths the kernel tier dominates and the ratio reflects
//! the kernels themselves. Both configs' rows land in the JSON.
//!
//! A speculative section trains a draft-friendly (transformer, GRU) pair
//! and times `speculative_greedy` against plain greedy per kernel mode
//! (exactness asserted before timing), and a logits-projection section
//! times the dot-form (pre-transposed) output projection against the
//! axpy-form layout it replaces on AVX2.
//!
//! The timed workloads double as equivalence checks (incremental == graph
//! token streams within each mode, speculative == plain greedy). The run
//! prints `decode: smoke=ok` only if the incremental path is at least as
//! fast as the graph path at prefix 96 in every mode, speculation beats
//! plain greedy by ≥1.3× in every mode, and — when AVX2 is available — the
//! AVX2 kernel beats scalar by the floors below on the transposed matmul
//! and on batched wide decode throughput, and dot-form logits stay above
//! the trip-wire floor against axpy-form.

use std::time::Instant;
use vega_bench::fmt_secs;
use vega_nn::kernel::{self, avx2_available, KernelMode};
use vega_nn::{
    speculative_greedy, BatchDecode, GruConfig, GruSeq2Seq, Seq2Seq, Tensor, Transformer,
    TransformerConfig,
};
use vega_obs::json::Json;

/// Smoke floor for AVX2-vs-scalar on the transposed matmul (measured
/// 5.5–6.8× here: the scalar dot is a serial dependency chain the
/// auto-vectorizer must preserve, so the fixed-tree AVX2 reduction wins
/// big). The gate sits far below the measurement so a noisy shared core
/// doesn't flake the build; the committed JSON carries the measured ratios.
const AVX2_SPEEDUP_FLOOR: f64 = 1.2;

/// Smoke floor for AVX2-vs-scalar on batched wide decode. Decode is
/// axpy-shaped (ascending-`k`, bit-identical across modes), which the
/// scalar build auto-vectorizes with SSE2 — and this host executes 256-bit
/// mul/add streams at barely above its 128-bit rate (plain matmul measures
/// ~1.2× too), so ~1.2–1.3× *is* the honest decode ratio here. The gate
/// only guards against AVX2 regressing below scalar.
const AVX2_DECODE_FLOOR: f64 = 1.05;

/// Smoke floor for speculative-vs-plain greedy tokens/s on the
/// draft-friendly config, enforced in every kernel mode. The structural win
/// is mode-independent: a k-token verify round streams each weight matrix
/// once for k + 1 logits rows where plain greedy streams it per token, so
/// speculation converts the memory-bound decode into the same amortization
/// the batch engine gets. Measured 1.4–1.6× here with a near-perfect draft
/// (this host's per-row batch amortization ceiling is ~1.6×, and on AVX2
/// the dot-form logits fast path speeds plain greedy's dominant per-token
/// cost too, narrowing the gap); the floor sits low so a noisy core
/// doesn't flake the build.
const SPEC_SPEEDUP_FLOOR: f64 = 1.3;

/// Smoke floor for dot-form-vs-axpy logits projection on AVX2 (the form
/// `kernel::dot_form_logits` switches to there). Both forms stream the same
/// weight bytes, so the matvec is bandwidth-bound and the AVX2 ratio
/// hovers around parity (0.9–1.2× run to run on this shared core) — the
/// headline dot-form win is AVX2-vs-scalar on the transposed shape
/// (`AVX2_SPEEDUP_FLOOR`), not dot-vs-axpy within AVX2. Scalar measures
/// ~0.27× (the serial dot chain loses badly, which is why the switch is
/// ISA-gated). The floor is a trip-wire: if the AVX2 ratio ever drops
/// toward the scalar number, the fixed-tree dot kernel stopped being
/// dispatched.
const DOT_FORM_FLOOR: f64 = 0.6;

/// Deterministic pseudo-random token ids (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

/// Minimum seconds per call over `samples` timed calls (after one warm-up).
/// On a shared core, interference only ever *adds* time, so the minimum is
/// the robust estimator of the workload's true cost — medians still wander
/// by ±25% run to run here.
fn min_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    f();
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn available_modes() -> Vec<KernelMode> {
    if avx2_available() {
        vec![KernelMode::Scalar, KernelMode::Avx2]
    } else {
        println!("(CPU lacks AVX2; benching scalar only)");
        vec![KernelMode::Scalar]
    }
}

fn main() {
    const VOCAB: usize = 512;
    const SRC_LEN: usize = 48;
    const MM_DIM: usize = 256;
    let fast_mode = std::env::var("VEGA_DECODE_BENCH_FAST").is_ok();
    let samples = if fast_mode { 2 } else { 5 };
    let mm_samples = if fast_mode { 3 } else { 9 };
    let mut model = Transformer::new(TransformerConfig::small(VOCAB));
    let src = tokens(101, SRC_LEN, 2, VOCAB);
    let feed = tokens(102, 96, 2, VOCAB);

    let mut rows = Vec::new();
    let mut smoke_ok = true;
    let mut speedup_p96_t1 = 0.0f64;
    // Per-mode incremental tok/s at prefix 96, 1 thread (the decode number
    // the AVX2-vs-scalar ratio is computed from).
    let mut inc_tps_by_mode: Vec<(&'static str, f64)> = Vec::new();

    println!("== decode (small config, vocab {VOCAB}, src len {SRC_LEN}) ==");
    for mode in available_modes() {
        let isa = kernel::set_mode(mode);
        let kname = isa.name();
        for &threads in &[1usize, 4] {
            vega_par::set_threads(threads);
            for &prefix in &[8usize, 32, 96] {
                let feed = &feed[..prefix];
                // The timed workloads are also an equivalence check.
                let reference = model.forced_steps(&src, feed);
                assert_eq!(
                    reference,
                    model.forced_steps_graph(&src, feed),
                    "incremental and graph decode diverged \
                     (kernel {kname}, prefix {prefix}, {threads} threads)"
                );
                let inc_secs = min_secs(samples, || {
                    std::hint::black_box(model.forced_steps(&src, feed));
                });
                let graph_secs = min_secs(samples, || {
                    std::hint::black_box(model.forced_steps_graph(&src, feed));
                });
                let inc_tps = prefix as f64 / inc_secs;
                let graph_tps = prefix as f64 / graph_secs;
                let speedup = graph_secs / inc_secs;
                println!(
                    "[{kname:>6}] prefix {prefix:>2}, {threads} thread(s): incremental {:>9}/decode ({inc_tps:>9.0} tok/s) | graph {:>9}/decode ({graph_tps:>8.0} tok/s) | speedup {speedup:.1}x",
                    fmt_secs(inc_secs),
                    fmt_secs(graph_secs),
                );
                for (path, secs, tps) in [
                    ("incremental", inc_secs, inc_tps),
                    ("graph", graph_secs, graph_tps),
                ] {
                    rows.push(Json::obj([
                        ("prefix", Json::num_usize(prefix)),
                        ("threads", Json::num_usize(threads)),
                        ("path", Json::str(path)),
                        ("kernel", Json::str(kname)),
                        ("seconds_per_decode", Json::num_f64(secs)),
                        ("tokens_per_sec", Json::num_f64(tps)),
                    ]));
                }
                if prefix == 96 {
                    if threads == 1 {
                        speedup_p96_t1 = speedup;
                        inc_tps_by_mode.push((kname, inc_tps));
                    }
                    smoke_ok &= inc_tps >= graph_tps;
                }
            }
        }
        vega_par::set_threads(1);
    }

    // Wide decode: the per-ISA headline. d_model 128 / 4 heads / d_ff 256 is
    // the shape the kernel tier is for; prefix 96 at 1 thread isolates the
    // kernels from pool scheduling.
    const WIDE_VOCAB: usize = 1024;
    let mut wide = Transformer::new(TransformerConfig {
        vocab: WIDE_VOCAB,
        d_model: 128,
        n_heads: 4,
        d_ff: 256,
        n_enc_layers: 1,
        n_dec_layers: 2,
        max_len: 96,
        seed: 0xC0DE,
    });
    let wide_src = tokens(201, SRC_LEN, 2, WIDE_VOCAB);
    let wide_feed = tokens(202, 96, 2, WIDE_VOCAB);
    const BATCH: usize = 8;
    let mut wide_tps_by_mode: Vec<(&'static str, f64)> = Vec::new();
    let mut batch_tps_by_mode: Vec<(&'static str, f64)> = Vec::new();
    println!("== decode (wide config: d_model 128, vocab {WIDE_VOCAB}, prefix 96, 1 thread) ==");
    {
        let modes = available_modes();
        // Equivalence check once per mode before timing.
        for &mode in &modes {
            let kname = kernel::set_mode(mode).name();
            let reference = wide.forced_steps(&wide_src, &wide_feed);
            assert_eq!(
                reference,
                wide.forced_steps_graph(&wide_src, &wide_feed),
                "incremental and graph decode diverged (wide config, kernel {kname})"
            );
        }
        // Interference on this shared core is low-frequency (whole seconds
        // of steal), so timing all of one mode's samples before the other's
        // lets a burst land on one side of the ratio. Interleave the modes
        // round-robin and take per-mode minima instead; round 0 is warm-up.
        let mut inc_min = vec![f64::INFINITY; modes.len()];
        let mut batch_min = vec![f64::INFINITY; modes.len()];
        for round in 0..samples + 1 {
            for (mi, &mode) in modes.iter().enumerate() {
                kernel::set_mode(mode);
                let t0 = Instant::now();
                std::hint::black_box(wide.forced_steps(&wide_src, &wide_feed));
                let inc = t0.elapsed().as_secs_f64();
                // Batched decode: BATCH lockstep sessions through one shared
                // weight pass per step — the serve engine's shape. Batch-1
                // streams every weight matrix from memory per token
                // (bandwidth-bound, which caps any ISA ratio); the batch
                // amortizes that stream 8 ways, so this is the number that
                // reflects the kernels. Joins run the encoder (graph path);
                // keep them out of the timed region so the measurement is
                // the lockstep decode steps alone.
                let mut bd = wide.begin_batch_decode(BATCH);
                let slots: Vec<usize> = (0..BATCH)
                    .map(|_| bd.join(&wide_src).expect("free slot"))
                    .collect();
                let t0 = Instant::now();
                for &t in &wide_feed {
                    let feeds: Vec<(usize, usize)> = slots.iter().map(|&s| (s, t)).collect();
                    bd.step(&feeds);
                }
                let batch = t0.elapsed().as_secs_f64();
                std::hint::black_box(bd.logits(slots[0])[0]);
                if round > 0 {
                    inc_min[mi] = inc_min[mi].min(inc);
                    batch_min[mi] = batch_min[mi].min(batch);
                }
            }
        }
        for (mi, &mode) in modes.iter().enumerate() {
            let kname = kernel::set_mode(mode).name();
            let (inc_secs, batch_secs) = (inc_min[mi], batch_min[mi]);
            let inc_tps = wide_feed.len() as f64 / inc_secs;
            let batch_tps = (BATCH * wide_feed.len()) as f64 / batch_secs;
            println!(
                "[{kname:>6}] incremental {:>9}/decode ({inc_tps:>9.0} tok/s) | batch {BATCH} {:>9}/decode ({batch_tps:>9.0} tok/s)",
                fmt_secs(inc_secs),
                fmt_secs(batch_secs),
            );
            for (path, secs, tps) in [
                ("incremental", inc_secs, inc_tps),
                ("batch8", batch_secs, batch_tps),
            ] {
                rows.push(Json::obj([
                    ("config", Json::str("wide")),
                    ("prefix", Json::num_usize(wide_feed.len())),
                    ("threads", Json::num_usize(1)),
                    ("path", Json::str(path)),
                    ("kernel", Json::str(kname)),
                    ("seconds_per_decode", Json::num_f64(secs)),
                    ("tokens_per_sec", Json::num_f64(tps)),
                ]));
            }
            wide_tps_by_mode.push((kname, inc_tps));
            batch_tps_by_mode.push((kname, batch_tps));
        }
    }

    // Speculative decode: GRU-drafted, transformer-verified, on a
    // draft-friendly task. The pattern pair makes the next token a pure
    // function of the current one (an 8-cycle over distinct ids), which both
    // models memorize quickly, so acceptance is near-perfect and the ratio
    // measures the multi-position `step_many` amortization rather than
    // draft luck. Period 8 keeps `looks_degenerate` (periods 1–4) from
    // truncating the decode early.
    // k = 8 so each verify round batches 9 logits rows — deep enough that
    // the per-round weight-stream amortization approaches the batch
    // engine's, which is what the floor below is calibrated against. The
    // 80-token pattern keeps the one wasted round at EOS a small fraction
    // of the decode.
    const SPEC_K: usize = 8;
    const SPEC_LEN: usize = 80;
    println!(
        "== speculative decode (wide config, k={SPEC_K}, {SPEC_LEN}-token pattern, 1 thread) =="
    );
    let mut spec_model = Transformer::new(TransformerConfig {
        vocab: WIDE_VOCAB,
        d_model: 128,
        n_heads: 4,
        d_ff: 256,
        n_enc_layers: 1,
        n_dec_layers: 2,
        max_len: 96,
        seed: 0xD0D0,
    });
    let cycle: Vec<usize> = (2..10).collect();
    let spec_tgt: Vec<usize> = (0..SPEC_LEN).map(|i| cycle[i % cycle.len()]).collect();
    let spec_src: Vec<usize> = spec_tgt[..cycle.len()].to_vec();
    let spec_pairs = vec![(spec_src.clone(), spec_tgt.clone())];
    let loss = vega_nn::train_until(&mut spec_model, &spec_pairs, 0, 1, 400, 3e-3, 0.02);
    assert!(
        loss < 0.1,
        "speculative bench: verifier did not memorize the pattern (loss {loss})"
    );
    // The draft is deliberately small — cheap proposals are the point.
    let mut spec_draft = GruSeq2Seq::new(GruConfig {
        vocab: WIDE_VOCAB,
        d_model: 32,
        max_len: 96,
        seed: 7,
    });
    let dloss = vega_nn::train_until(&mut spec_draft, &spec_pairs, 0, 1, 2000, 5e-3, 0.02);
    assert!(
        dloss < 0.1,
        "speculative bench: draft did not memorize the pattern (loss {dloss})"
    );
    let mut spec_speedup_by_mode: Vec<(&'static str, f64)> = Vec::new();
    let mut spec_accept_rate = 0.0f64;
    for mode in available_modes() {
        let kname = kernel::set_mode(mode).name();
        // Equivalence gate before timing: speculation must be exact.
        let plain = spec_model.greedy(&spec_src, 0, 1, 96);
        assert!(
            plain.len() >= 32,
            "speculative bench: pattern decode too short ({} tokens)",
            plain.len()
        );
        let (spec_out, report) =
            speculative_greedy(&spec_model, &spec_draft, &spec_src, 0, 1, 96, SPEC_K);
        assert_eq!(
            spec_out, plain,
            "speculative decode diverged from plain greedy (kernel {kname})"
        );
        let accept = report.accept_ratio();
        spec_accept_rate = accept;
        // Interleave the two paths round-robin with per-path minima (as in
        // the wide-decode and logits sections): timing all of one path's
        // samples before the other's lets a steal burst land on one side of
        // the ratio — in the 2-sample fast mode that alone swung the ratio
        // from 1.47x to 1.14x. Round 0 is warm-up. A decode is ~10 ms, so
        // extra rounds are cheap even for the CI smoke; 6 minimum keeps the
        // min estimator honest there.
        let spec_rounds = samples.max(6);
        let (mut plain_secs, mut spec_secs) = (f64::INFINITY, f64::INFINITY);
        for round in 0..spec_rounds + 1 {
            let t0 = Instant::now();
            std::hint::black_box(spec_model.greedy(&spec_src, 0, 1, 96));
            let p = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            std::hint::black_box(speculative_greedy(
                &spec_model,
                &spec_draft,
                &spec_src,
                0,
                1,
                96,
                SPEC_K,
            ));
            let s = t0.elapsed().as_secs_f64();
            if round > 0 {
                plain_secs = plain_secs.min(p);
                spec_secs = spec_secs.min(s);
            }
        }
        let plain_tps = plain.len() as f64 / plain_secs;
        let spec_tps = plain.len() as f64 / spec_secs;
        let speedup = plain_secs / spec_secs;
        println!(
            "[{kname:>6}] plain {:>9}/decode ({plain_tps:>8.0} tok/s) | speculative {:>9}/decode ({spec_tps:>8.0} tok/s) | accept {:>5.1}% | speedup {speedup:.2}x",
            fmt_secs(plain_secs),
            fmt_secs(spec_secs),
            accept * 100.0,
        );
        for (path, secs, tps) in [
            ("plain", plain_secs, plain_tps),
            ("speculative", spec_secs, spec_tps),
        ] {
            rows.push(Json::obj([
                ("bench", Json::str("speculative")),
                ("k", Json::num_usize(SPEC_K)),
                ("threads", Json::num_usize(1)),
                ("path", Json::str(path)),
                ("kernel", Json::str(kname)),
                ("seconds_per_decode", Json::num_f64(secs)),
                ("tokens_per_sec", Json::num_f64(tps)),
                ("accept_rate", Json::num_f64(accept)),
                ("rounds", Json::num_u64(report.rounds)),
            ]));
        }
        spec_speedup_by_mode.push((kname, speedup));
        smoke_ok &= speedup >= SPEC_SPEEDUP_FLOOR;
    }
    let spec_speedup = spec_speedup_by_mode
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);

    // Matmul section: the two inner-loop shapes the kernel tier serves.
    // Transposed products take one full-length dot per output element (the
    // AVX2 fixed-tree reduction — the big win); non-transposed products are
    // ascending-k axpy chains (bit-identical across modes, vectorized over
    // the output row).
    println!("== matmul ({MM_DIM}x{MM_DIM} · {MM_DIM}x{MM_DIM}, 1 thread) ==");
    let a = Tensor::from_vec(
        MM_DIM,
        MM_DIM,
        (0..MM_DIM * MM_DIM)
            .map(|i| ((i * 7 % 23) as f32) * 0.05 - 0.5)
            .collect(),
    );
    let b = Tensor::from_vec(
        MM_DIM,
        MM_DIM,
        (0..MM_DIM * MM_DIM)
            .map(|i| ((i * 5 % 19) as f32) * 0.04 - 0.4)
            .collect(),
    );
    let mut mm_secs_by_mode: Vec<(&'static str, f64, f64)> = Vec::new();
    for mode in available_modes() {
        let isa = kernel::set_mode(mode);
        let kname = isa.name();
        let t_secs = min_secs(mm_samples, || {
            std::hint::black_box(a.matmul(&b, true));
        });
        let n_secs = min_secs(mm_samples, || {
            std::hint::black_box(a.matmul(&b, false));
        });
        let flops = 2.0 * (MM_DIM as f64).powi(3);
        println!(
            "[{kname:>6}] transposed {:>9}/mul ({:>5.2} GFLOP/s) | plain {:>9}/mul ({:>5.2} GFLOP/s)",
            fmt_secs(t_secs),
            flops / t_secs / 1e9,
            fmt_secs(n_secs),
            flops / n_secs / 1e9,
        );
        for (shape, secs) in [("transposed", t_secs), ("plain", n_secs)] {
            rows.push(Json::obj([
                ("bench", Json::str("matmul")),
                ("dim", Json::num_usize(MM_DIM)),
                ("shape", Json::str(shape)),
                ("threads", Json::num_usize(1)),
                ("kernel", Json::str(kname)),
                ("seconds_per_matmul", Json::num_f64(secs)),
                ("gflops", Json::num_f64(flops / secs / 1e9)),
            ]));
        }
        mm_secs_by_mode.push((kname, t_secs, n_secs));
    }

    // Dot-form logits micro-bench: the per-token output projection
    // `h(1×d) · W_out` in its two layouts. Axpy form streams `W` (d×vocab)
    // with ascending-k accumulator updates; dot form streams the
    // pre-transposed `Wᵀ` (vocab×d) with one fixed-tree dot per logit —
    // the layout `kernel::dot_form_logits` switches decode to on AVX2.
    // Scalar is recorded too: its serial dot chain *loses* to the
    // auto-vectorized axpy, which is exactly why the switch is ISA-gated.
    const LOGITS_D: usize = 128;
    const LOGITS_REPS: usize = 256;
    println!("== logits projection (1x{LOGITS_D} · {LOGITS_D}x{WIDE_VOCAB}, {LOGITS_REPS} reps, 1 thread) ==");
    let h = Tensor::from_vec(
        1,
        LOGITS_D,
        (0..LOGITS_D)
            .map(|i| ((i % 13) as f32) * 0.03 - 0.2)
            .collect(),
    );
    let w_axpy = Tensor::from_vec(
        LOGITS_D,
        WIDE_VOCAB,
        (0..LOGITS_D * WIDE_VOCAB)
            .map(|i| ((i * 11 % 29) as f32) * 0.02 - 0.3)
            .collect(),
    );
    let w_dot = Tensor::from_vec(
        WIDE_VOCAB,
        LOGITS_D,
        (0..WIDE_VOCAB * LOGITS_D)
            .map(|i| ((i * 11 % 29) as f32) * 0.02 - 0.3)
            .collect(),
    );
    let mut dot_form_speedup = 1.0f64;
    for mode in available_modes() {
        let kname = kernel::set_mode(mode).name();
        // Interleave the two forms round-robin (as in the wide-decode
        // section): timing all of one form's samples before the other's
        // lets a steal burst land on one side of the ratio. Round 0 is
        // warm-up.
        let (mut axpy_secs, mut dot_secs) = (f64::INFINITY, f64::INFINITY);
        for round in 0..mm_samples + 1 {
            let t0 = Instant::now();
            for _ in 0..LOGITS_REPS {
                std::hint::black_box(h.matmul(&w_axpy, false));
            }
            let a = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            for _ in 0..LOGITS_REPS {
                std::hint::black_box(h.matmul(&w_dot, true));
            }
            let d = t0.elapsed().as_secs_f64();
            if round > 0 {
                axpy_secs = axpy_secs.min(a);
                dot_secs = dot_secs.min(d);
            }
        }
        let gain = axpy_secs / dot_secs;
        println!(
            "[{kname:>6}] axpy-form {:>9}/proj | dot-form {:>9}/proj | dot-form gain {gain:.2}x",
            fmt_secs(axpy_secs / LOGITS_REPS as f64),
            fmt_secs(dot_secs / LOGITS_REPS as f64),
        );
        for (form, secs) in [("axpy", axpy_secs), ("dot", dot_secs)] {
            rows.push(Json::obj([
                ("bench", Json::str("logits_projection")),
                ("d_model", Json::num_usize(LOGITS_D)),
                ("vocab", Json::num_usize(WIDE_VOCAB)),
                ("form", Json::str(form)),
                ("threads", Json::num_usize(1)),
                ("kernel", Json::str(kname)),
                (
                    "seconds_per_projection",
                    Json::num_f64(secs / LOGITS_REPS as f64),
                ),
            ]));
        }
        if kname == "avx2" {
            dot_form_speedup = gain;
            smoke_ok &= gain >= DOT_FORM_FLOOR;
        }
    }
    kernel::set_mode(KernelMode::Auto);
    vega_par::set_threads(0);

    // AVX2-vs-scalar ratios (1.0 when only one mode ran).
    let ratio = |xs: &[(&str, f64)]| -> f64 {
        match (
            xs.iter().find(|(k, _)| *k == "scalar"),
            xs.iter().find(|(k, _)| *k == "avx2"),
        ) {
            (Some((_, s)), Some((_, a))) => s / a,
            _ => 1.0,
        }
    };
    let mm_t: Vec<(&str, f64)> = mm_secs_by_mode.iter().map(|&(k, t, _)| (k, t)).collect();
    let mm_n: Vec<(&str, f64)> = mm_secs_by_mode.iter().map(|&(k, _, n)| (k, n)).collect();
    let matmul_speedup = ratio(&mm_t);
    let matmul_plain_speedup = ratio(&mm_n);
    let inv = |xs: &[(&'static str, f64)]| -> Vec<(&str, f64)> {
        xs.iter().map(|&(k, tps)| (k, 1.0 / tps)).collect()
    };
    let decode_small_speedup = ratio(&inv(&inc_tps_by_mode));
    let decode_wide1_speedup = ratio(&inv(&wide_tps_by_mode));
    let decode_speedup = ratio(&inv(&batch_tps_by_mode));
    if avx2_available() {
        println!(
            "avx2 vs scalar: matmul(transposed) {matmul_speedup:.2}x, matmul(plain) {matmul_plain_speedup:.2}x, decode(wide batch8) {decode_speedup:.2}x, decode(wide batch1) {decode_wide1_speedup:.2}x, decode(small) {decode_small_speedup:.2}x"
        );
        smoke_ok &= matmul_speedup >= AVX2_SPEEDUP_FLOOR;
        smoke_ok &= decode_speedup >= AVX2_DECODE_FLOOR;
    }
    println!(
        "speculative vs plain greedy: {spec_speedup:.2}x (worst mode, accept {:.1}%), dot-form logits {dot_form_speedup:.2}x axpy on avx2",
        spec_accept_rate * 100.0
    );

    let out_path =
        std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_decode.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("decode")),
        ("config", Json::str("small")),
        ("vocab", Json::num_usize(VOCAB)),
        ("src_len", Json::num_usize(SRC_LEN)),
        ("samples_per_point", Json::num_usize(samples)),
        ("results", Json::Arr(rows)),
        ("speedup_prefix96_threads1", Json::num_f64(speedup_p96_t1)),
        ("avx2_matmul_speedup", Json::num_f64(matmul_speedup)),
        ("avx2_decode_speedup", Json::num_f64(decode_speedup)),
        (
            "avx2_decode_speedup_batch1",
            Json::num_f64(decode_wide1_speedup),
        ),
        (
            "avx2_decode_speedup_small",
            Json::num_f64(decode_small_speedup),
        ),
        ("speculative_speedup", Json::num_f64(spec_speedup)),
        ("speculative_accept_rate", Json::num_f64(spec_accept_rate)),
        ("dot_form_logits_speedup", Json::num_f64(dot_form_speedup)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!("wrote {out_path} (decode speedup at prefix 96, 1 thread: {speedup_p96_t1:.1}x)");
    if smoke_ok {
        println!("decode: smoke=ok");
    } else {
        println!(
            "decode: smoke=FAIL (incremental slower than graph at prefix 96, avx2 matmul under \
             {AVX2_SPEEDUP_FLOOR}x scalar, avx2 batched decode under {AVX2_DECODE_FLOOR}x, \
             speculative under {SPEC_SPEEDUP_FLOOR}x plain greedy, or dot-form logits under \
             {DOT_FORM_FLOOR}x axpy on avx2)"
        );
        std::process::exit(1);
    }
}
