//! Throughput benches for the substrates: alignment, the NN stack, the
//! interpreter and the corpus builder.

use vega_bench::Bench;
use vega_corpus::{Corpus, CorpusConfig};
use vega_cpplite::{lex, parse_function};
use vega_model::{tokens_to_pieces, Vocab};
use vega_nn::{Seq2Seq, Transformer, TransformerConfig};
use vega_treediff::{align_functions, gumtree_match, Tree};

fn bench_treediff() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let arm = corpus
        .target("ARM")
        .unwrap()
        .backend
        .function("getRelocType")
        .unwrap();
    let mips = corpus
        .target("Mips")
        .unwrap()
        .backend
        .function("getRelocType")
        .unwrap();
    let t1 = Tree::build(&arm.body);
    let t2 = Tree::build(&mips.body);
    let mut g = Bench::group("substrate_treediff");
    g.bench_function("gumtree_match(getRelocType ARM vs Mips)", || {
        gumtree_match(&t1, &t2).len()
    });
    g.bench_function("align_functions", || align_functions(arm, mips).pairs.len());
    g.finish();
}

fn bench_parser_interp() {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let rv = corpus.target("RISCV").unwrap();
    let f = rv.backend.function("getRelocType").unwrap();
    let src = vega_cpplite::render_function(f);
    let mut g = Bench::group("substrate_cpplite");
    g.bench_function("lex+parse getRelocType", || {
        parse_function(&src).unwrap().stmt_count()
    });
    g.bench_function("regression_suite(getRelocType)", || {
        vega_minicc::regression_test("getRelocType", f, f, &rv.spec).passed()
    });
    g.finish();
}

fn bench_nn() {
    let toks = lex("case ARM::fixup_arm_movt_hi16: return ELF::R_ARM_MOVT_PREL;").unwrap();
    let vocab = Vocab::build(tokens_to_pieces(&toks).iter().map(String::as_str));
    let seq = vocab.encode_pieces(&tokens_to_pieces(&toks));
    let mut model = Transformer::new(TransformerConfig::tiny(vocab.len()));
    let mut g = Bench::group("substrate_nn");
    g.bench_function("transformer_train_step", || {
        let loss = model.train_example(&seq, &seq, 1, 2);
        model.step(1e-3);
        loss
    });
    g.bench_function("transformer_greedy_decode", || {
        model.greedy(&seq, 1, 2, 24).len()
    });
    g.finish();
}

fn bench_corpus_build() {
    let mut g = Bench::group("substrate_corpus");
    g.bench_function("Corpus::build(tiny)", || {
        Corpus::build(&CorpusConfig::tiny()).targets().len()
    });
    g.finish();
}

fn main() {
    bench_treediff();
    bench_parser_interp();
    bench_nn();
    bench_corpus_build();
}
