//! Throughput benches for the substrates: alignment, the NN stack, the
//! interpreter and the corpus builder.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use vega_corpus::{Corpus, CorpusConfig};
use vega_cpplite::{lex, parse_function};
use vega_model::{tokens_to_pieces, Vocab};
use vega_nn::{Seq2Seq, Transformer, TransformerConfig};
use vega_treediff::{align_functions, gumtree_match, Tree};

fn quick(c: &mut Criterion, name: &str) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10).measurement_time(Duration::from_secs(4)).warm_up_time(Duration::from_millis(500));
    g
}

fn bench_treediff(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let arm = corpus.target("ARM").unwrap().backend.function("getRelocType").unwrap();
    let mips = corpus.target("Mips").unwrap().backend.function("getRelocType").unwrap();
    let mut g = quick(c, "substrate_treediff");
    g.bench_function("gumtree_match(getRelocType ARM vs Mips)", |b| {
        let t1 = Tree::build(&arm.body);
        let t2 = Tree::build(&mips.body);
        b.iter(|| std::hint::black_box(gumtree_match(&t1, &t2).len()))
    });
    g.bench_function("align_functions", |b| {
        b.iter(|| std::hint::black_box(align_functions(arm, mips).pairs.len()))
    });
    g.finish();
}

fn bench_parser_interp(c: &mut Criterion) {
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let rv = corpus.target("RISCV").unwrap();
    let src = vega_cpplite::render_function(rv.backend.function("getRelocType").unwrap());
    let mut g = quick(c, "substrate_cpplite");
    g.bench_function("lex+parse getRelocType", |b| {
        b.iter(|| std::hint::black_box(parse_function(&src).unwrap().stmt_count()))
    });
    g.bench_function("regression_suite(getRelocType)", |b| {
        let f = rv.backend.function("getRelocType").unwrap();
        b.iter(|| {
            std::hint::black_box(vega_minicc::regression_test("getRelocType", f, f, &rv.spec).passed())
        })
    });
    g.finish();
}

fn bench_nn(c: &mut Criterion) {
    let toks = lex("case ARM::fixup_arm_movt_hi16: return ELF::R_ARM_MOVT_PREL;").unwrap();
    let vocab = Vocab::build(tokens_to_pieces(&toks).iter().map(String::as_str));
    let seq = vocab.encode_pieces(&tokens_to_pieces(&toks));
    let mut model = Transformer::new(TransformerConfig::tiny(vocab.len()));
    let mut g = quick(c, "substrate_nn");
    g.bench_function("transformer_train_step", |b| {
        b.iter(|| {
            let loss = model.train_example(&seq, &seq, 1, 2);
            model.step(1e-3);
            std::hint::black_box(loss)
        })
    });
    g.bench_function("transformer_greedy_decode", |b| {
        b.iter(|| std::hint::black_box(model.greedy(&seq, 1, 2, 24).len()))
    });
    g.finish();
}

fn bench_corpus_build(c: &mut Criterion) {
    let mut g = quick(c, "substrate_corpus");
    g.bench_function("Corpus::build(tiny)", |b| {
        b.iter(|| std::hint::black_box(Corpus::build(&CorpusConfig::tiny()).targets().len()))
    });
    g.finish();
}

criterion_group!(substrates, bench_treediff, bench_parser_interp, bench_nn, bench_corpus_build);
criterion_main!(substrates);
