//! Continuous batching vs replica fanout: served tokens/sec at equal
//! compute budget, on a decode-dominated `score` workload.
//!
//! Generation on this corpus is prefill-dominated (one ~50-token encoder
//! pass per request, then a couple of greedy tokens per statement), and
//! prefill already amortizes weight reads internally — so batching cannot
//! show its win there. The `score` op is the decode-dominated serving shape:
//! each request forces many-token candidate sequences through the decoder
//! one token at a time, which is exactly the memory-bound loop the broker's
//! lockstep batching amortizes across requests.
//!
//! Setup: a deploy-shaped (untrained) transformer over the default corpus
//! vocabulary — d_model 512, d_ff 2048, 1 encoder + 3 decoder layers, far
//! larger than L2, so single-slot decode is weight-bandwidth-bound. Four
//! concurrent clients each fire `score` requests (4 candidates x 88 tokens)
//! against an in-process server in `replica` mode and again in `batch`
//! mode. Every response is byte-checked against direct in-process scoring
//! while being timed. Reports scored tokens/sec per mode and writes
//! `BENCH_serve.json` (override with `VEGA_BENCH_OUT`;
//! `VEGA_SERVE_BENCH_FAST=1` shrinks the rep count for the CI smoke run).
//! Prints `serve: smoke=ok` only if the batch engine clears 2x the replica
//! baseline.

use std::time::Instant;
use vega::{Vega, VegaConfig};
use vega_model::CodeBe;
use vega_nn::TransformerConfig;
use vega_obs::json::Json;
use vega_serve::{Client, Engine, EngineMode, ServeConfig, Server};

const CLIENTS: usize = 4;
const CANDS: usize = 4;
const CAND_LEN: usize = 88;

/// Small-scale pipeline config, zero training epochs: only the corpus
/// artifacts (vocabulary, templates, catalog) matter here; the bench model's
/// weights are freshly initialized below.
fn bench_config() -> VegaConfig {
    let mut cfg = VegaConfig::default();
    cfg.train.pretrain_steps = 0;
    cfg.train.finetune_epochs = 0;
    cfg
}

/// A deploy-shaped engine: the corpus vocabulary under a transformer whose
/// weight matrices dwarf the cache hierarchy. Construction is deterministic
/// (seeded init), so every call yields a bit-identical model — the reference
/// engine and both served engines score identically by construction.
fn bench_engine(vocab: &vega_model::Vocab) -> Engine {
    let model = CodeBe::transformer(vocab.clone(), |v| TransformerConfig {
        vocab: v,
        d_model: 512,
        n_heads: 4,
        d_ff: 2048,
        n_enc_layers: 1,
        n_dec_layers: 3,
        max_len: 128,
        seed: 0xC0DE,
    });
    let vega = Vega::with_model(bench_config(), model).expect("model fits the corpus");
    Engine::new(vega)
}

/// splitmix64 — the workspace's stock deterministic mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic candidate sequences for one client, from low token ids
/// every vocabulary contains.
fn candidates_for(client: usize) -> Vec<Vec<usize>> {
    (0..CANDS)
        .map(|c| {
            (0..CAND_LEN)
                .map(|t| {
                    4 + (splitmix((client as u64) << 32 | (c as u64) << 16 | t as u64) % 16)
                        as usize
                })
                .collect()
        })
        .collect()
}

struct ModeRun {
    tokens_per_sec: f64,
    requests_per_sec: f64,
    tokens: u64,
    requests: u64,
    seconds: f64,
}

/// One timed run: `reps` score requests per client. Each client's candidate
/// set is fixed, so every response is byte-checked against the precomputed
/// direct scores.
fn run_mode(
    vocab: &vega_model::Vocab,
    mode: EngineMode,
    pairs: &[(String, String)],
    expected: &[String],
    reps: usize,
) -> ModeRun {
    let cfg = ServeConfig {
        engine: mode,
        batch: CLIENTS,
        // Room for every client's full candidate fan-out to batch at once.
        batch_slots: CLIENTS * CANDS,
        cache_cap: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(bench_engine(vocab), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    // Warm-up round: first decode per client pays one-time costs in both
    // modes (page-in of freshly initialized weights, broker spin-up).
    {
        let mut c = Client::connect(&addr).unwrap();
        let (t, g) = &pairs[0];
        let resp = c.score(t, g, &candidates_for(0), None).unwrap();
        assert_eq!(
            resp.field("ok").unwrap(),
            &Json::Bool(true),
            "{}",
            resp.render()
        );
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let (t, g) = pairs[i].clone();
            let want = expected[i].clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let cands = candidates_for(i);
                let mut tokens = 0u64;
                for _ in 0..reps {
                    let resp = c.score(&t, &g, &cands, None).unwrap();
                    assert_eq!(
                        resp.field("ok").unwrap(),
                        &Json::Bool(true),
                        "mode={mode:?}: {}",
                        resp.render()
                    );
                    assert_eq!(
                        resp.field("scores").unwrap().render(),
                        want,
                        "mode={mode:?}: served scores diverged from direct scoring"
                    );
                    tokens += resp
                        .field("timing")
                        .unwrap()
                        .field("tokens")
                        .unwrap()
                        .as_u64()
                        .unwrap();
                }
                tokens
            })
        })
        .collect();
    let tokens: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let seconds = start.elapsed().as_secs_f64();
    server.shutdown();
    server.join();

    let requests = (CLIENTS * reps) as u64;
    ModeRun {
        tokens_per_sec: tokens as f64 / seconds,
        requests_per_sec: requests as f64 / seconds,
        tokens,
        requests,
        seconds,
    }
}

fn main() {
    let fast_mode = std::env::var("VEGA_SERVE_BENCH_FAST").is_ok();
    let reps = if fast_mode { 1 } else { 4 };

    // One compute thread: any win is batching, not parallelism (scoring runs
    // on connection threads in both modes; they contend for the same core).
    vega_par::set_threads(1);
    let trained = Vega::train(bench_config());
    let vocab = trained.model().vocab.clone();

    let reference = bench_engine(&vocab);
    let targets = reference.target_names();
    let groups = reference.group_names();
    assert!(targets.len() >= 2 && groups.len() >= 2, "corpus shrank");
    let pairs: Vec<(String, String)> = (0..CLIENTS)
        .map(|i| (targets[i % 2].clone(), groups[(i / 2) % 2].clone()))
        .collect();
    let expected: Vec<String> = pairs
        .iter()
        .enumerate()
        .map(|(i, (t, g))| {
            let mut replica = reference.replica();
            let scores = reference
                .try_score_with(&mut replica, t, g, &candidates_for(i), None)
                .expect("direct scoring");
            Json::Arr(scores.into_iter().map(Json::num_f32).collect()).render()
        })
        .collect();
    drop(reference);

    println!(
        "== serve ({CLIENTS} clients, score op, {CANDS}x{CAND_LEN}-token candidates, \
         1 compute thread, {reps} reps/client) =="
    );
    let replica = run_mode(&vocab, EngineMode::Replica, &pairs, &expected, reps);
    let batch = run_mode(&vocab, EngineMode::Batch, &pairs, &expected, reps);
    vega_par::set_threads(0);

    let speedup = batch.tokens_per_sec / replica.tokens_per_sec;
    for (name, run) in [("replica", &replica), ("batch", &batch)] {
        println!(
            "{name:>7}: {:>8.0} tok/s | {:>6.1} req/s | {} tokens, {} requests in {:.2}s",
            run.tokens_per_sec, run.requests_per_sec, run.tokens, run.requests, run.seconds
        );
    }
    println!("batch/replica tokens/sec: {speedup:.2}x");

    let out_path =
        std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("serve")),
        ("workload", Json::str("score")),
        (
            "model",
            Json::str("transformer d512 ff2048 enc1 dec3 (untrained)"),
        ),
        ("clients", Json::num_usize(CLIENTS)),
        ("candidates_per_request", Json::num_usize(CANDS)),
        ("candidate_tokens", Json::num_usize(CAND_LEN)),
        ("compute_threads", Json::num_usize(1)),
        ("reps_per_client", Json::num_usize(reps)),
        (
            "results",
            Json::Arr(
                [("replica", &replica), ("batch", &batch)]
                    .into_iter()
                    .map(|(name, run)| {
                        Json::obj([
                            ("engine", Json::str(name)),
                            ("tokens_per_sec", Json::num_f64(run.tokens_per_sec)),
                            ("requests_per_sec", Json::num_f64(run.requests_per_sec)),
                            ("tokens", Json::num_u64(run.tokens)),
                            ("requests", Json::num_u64(run.requests)),
                            ("seconds", Json::num_f64(run.seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("speedup_tokens_per_sec", Json::num_f64(speedup)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!("wrote {out_path} (batch speedup {speedup:.2}x)");
    if speedup >= 2.0 {
        println!("serve: smoke=ok");
    } else {
        println!("serve: smoke=FAIL (batch engine under 2x the replica baseline)");
        std::process::exit(1);
    }
}
