//! Serving-path throughput on the `score` workload: prefill routing vs the
//! broker, and engine-mode parity.
//!
//! Every token of a `score` candidate is known up front, so
//! `forced_logprob` scores the whole sequence in ONE multi-position
//! `step_many` pass — each weight matrix streams from memory once per
//! candidate instead of once per token. That amortization *within* a
//! request beats the broker's cross-request lockstep batching (which still
//! feeds one token per slot per pass), so `handle_score` bypasses the
//! broker in both engine modes. Continuous batching keeps its win where it
//! belongs — *generation*, where the next token is unknown until the
//! previous one is decoded (the wide batch-8 rows in `BENCH_decode.json`
//! pin that amortization).
//!
//! Setup: a deploy-shaped (untrained) transformer over the default corpus
//! vocabulary — d_model 512, d_ff 2048, 1 encoder + 3 decoder layers, far
//! larger than L2, so single-stream decode is weight-bandwidth-bound. Two
//! measurements, both byte-checked against direct in-process scoring:
//!
//! * **engine parity** — four concurrent clients fire `score` requests
//!   (4 candidates x 88 tokens) at an in-process server in `replica` mode
//!   and again in `batch` mode; both hit the same prefill path, so the
//!   batch engine must not tax scoring (floor below);
//! * **prefill vs stepped** — in-process, the one-pass `forced_logprob`
//!   against the token-at-a-time `begin_decode`/`step` loop it replaced
//!   (bit-identical logprob asserted first), interleaved round-robin with
//!   per-path minima so a steal burst cannot land on one side of the ratio.
//!
//! Writes `BENCH_serve.json` (override with `VEGA_BENCH_OUT`;
//! `VEGA_SERVE_BENCH_FAST=1` shrinks the rep count for the CI smoke run).
//! Prints `serve: smoke=ok` only if both floors hold.

use std::time::Instant;
use vega::{Vega, VegaConfig};
use vega_model::CodeBe;
use vega_nn::kernel::softmax_row;
use vega_nn::{Seq2Seq, Transformer, TransformerConfig};
use vega_obs::json::Json;
use vega_serve::{Client, Engine, EngineMode, ServeConfig, Server};

const CLIENTS: usize = 4;
const CANDS: usize = 4;
const CAND_LEN: usize = 88;

/// Engine-mode parity floor for served score tokens/sec (batch / replica).
/// Score takes the identical prefill path in both modes, so this should sit
/// at ~1.0; the floor leaves room for scheduler noise on a shared core while
/// still catching the broker being (re-)inserted into the scoring path.
const BATCH_PARITY_FLOOR: f64 = 0.75;

/// Floor for the one-pass prefill scorer against the token-stepped loop it
/// replaced, on the deploy-shaped model (measured ~3x here: 88 rows per
/// weight-matrix stream vs 1). Falling toward 1x means `forced_logprob`
/// stopped using `step_many`.
const PREFILL_SPEEDUP_FLOOR: f64 = 1.5;

/// Small-scale pipeline config, zero training epochs: only the corpus
/// artifacts (vocabulary, templates, catalog) matter here; the bench model's
/// weights are freshly initialized below.
fn bench_config() -> VegaConfig {
    let mut cfg = VegaConfig::default();
    cfg.train.pretrain_steps = 0;
    cfg.train.finetune_epochs = 0;
    cfg
}

/// A deploy-shaped engine: the corpus vocabulary under a transformer whose
/// weight matrices dwarf the cache hierarchy. Construction is deterministic
/// (seeded init), so every call yields a bit-identical model — the reference
/// engine and both served engines score identically by construction.
fn deploy_cfg(vocab: usize) -> TransformerConfig {
    TransformerConfig {
        vocab,
        d_model: 512,
        n_heads: 4,
        d_ff: 2048,
        n_enc_layers: 1,
        n_dec_layers: 3,
        max_len: 128,
        seed: 0xC0DE,
    }
}

fn bench_engine(vocab: &vega_model::Vocab) -> Engine {
    let model = CodeBe::transformer(vocab.clone(), deploy_cfg);
    let vega = Vega::with_model(bench_config(), model).expect("model fits the corpus");
    Engine::new(vega)
}

/// splitmix64 — the workspace's stock deterministic mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic candidate sequences for one client, from low token ids
/// every vocabulary contains.
fn candidates_for(client: usize) -> Vec<Vec<usize>> {
    (0..CANDS)
        .map(|c| {
            (0..CAND_LEN)
                .map(|t| {
                    4 + (splitmix((client as u64) << 32 | (c as u64) << 16 | t as u64) % 16)
                        as usize
                })
                .collect()
        })
        .collect()
}

struct ModeRun {
    tokens_per_sec: f64,
    requests_per_sec: f64,
    tokens: u64,
    requests: u64,
    seconds: f64,
}

/// One timed run: `reps` score requests per client. Each client's candidate
/// set is fixed, so every response is byte-checked against the precomputed
/// direct scores.
fn run_mode(
    vocab: &vega_model::Vocab,
    mode: EngineMode,
    pairs: &[(String, String)],
    expected: &[String],
    reps: usize,
) -> ModeRun {
    let cfg = ServeConfig {
        engine: mode,
        batch: CLIENTS,
        // Room for every client's full candidate fan-out to batch at once.
        batch_slots: CLIENTS * CANDS,
        cache_cap: 0,
        ..ServeConfig::default()
    };
    let server = Server::start(bench_engine(vocab), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    // Warm-up round: first decode per client pays one-time costs in both
    // modes (page-in of freshly initialized weights, broker spin-up).
    {
        let mut c = Client::connect(&addr).unwrap();
        let (t, g) = &pairs[0];
        let resp = c.score(t, g, &candidates_for(0), None).unwrap();
        assert_eq!(
            resp.field("ok").unwrap(),
            &Json::Bool(true),
            "{}",
            resp.render()
        );
    }

    let start = Instant::now();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let (t, g) = pairs[i].clone();
            let want = expected[i].clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let cands = candidates_for(i);
                let mut tokens = 0u64;
                for _ in 0..reps {
                    let resp = c.score(&t, &g, &cands, None).unwrap();
                    assert_eq!(
                        resp.field("ok").unwrap(),
                        &Json::Bool(true),
                        "mode={mode:?}: {}",
                        resp.render()
                    );
                    assert_eq!(
                        resp.field("scores").unwrap().render(),
                        want,
                        "mode={mode:?}: served scores diverged from direct scoring"
                    );
                    tokens += resp
                        .field("timing")
                        .unwrap()
                        .field("tokens")
                        .unwrap()
                        .as_u64()
                        .unwrap();
                }
                tokens
            })
        })
        .collect();
    let tokens: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let seconds = start.elapsed().as_secs_f64();
    server.shutdown();
    server.join();

    let requests = (CLIENTS * reps) as u64;
    ModeRun {
        tokens_per_sec: tokens as f64 / seconds,
        requests_per_sec: requests as f64 / seconds,
        tokens,
        requests,
        seconds,
    }
}

fn main() {
    let fast_mode = std::env::var("VEGA_SERVE_BENCH_FAST").is_ok();
    let reps = if fast_mode { 1 } else { 4 };

    // One compute thread: any win is batching, not parallelism (scoring runs
    // on connection threads in both modes; they contend for the same core).
    vega_par::set_threads(1);
    let trained = Vega::train(bench_config());
    let vocab = trained.model().vocab.clone();

    let reference = bench_engine(&vocab);
    let targets = reference.target_names();
    let groups = reference.group_names();
    assert!(targets.len() >= 2 && groups.len() >= 2, "corpus shrank");
    let pairs: Vec<(String, String)> = (0..CLIENTS)
        .map(|i| (targets[i % 2].clone(), groups[(i / 2) % 2].clone()))
        .collect();
    let expected: Vec<String> = pairs
        .iter()
        .enumerate()
        .map(|(i, (t, g))| {
            let mut replica = reference.replica();
            let scores = reference
                .try_score_with(&mut replica, t, g, &candidates_for(i), None)
                .expect("direct scoring");
            Json::Arr(scores.into_iter().map(Json::num_f32).collect()).render()
        })
        .collect();
    drop(reference);

    println!(
        "== serve ({CLIENTS} clients, score op, {CANDS}x{CAND_LEN}-token candidates, \
         1 compute thread, {reps} reps/client) =="
    );
    let replica = run_mode(&vocab, EngineMode::Replica, &pairs, &expected, reps);
    let batch = run_mode(&vocab, EngineMode::Batch, &pairs, &expected, reps);

    let parity = batch.tokens_per_sec / replica.tokens_per_sec;
    for (name, run) in [("replica", &replica), ("batch", &batch)] {
        println!(
            "{name:>7}: {:>8.0} tok/s | {:>6.1} req/s | {} tokens, {} requests in {:.2}s",
            run.tokens_per_sec, run.requests_per_sec, run.tokens, run.requests, run.seconds
        );
    }
    println!("batch/replica tokens/sec: {parity:.2}x (score takes the same prefill path in both engines)");

    // In-process: the routing decision itself. One multi-position prefill
    // pass per candidate vs the token-at-a-time loop `forced_logprob` used
    // before `step_many` existed, on the same deploy-shaped model.
    let vocab_n = vocab.len();
    let mut model = Transformer::new(deploy_cfg(vocab_n));
    let src: Vec<usize> = (0..48)
        .map(|t| 4 + (splitmix(0xBEEF ^ t as u64) % 16) as usize)
        .collect();
    let nn_pairs: Vec<(Vec<usize>, Vec<usize>)> = candidates_for(0)
        .into_iter()
        .map(|c| {
            let mut tin = vec![1usize];
            tin.extend(&c[..c.len() - 1]);
            (tin, c)
        })
        .collect();
    let stepped_once = |m: &Transformer| -> f32 {
        let mut total = 0.0f32;
        let mut probs = vec![0.0f32; vocab_n];
        for (tin, tout) in &nn_pairs {
            let mut st = m.begin_decode(&src);
            let mut lp = 0.0f32;
            for (&ti, &to) in tin.iter().zip(tout.iter()) {
                probs.copy_from_slice(st.step(ti));
                softmax_row(&mut probs);
                lp += probs[to].max(1e-12).ln();
            }
            total += lp;
        }
        total
    };
    let prefill_lp: f32 = nn_pairs
        .iter()
        .map(|(tin, tout)| model.forced_logprob(&src, tin, tout))
        .sum();
    let stepped_lp = stepped_once(&model);
    assert_eq!(
        prefill_lp.to_bits(),
        stepped_lp.to_bits(),
        "prefill scoring diverged from the token-stepped loop \
         (prefill {prefill_lp}, stepped {stepped_lp})"
    );
    // Interleaved rounds, per-path minima; round 0 is warm-up.
    let rounds = if reps == 1 { 2 } else { 4 };
    let (mut prefill_secs, mut stepped_secs) = (f64::INFINITY, f64::INFINITY);
    for round in 0..rounds + 1 {
        let t0 = Instant::now();
        for (tin, tout) in &nn_pairs {
            std::hint::black_box(model.forced_logprob(&src, tin, tout));
        }
        let p = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        std::hint::black_box(stepped_once(&model));
        let s = t0.elapsed().as_secs_f64();
        if round > 0 {
            prefill_secs = prefill_secs.min(p);
            stepped_secs = stepped_secs.min(s);
        }
    }
    vega_par::set_threads(0);
    let score_tokens = (CANDS * CAND_LEN) as f64;
    let prefill_speedup = stepped_secs / prefill_secs;
    println!(
        "prefill: {:>8.0} tok/s | stepped: {:>8.0} tok/s | prefill speedup {prefill_speedup:.2}x",
        score_tokens / prefill_secs,
        score_tokens / stepped_secs,
    );

    let out_path =
        std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("serve")),
        ("workload", Json::str("score")),
        (
            "model",
            Json::str("transformer d512 ff2048 enc1 dec3 (untrained)"),
        ),
        ("clients", Json::num_usize(CLIENTS)),
        ("candidates_per_request", Json::num_usize(CANDS)),
        ("candidate_tokens", Json::num_usize(CAND_LEN)),
        ("compute_threads", Json::num_usize(1)),
        ("reps_per_client", Json::num_usize(reps)),
        (
            "results",
            Json::Arr(
                [("replica", &replica), ("batch", &batch)]
                    .into_iter()
                    .map(|(name, run)| {
                        Json::obj([
                            ("engine", Json::str(name)),
                            ("tokens_per_sec", Json::num_f64(run.tokens_per_sec)),
                            ("requests_per_sec", Json::num_f64(run.requests_per_sec)),
                            ("tokens", Json::num_u64(run.tokens)),
                            ("requests", Json::num_u64(run.requests)),
                            ("seconds", Json::num_f64(run.seconds)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("batch_parity_tokens_per_sec", Json::num_f64(parity)),
        (
            "scoring",
            Json::Arr(
                [("prefill", prefill_secs), ("stepped", stepped_secs)]
                    .into_iter()
                    .map(|(path, secs)| {
                        Json::obj([
                            ("path", Json::str(path)),
                            ("seconds_per_request", Json::num_f64(secs)),
                            ("tokens_per_sec", Json::num_f64(score_tokens / secs)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("prefill_scoring_speedup", Json::num_f64(prefill_speedup)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!(
        "wrote {out_path} (batch parity {parity:.2}x, prefill scoring speedup {prefill_speedup:.2}x)"
    );
    if parity >= BATCH_PARITY_FLOOR && prefill_speedup >= PREFILL_SPEEDUP_FLOOR {
        println!("serve: smoke=ok");
    } else {
        println!(
            "serve: smoke=FAIL (batch engine under {BATCH_PARITY_FLOOR}x parity with the replica \
             engine on score, or prefill scoring under {PREFILL_SPEEDUP_FLOOR}x the token-stepped \
             loop)"
        );
        std::process::exit(1);
    }
}
