//! Observability overhead: what a span, a counter bump, and a flight-recorder
//! append cost — and, above all, what *disabled* instrumentation costs.
//!
//! The vega-obs flight recorder promises the vega-fault discipline: when the
//! recorder is off, a record call is one relaxed atomic load and an immediate
//! return. This bench pins that promise with a hard nanosecond budget
//! (`VEGA_OBS_BUDGET_NS`, default 250) on the disabled record path, reports
//! the enabled-append, span, traced-span, and counter costs alongside, and
//! writes a machine-readable baseline to `BENCH_obs.json` (override the path
//! with `VEGA_BENCH_OUT`; `VEGA_OBS_BENCH_FAST=1` shrinks iteration counts
//! for the CI smoke run). Prints `obs: smoke=ok` only when the disabled path
//! is inside the budget.

use std::time::Instant;
use vega_obs::flight;
use vega_obs::json::Json;
use vega_obs::TraceIdGen;

/// Median ns/iteration over `samples` timed batches of `iters` calls each
/// (after one warm-up batch).
fn median_ns_per_iter(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let batch = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        t.elapsed().as_secs_f64() * 1e9 / iters as f64
    };
    batch(&mut f);
    let mut times: Vec<f64> = (0..samples).map(|_| batch(&mut f)).collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let fast_mode = std::env::var("VEGA_OBS_BENCH_FAST").is_ok();
    let samples = if fast_mode { 3 } else { 7 };
    let scale = if fast_mode { 1 } else { 10 };
    let budget_ns: f64 = std::env::var("VEGA_OBS_BUDGET_NS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0);

    let obs = vega_obs::global();
    let mut gen = TraceIdGen::new(42);
    let ctx = gen.mint();
    let mut rows = Vec::new();
    let mut push = |op: &str, ns: f64| {
        println!("{op:<24} {ns:>8.1} ns/call");
        rows.push(Json::obj([
            ("op", Json::str(op)),
            ("ns_per_call", Json::num_f64(ns)),
        ]));
    };

    println!("== obs overhead (median of {samples} batches) ==");

    // The headline number: a record call with the recorder off must cost one
    // relaxed atomic load — this is what every request pays in production
    // when nobody asked for a black box.
    flight::configure(0);
    let disabled_ns = median_ns_per_iter(samples, 500_000 * scale, || {
        flight::record_span_close(std::hint::black_box("serve.request"), 1, None);
    });
    push("flight.record/disabled", disabled_ns);

    // Enabled: one short mutex hold and a ring push (overwriting when full).
    flight::configure(1024);
    let enabled_ns = median_ns_per_iter(samples, 50_000 * scale, || {
        flight::record_span_close(std::hint::black_box("serve.request"), 1, Some(ctx));
    });
    push("flight.record/enabled", enabled_ns);
    flight::configure(0);

    // A full span open/close with the recorder off (timer + histogram).
    let span_ns = median_ns_per_iter(samples, 20_000 * scale, || {
        let span = obs.span("bench.span");
        let _ = std::hint::black_box(span.finish());
    });
    push("span.open_close", span_ns);

    // The same span under an adopted trace with the recorder retaining it.
    flight::configure(1024);
    let traced_span_ns = median_ns_per_iter(samples, 20_000 * scale, || {
        let _guard = obs.adopt_trace(Some(ctx));
        let span = obs.span("bench.traced_span");
        let _ = std::hint::black_box(span.finish());
    });
    push("span.traced_recorded", traced_span_ns);
    flight::configure(0);

    let counter_ns = median_ns_per_iter(samples, 100_000 * scale, || {
        obs.counter_add(std::hint::black_box("bench.counter"), 1);
    });
    push("counter.add", counter_ns);

    let out_path = std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_obs.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("obs")),
        ("samples_per_point", Json::num_usize(samples)),
        ("budget_ns", Json::num_f64(budget_ns)),
        ("disabled_record_ns", Json::num_f64(disabled_ns)),
        ("results", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!(
        "wrote {out_path} (disabled record path: {disabled_ns:.1} ns, budget {budget_ns:.0} ns)"
    );
    if disabled_ns <= budget_ns {
        println!("obs: smoke=ok");
    } else {
        println!("obs: smoke=FAIL (disabled record path {disabled_ns:.1} ns exceeds {budget_ns:.0} ns budget)");
        std::process::exit(1);
    }
}
