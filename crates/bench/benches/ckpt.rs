//! Checkpoint format shoot-out: `vega-ckpt/v1` (JSON envelope) vs
//! `vega-ckpt/v2` (binary, 64-byte-aligned tensor table, memory-mapped on
//! load).
//!
//! Three phases per format — save, load, and replica spawn (`CodeBe::clone`,
//! what `vega-serve` pays per pool worker). v1 replicas deep-copy every
//! weight; v2 replicas bump an `Arc` on the shared mapping and copy only
//! descriptors, so spawning is O(header) regardless of model size. This
//! bench pins that contract: the run fails unless the v2 spawn is at least
//! `VEGA_CKPT_SPEEDUP_MIN`× (default 10×) faster than v1 and both formats
//! decode bit-identical weights. Writes a machine-readable baseline to
//! `BENCH_ckpt.json` (override with `VEGA_BENCH_OUT`; `VEGA_CKPT_BENCH_FAST=1`
//! shrinks iteration counts for the CI smoke run). Prints `ckpt: smoke=ok`
//! on success.

use std::time::Instant;
use vega_model::{CodeBe, Vocab};
use vega_nn::TransformerConfig;
use vega_obs::json::Json;

/// Median ns/iteration over `samples` timed batches of `iters` calls each
/// (after one warm-up batch).
fn median_ns_per_iter(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let batch = |f: &mut dyn FnMut()| {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        t.elapsed().as_secs_f64() * 1e9 / iters as f64
    };
    batch(&mut f);
    let mut times: Vec<f64> = (0..samples).map(|_| batch(&mut f)).collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

fn main() {
    let fast_mode = std::env::var("VEGA_CKPT_BENCH_FAST").is_ok();
    let samples = if fast_mode { 3 } else { 7 };
    let scale = if fast_mode { 1 } else { 5 };
    let speedup_min: f64 = std::env::var("VEGA_CKPT_SPEEDUP_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);

    // A mid-sized transformer (~1.3M parameters) over a synthetic vocabulary:
    // big enough that deep-copying weights visibly costs, small enough that
    // the bench stays a smoke test.
    let pieces: Vec<String> = (0..512).map(|i| format!("tok{i:03}")).collect();
    let vocab = Vocab::build(pieces.iter().map(String::as_str));
    let model = CodeBe::transformer(vocab, |v| TransformerConfig {
        vocab: v,
        d_model: 128,
        n_heads: 4,
        d_ff: 256,
        n_enc_layers: 2,
        n_dec_layers: 2,
        max_len: 96,
        seed: 0xC0DE,
    });

    let dir = std::env::temp_dir().join("vega-bench-ckpt");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_v1 = dir.join("model.v1.ckpt");
    let path_v2 = dir.join("model.v2.ckpt");

    let mut rows = Vec::new();
    let mut push = |op: &str, ns: f64| {
        println!("{op:<20} {:>10.1} µs/call", ns / 1e3);
        rows.push(Json::obj([
            ("op", Json::str(op)),
            ("ns_per_call", Json::num_f64(ns)),
        ]));
    };

    println!("== checkpoint formats (median of {samples} batches) ==");

    // The v1 ops are seconds-per-call (10 MB of hand-rolled JSON), so they
    // get a minimal batch budget; the medians are stable regardless.
    let save_v1_ns = median_ns_per_iter(3.min(samples), 1, || {
        model.save_file(&path_v1).expect("v1 save");
    });
    push("save/v1", save_v1_ns);
    let save_v2_ns = median_ns_per_iter(samples, 2 * scale, || {
        model.save_file_v2(&path_v2).expect("v2 save");
    });
    push("save/v2", save_v2_ns);

    let load_v1_ns = median_ns_per_iter(3.min(samples), 1, || {
        let _ = std::hint::black_box(CodeBe::load_file_detect(&path_v1).expect("v1 load"));
    });
    push("load/v1", load_v1_ns);
    let load_v2_ns = median_ns_per_iter(samples, 2 * scale, || {
        let _ = std::hint::black_box(CodeBe::load_file_detect(&path_v2).expect("v2 load"));
    });
    push("load/v2", load_v2_ns);

    // Replica spawn: what the serve pool pays per worker. The v1 model owns
    // its weights (clone deep-copies), the v2 model borrows the mapping
    // (clone bumps the Arc and copies descriptors).
    let (owned, _) = CodeBe::load_file_detect(&path_v1).expect("v1 load");
    let (mapped, _) = CodeBe::load_file_detect(&path_v2).expect("v2 load");
    let bit_identical = owned.save_json() == mapped.save_json();
    let spawn_v1_ns = median_ns_per_iter(samples, 20 * scale, || {
        let _ = std::hint::black_box(owned.clone());
    });
    push("replica_spawn/v1", spawn_v1_ns);
    let spawn_v2_ns = median_ns_per_iter(samples, 2000 * scale, || {
        let _ = std::hint::black_box(mapped.clone());
    });
    push("replica_spawn/v2", spawn_v2_ns);
    let speedup = spawn_v1_ns / spawn_v2_ns;

    let bytes_v1 = std::fs::metadata(&path_v1).map(|m| m.len()).unwrap_or(0);
    let bytes_v2 = std::fs::metadata(&path_v2).map(|m| m.len()).unwrap_or(0);
    println!(
        "file size: v1 {bytes_v1} B, v2 {bytes_v2} B; \
         replica spawn speedup {speedup:.1}x (shared scalars owned: {})",
        mapped.owned_scalars()
    );

    let out_path =
        std::env::var("VEGA_BENCH_OUT").unwrap_or_else(|_| "BENCH_ckpt.json".to_string());
    let doc = Json::obj([
        ("bench", Json::str("ckpt")),
        ("samples_per_point", Json::num_usize(samples)),
        ("file_bytes_v1", Json::num_u64(bytes_v1)),
        ("file_bytes_v2", Json::num_u64(bytes_v2)),
        ("replica_spawn_speedup", Json::num_f64(speedup)),
        ("speedup_min", Json::num_f64(speedup_min)),
        ("bit_identical", Json::Bool(bit_identical)),
        ("results", Json::Arr(rows)),
    ]);
    std::fs::write(&out_path, doc.render()).expect("write bench json");
    println!("wrote {out_path} (spawn speedup {speedup:.1}x, floor {speedup_min:.0}x)");
    std::fs::remove_dir_all(&dir).ok();

    if !bit_identical {
        println!("ckpt: smoke=FAIL (v1 and v2 decode different weights)");
        std::process::exit(1);
    }
    if speedup < speedup_min {
        println!(
            "ckpt: smoke=FAIL (v2 replica spawn only {speedup:.1}x faster than v1, \
             floor {speedup_min:.0}x)"
        );
        std::process::exit(1);
    }
    println!("ckpt: smoke=ok");
}
