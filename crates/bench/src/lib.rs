//! `vega-bench`: shared fixtures and a dependency-free mini-harness for the
//! benches.
//!
//! The actual benches live in `benches/paper_artifacts.rs` (one group per
//! paper table/figure, run at reduced scale so `cargo bench` terminates in
//! minutes) and `benches/substrates.rs` (alignment, NN and compiler
//! throughput). They are plain `fn main()` binaries (`harness = false`)
//! driven by [`Bench`], so no external benchmarking crate is required.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};
use vega::{Vega, VegaConfig};

/// A tiny trained VEGA shared by the artifact benches (training happens once
/// per bench binary, not per iteration).
pub fn trained_tiny_vega() -> Vega {
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 1;
    Vega::train(cfg)
}

/// Minimal wall-clock bench runner: a short warm-up, then timed iterations
/// within a per-bench budget, reported as one table row per bench.
pub struct Bench {
    group: String,
    table: vega_eval::TextTable,
    warm_up: Duration,
    budget: Duration,
    max_samples: usize,
}

impl Bench {
    /// A new group with the default budget (10 samples or 4 s, whichever
    /// comes first, after 0.5 s of warm-up — the same budget the old
    /// Criterion configuration used).
    pub fn group(name: &str) -> Self {
        Bench {
            group: name.to_string(),
            table: vega_eval::TextTable::new(["bench", "samples", "mean", "p50", "min", "max"]),
            warm_up: Duration::from_millis(500),
            budget: Duration::from_secs(4),
            max_samples: 10,
        }
    }

    /// Times `f`, recording one sample per call.
    pub fn bench_function<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &mut Self {
        let warm_until = Instant::now() + self.warm_up;
        loop {
            std::hint::black_box(f());
            if Instant::now() >= warm_until {
                break;
            }
        }
        let mut samples: Vec<f64> = Vec::new();
        let run_until = Instant::now() + self.budget;
        while samples.len() < self.max_samples {
            let t = Instant::now();
            std::hint::black_box(f());
            samples.push(t.elapsed().as_secs_f64());
            if Instant::now() >= run_until {
                break;
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let p50 = samples[samples.len() / 2];
        self.table.row([
            name.to_string(),
            samples.len().to_string(),
            fmt_secs(mean),
            fmt_secs(p50),
            fmt_secs(samples[0]),
            fmt_secs(samples[samples.len() - 1]),
        ]);
        self
    }

    /// Prints the group's table.
    pub fn finish(&self) {
        println!("== {} ==\n{}", self.group, self.table.render());
    }
}

/// Renders a duration in seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_picks_units() {
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(0.0025), "2.50 ms");
        assert_eq!(fmt_secs(0.0000025), "2.50 us");
    }

    #[test]
    fn bench_records_one_row_per_function() {
        let mut g = Bench::group("test");
        g.warm_up = Duration::from_millis(1);
        g.budget = Duration::from_millis(10);
        g.bench_function("noop", || 1 + 1);
        assert!(g.table.render().contains("noop"));
    }
}
