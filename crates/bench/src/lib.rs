//! `vega-bench`: shared fixtures for the Criterion benches.
//!
//! The actual benches live in `benches/paper_artifacts.rs` (one group per
//! paper table/figure, run at reduced scale so `cargo bench` terminates in
//! minutes) and `benches/substrates.rs` (alignment, NN and compiler
//! throughput).

#![forbid(unsafe_code)]

use vega::{Vega, VegaConfig};

/// A tiny trained VEGA shared by the artifact benches (training happens once
/// per bench binary, not per iteration).
pub fn trained_tiny_vega() -> Vega {
    let mut cfg = VegaConfig::tiny();
    cfg.train.finetune_epochs = 1;
    Vega::train(cfg)
}
