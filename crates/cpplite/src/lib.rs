//! `vega-cpplite`: a C++-like subset used throughout the VEGA reproduction.
//!
//! Miniature LLVM backends — the corpus VEGA learns from and the code it
//! generates — are written in a small, statement-oriented C++ subset. This
//! crate provides everything the rest of the system needs to work with that
//! subset:
//!
//! * [`lex`] / [`lex_lossy`] — the shared tokenizer (also used on `.td`/`.h`
//!   description files during feature selection),
//! * [`parse_function`] / [`parse_stmts`] — statement-level parsing into the
//!   [`Stmt`] tree, where a *statement* is a line ending in `;`, `{`, `}` or
//!   `:` exactly as the paper defines it (§3.1),
//! * [`render_function`] / [`render_tokens`] — pretty-printing,
//! * [`normalize_stmts`] — `if`/`else if` → `switch` normalization (§3.1),
//! * [`inline_function`] — recursive helper inlining (§3.1),
//! * [`Interp`] — a defensive interpreter so the miniature compiler can
//!   *execute* generated interface functions during pass@1 regression tests.
//!
//! # Examples
//! ```
//! use vega_cpplite::{parse_function, render_function};
//! let f = parse_function(
//!     "unsigned getRelocType(bool IsPCRel) { if (IsPCRel) { return 1; } return 0; }",
//! )?;
//! assert_eq!(f.name, "getRelocType");
//! assert_eq!(f.stmt_count(), 3);
//! println!("{}", render_function(&f));
//! # Ok::<(), vega_cpplite::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod eval;
mod expr;
mod inline;
mod lexer;
mod normalize;
mod parser;
mod printer;
mod token;

pub use ast::{Function, Param, Stmt, StmtIter, StmtKind};
pub use eval::{split_toplevel, EmptyEnv, Env, EvalError, Interp, Value, LOOP_FUEL};
pub use expr::{parse_expr_tokens, parse_head_expr, BinOp, Expr, ExprError, UnOp};
pub use inline::{inline_function, MAX_INLINE_DEPTH};
pub use lexer::{lex, lex_lossy, LexError};
pub use normalize::normalize_stmts;
pub use parser::{parse_function, parse_functions, parse_stmts, ParseError};
pub use printer::{render_function, render_stmts};
pub use token::{render_tokens, Token};
