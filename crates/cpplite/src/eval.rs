//! A small interpreter for statement ASTs.
//!
//! The miniature compiler backend executes (possibly machine-generated)
//! interface functions by interpreting their ASTs. The host supplies an
//! [`Env`] that resolves scoped enum values (`ARM::fixup_arm_movt_hi16`),
//! free/builtin calls and method calls on opaque handles (`Fixup.getKind()`).
//!
//! Execution is defensive: generated code may be arbitrarily wrong, so
//! unknown names, bad operand types and runaway loops all surface as
//! [`EvalError`] rather than panicking — a failing evaluation simply makes
//! the regression test fail, exactly as a miscompiled function would.

use crate::ast::{Function, Stmt, StmtKind};
use crate::expr::{parse_expr_tokens, parse_head_expr, BinOp, Expr, UnOp};
use crate::token::Token;
use std::collections::HashMap;
use std::fmt;

/// A runtime value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Integer (also used for booleans: 0 = false).
    Int(i64),
    /// String.
    Str(String),
    /// Opaque host object, interpreted by the [`Env`].
    Handle(u64),
    /// No value (void call result).
    Unit,
}

impl Value {
    /// Truthiness for conditions.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Handle(_) => true,
            Value::Unit => false,
        }
    }

    /// The integer payload.
    ///
    /// # Errors
    /// Returns [`EvalError`] if the value is not an integer.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(EvalError::new(format!("expected integer, got {other:?}"))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Handle(h) => write!(f, "<handle {h}>"),
            Value::Unit => write!(f, "<unit>"),
        }
    }
}

/// Error raised during interpretation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Description of the failure.
    pub message: String,
}

impl EvalError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eval error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

/// Host environment resolving names the interpreter cannot.
pub trait Env {
    /// Resolves a scoped path such as `ELF::R_ARM_MOVT_PREL`.
    ///
    /// # Errors
    /// Returns [`EvalError`] if the path is unknown.
    fn lookup_path(&self, parts: &[String]) -> Result<Value, EvalError>;

    /// Calls a free function, e.g. `report_fatal_error("...")`.
    ///
    /// # Errors
    /// Returns [`EvalError`] if the function is unknown or misused.
    fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError>;

    /// Calls a method on a handle, e.g. `Fixup.getTargetKind()`.
    ///
    /// # Errors
    /// Returns [`EvalError`] if the method is unknown or misused.
    fn method(&mut self, obj: &Value, name: &str, args: &[Value]) -> Result<Value, EvalError>;

    /// Reads a member field on a handle, e.g. `MI->Opcode`.
    ///
    /// # Errors
    /// Returns [`EvalError`] if the member is unknown.
    fn member(&mut self, obj: &Value, name: &str) -> Result<Value, EvalError> {
        self.method(obj, name, &[])
    }
}

/// An [`Env`] with no host names at all; only literals and locals resolve.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyEnv;

impl Env for EmptyEnv {
    fn lookup_path(&self, parts: &[String]) -> Result<Value, EvalError> {
        Err(EvalError::new(format!(
            "unknown path `{}`",
            parts.join("::")
        )))
    }
    fn call(&mut self, name: &str, _args: &[Value]) -> Result<Value, EvalError> {
        Err(EvalError::new(format!("unknown function `{name}`")))
    }
    fn method(&mut self, _obj: &Value, name: &str, _args: &[Value]) -> Result<Value, EvalError> {
        Err(EvalError::new(format!("unknown method `{name}`")))
    }
}

/// Maximum loop iterations before execution is aborted; generated code can be
/// arbitrarily wrong, including non-terminating.
pub const LOOP_FUEL: usize = 100_000;

enum Flow {
    Normal,
    Break,
    Return(Value),
}

/// Interpreter state: local variables plus the host environment.
pub struct Interp<'e, E: Env> {
    vars: HashMap<String, Value>,
    env: &'e mut E,
    fuel: usize,
}

impl<'e, E: Env> Interp<'e, E> {
    /// Creates an interpreter over `env`.
    pub fn new(env: &'e mut E) -> Self {
        Interp {
            vars: HashMap::new(),
            env,
            fuel: LOOP_FUEL,
        }
    }

    /// Runs `f` with the given argument values bound to its parameters.
    ///
    /// Returns the function's return value, or [`Value::Unit`] if control
    /// falls off the end.
    ///
    /// # Errors
    /// Returns [`EvalError`] on arity mismatch, unknown names, type errors or
    /// loop-fuel exhaustion.
    pub fn run_function(&mut self, f: &Function, args: &[Value]) -> Result<Value, EvalError> {
        if args.len() != f.params.len() {
            return Err(EvalError::new(format!(
                "function `{}` expects {} arguments, got {}",
                f.name,
                f.params.len(),
                args.len()
            )));
        }
        for (p, a) in f.params.iter().zip(args) {
            self.vars.insert(p.name.clone(), a.clone());
        }
        match self.exec_block(&f.body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    /// Executes a statement list outside any function (for tests/tools).
    ///
    /// # Errors
    /// Returns [`EvalError`] as for [`Interp::run_function`].
    pub fn run_stmts(&mut self, stmts: &[Stmt]) -> Result<Option<Value>, EvalError> {
        match self.exec_block(stmts)? {
            Flow::Return(v) => Ok(Some(v)),
            _ => Ok(None),
        }
    }

    /// Reads a local variable (for assertions in tests).
    pub fn var(&self, name: &str) -> Option<&Value> {
        self.vars.get(name)
    }

    fn exec_block(&mut self, stmts: &[Stmt]) -> Result<Flow, EvalError> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, EvalError> {
        match s.kind {
            StmtKind::Simple => {
                if !s.head.is_empty() {
                    let e = parse_head_expr(&s.head).map_err(|e| EvalError::new(e.message))?;
                    self.eval(&e)?;
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return => {
                if s.head.is_empty() {
                    return Ok(Flow::Return(Value::Unit));
                }
                let e = parse_expr_tokens(&s.head).map_err(|e| EvalError::new(e.message))?;
                let v = self.eval(&e)?;
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Block => self.exec_block(&s.children),
            StmtKind::If => {
                let cond = parse_expr_tokens(&s.head).map_err(|e| EvalError::new(e.message))?;
                if self.eval(&cond)?.truthy() {
                    self.exec_block(&s.children)
                } else {
                    self.exec_block(&s.else_children)
                }
            }
            StmtKind::While => {
                let cond = parse_expr_tokens(&s.head).map_err(|e| EvalError::new(e.message))?;
                loop {
                    self.burn_fuel()?;
                    if !self.eval(&cond)?.truthy() {
                        break;
                    }
                    match self.exec_block(&s.children)? {
                        Flow::Normal => {}
                        Flow::Break => break,
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For => self.exec_for(s),
            StmtKind::Switch => self.exec_switch(s),
            StmtKind::Case | StmtKind::Default => Err(EvalError::new("case label outside switch")),
        }
    }

    fn exec_for(&mut self, s: &Stmt) -> Result<Flow, EvalError> {
        let sections = split_toplevel(&s.head, ";");
        if sections.len() != 3 {
            return Err(EvalError::new("for header must have three sections"));
        }
        if !sections[0].is_empty() {
            let init = parse_head_expr(&sections[0]).map_err(|e| EvalError::new(e.message))?;
            self.eval(&init)?;
        }
        loop {
            self.burn_fuel()?;
            if !sections[1].is_empty() {
                let cond =
                    parse_expr_tokens(&sections[1]).map_err(|e| EvalError::new(e.message))?;
                if !self.eval(&cond)?.truthy() {
                    break;
                }
            }
            match self.exec_block(&s.children)? {
                Flow::Normal => {}
                Flow::Break => break,
                ret => return Ok(ret),
            }
            if !sections[2].is_empty() {
                let step = parse_head_expr(&sections[2]).map_err(|e| EvalError::new(e.message))?;
                self.eval(&step)?;
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_switch(&mut self, s: &Stmt) -> Result<Flow, EvalError> {
        let scrut = parse_expr_tokens(&s.head).map_err(|e| EvalError::new(e.message))?;
        let v = self.eval(&scrut)?;
        // Find the first matching label (or `default`), then execute with
        // fallthrough semantics until `break`, `return` or the end.
        let mut start = None;
        for (i, case) in s.children.iter().enumerate() {
            if case.kind == StmtKind::Case {
                let label = parse_expr_tokens(&case.head).map_err(|e| EvalError::new(e.message))?;
                if self.eval(&label)? == v {
                    start = Some(i);
                    break;
                }
            }
        }
        if start.is_none() {
            start = s.children.iter().position(|c| c.kind == StmtKind::Default);
        }
        let Some(start) = start else {
            return Ok(Flow::Normal);
        };
        for case in &s.children[start..] {
            match self.exec_block(&case.children)? {
                Flow::Normal => {}
                Flow::Break => return Ok(Flow::Normal),
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn burn_fuel(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::new(
                "loop fuel exhausted (non-terminating code?)",
            ));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, EvalError> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Ident(name) => match self.vars.get(name) {
                Some(v) => Ok(v.clone()),
                None => self.env.lookup_path(std::slice::from_ref(name)),
            },
            Expr::Scoped(parts) => self.env.lookup_path(parts),
            Expr::Assign { name, value } => {
                let v = self.eval(value)?;
                self.vars.insert(name.clone(), v.clone());
                Ok(v)
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(expr)?;
                let i = v.as_int()?;
                Ok(Value::Int(match op {
                    UnOp::Not => i64::from(i == 0),
                    UnOp::Neg => i.wrapping_neg(),
                    UnOp::BitNot => !i,
                }))
            }
            Expr::Binary { op, lhs, rhs } => {
                // Short-circuit logicals.
                match op {
                    BinOp::And => {
                        let l = self.eval(lhs)?;
                        if !l.truthy() {
                            return Ok(Value::Int(0));
                        }
                        return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
                    }
                    BinOp::Or => {
                        let l = self.eval(lhs)?;
                        if l.truthy() {
                            return Ok(Value::Int(1));
                        }
                        return Ok(Value::Int(i64::from(self.eval(rhs)?.truthy())));
                    }
                    _ => {}
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                // Equality works on any value kind; arithmetic needs ints.
                match op {
                    BinOp::Eq => return Ok(Value::Int(i64::from(l == r))),
                    BinOp::Ne => return Ok(Value::Int(i64::from(l != r))),
                    _ => {}
                }
                let (a, b) = (l.as_int()?, r.as_int()?);
                let v = match op {
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                    BinOp::Shr => ((a as u64).wrapping_shr(b as u32 & 63)) as i64,
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(EvalError::new("division by zero"));
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(EvalError::new("remainder by zero"));
                        }
                        a.wrapping_rem(b)
                    }
                    BinOp::BitAnd => a & b,
                    BinOp::BitOr => a | b,
                    BinOp::BitXor => a ^ b,
                    BinOp::And | BinOp::Or | BinOp::Eq | BinOp::Ne => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            Expr::Ternary { cond, then_, else_ } => {
                if self.eval(cond)?.truthy() {
                    self.eval(then_)
                } else {
                    self.eval(else_)
                }
            }
            Expr::Call { callee, args } => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                match &**callee {
                    Expr::Ident(name) => self.env.call(name, &vals),
                    Expr::Scoped(parts) => self.env.call(&parts.join("::"), &vals),
                    other => Err(EvalError::new(format!("uncallable expression {other:?}"))),
                }
            }
            Expr::MethodCall { obj, name, args } => {
                let o = self.eval(obj)?;
                let vals = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<Vec<_>, _>>()?;
                self.env.method(&o, name, &vals)
            }
            Expr::Member { obj, name } => {
                let o = self.eval(obj)?;
                self.env.member(&o, name)
            }
        }
    }
}

/// Splits a token sequence on top-level occurrences of `sep`.
pub fn split_toplevel(toks: &[Token], sep: &str) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t {
            Token::Punct("(") | Token::Punct("[") | Token::Punct("{") => depth += 1,
            Token::Punct(")") | Token::Punct("]") | Token::Punct("}") => depth -= 1,
            _ => {}
        }
        if depth == 0 && t.is_punct(sep) {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(t.clone());
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_function, parse_stmts};

    struct TestEnv;
    impl Env for TestEnv {
        fn lookup_path(&self, parts: &[String]) -> Result<Value, EvalError> {
            match parts.join("::").as_str() {
                "ARM::fixup_arm_movt_hi16" => Ok(Value::Int(100)),
                "ELF::R_ARM_MOVT_PREL" => Ok(Value::Int(46)),
                "ELF::R_ARM_NONE" => Ok(Value::Int(0)),
                p => Err(EvalError::new(format!("unknown {p}"))),
            }
        }
        fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, EvalError> {
            match name {
                "twice" => Ok(Value::Int(args[0].as_int()? * 2)),
                _ => Err(EvalError::new("no such fn")),
            }
        }
        fn method(&mut self, obj: &Value, name: &str, _args: &[Value]) -> Result<Value, EvalError> {
            match (obj, name) {
                (Value::Handle(h), "getTargetKind") => Ok(Value::Int(*h as i64)),
                _ => Err(EvalError::new("no such method")),
            }
        }
    }

    #[test]
    fn runs_getreloctype_like_function() {
        let f = parse_function(
            r#"
unsigned getRelocType(const MCFixup &Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      break;
    }
  }
  return ELF::R_ARM_NONE;
}
"#,
        )
        .unwrap();
        let mut env = TestEnv;
        let mut it = Interp::new(&mut env);
        let v = it
            .run_function(&f, &[Value::Handle(100), Value::Int(1)])
            .unwrap();
        assert_eq!(v, Value::Int(46));
        let mut it = Interp::new(&mut env);
        let v = it
            .run_function(&f, &[Value::Handle(100), Value::Int(0)])
            .unwrap();
        assert_eq!(v, Value::Int(0));
        let mut it = Interp::new(&mut env);
        let v = it
            .run_function(&f, &[Value::Handle(7), Value::Int(1)])
            .unwrap();
        assert_eq!(v, Value::Int(0));
    }

    #[test]
    fn switch_fallthrough() {
        let stmts = parse_stmts(
            "x = 0; switch (k) { case 1: x = x + 10; case 2: x = x + 1; break; default: x = 99; } return x;",
        )
        .unwrap();
        let mut env = TestEnv;
        let mut it = Interp::new(&mut env);
        it.vars.insert("k".into(), Value::Int(1));
        assert_eq!(it.run_stmts(&stmts).unwrap(), Some(Value::Int(11)));
        let mut it = Interp::new(&mut env);
        it.vars.insert("k".into(), Value::Int(2));
        assert_eq!(it.run_stmts(&stmts).unwrap(), Some(Value::Int(1)));
        let mut it = Interp::new(&mut env);
        it.vars.insert("k".into(), Value::Int(5));
        assert_eq!(it.run_stmts(&stmts).unwrap(), Some(Value::Int(99)));
    }

    #[test]
    fn loops_and_fuel() {
        let stmts = parse_stmts(
            "total = 0; for (i = 0; i < 5; i = i + 1) { total = total + i; } return total;",
        )
        .unwrap();
        let mut env = TestEnv;
        let mut it = Interp::new(&mut env);
        assert_eq!(it.run_stmts(&stmts).unwrap(), Some(Value::Int(10)));

        let inf = parse_stmts("while (1) { x = 1; }").unwrap();
        let mut it = Interp::new(&mut env);
        assert!(it.run_stmts(&inf).is_err());
    }

    #[test]
    fn free_calls_and_errors() {
        let stmts = parse_stmts("return twice(21);").unwrap();
        let mut env = TestEnv;
        let mut it = Interp::new(&mut env);
        assert_eq!(it.run_stmts(&stmts).unwrap(), Some(Value::Int(42)));

        let bad = parse_stmts("return nosuch(1);").unwrap();
        let mut it = Interp::new(&mut env);
        assert!(it.run_stmts(&bad).is_err());
    }

    #[test]
    fn arity_mismatch_is_error() {
        let f = parse_function("int f(int a) { return a; }").unwrap();
        let mut env = TestEnv;
        let mut it = Interp::new(&mut env);
        assert!(it.run_function(&f, &[]).is_err());
    }
}
