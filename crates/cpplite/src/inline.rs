//! Recursive callee inlining (paper §3.1).
//!
//! To improve syntactic resemblance across targets, each backend function has
//! its same-target helper callees recursively inlined before alignment (the
//! paper's example inlines `GetRelocTypeInner` into `getRelocType`). Calls to
//! functions outside the provided resolver (LLVM builtins, other interface
//! functions) are left intact.

use crate::ast::{Function, Stmt, StmtKind};
use crate::eval::split_toplevel;
use crate::token::Token;
use std::collections::HashSet;

/// Maximum inlining depth; deeper chains are left as calls.
pub const MAX_INLINE_DEPTH: usize = 4;

/// Inlines helper calls in `f`, resolving callee names through `resolve`.
///
/// Only two statement shapes are rewritten, matching how backend helpers are
/// used in practice:
/// * `return Helper(args);` — replaced by the helper body, with the helper's
///   `return`s becoming the caller's returns;
/// * `Helper(args);` — replaced by the helper body (any `return` value is
///   discarded by construction since such helpers are `void`).
///
/// Formal parameters are substituted token-wise by the actual argument token
/// sequences. Recursive helpers are never inlined.
///
/// # Examples
/// ```
/// use vega_cpplite::{inline_function, parse_function};
/// let helper = parse_function("unsigned inner(unsigned K) { return K + 1; }")?;
/// let outer = parse_function("unsigned outer(unsigned Kind) { return inner(Kind); }")?;
/// let inlined = inline_function(&outer, &|n| (n == "inner").then_some(&helper));
/// assert_eq!(inlined.body[0].head_line(), "return Kind + 1;");
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn inline_function<'a>(
    f: &Function,
    resolve: &dyn Fn(&str) -> Option<&'a Function>,
) -> Function {
    let mut out = f.clone();
    let mut active: HashSet<String> = HashSet::new();
    active.insert(f.name.clone());
    out.body = inline_block(&out.body, resolve, &mut active, 0);
    out
}

fn inline_block<'a>(
    stmts: &[Stmt],
    resolve: &dyn Fn(&str) -> Option<&'a Function>,
    active: &mut HashSet<String>,
    depth: usize,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match try_inline_stmt(s, resolve, active, depth) {
            Some(replacement) => out.extend(replacement),
            None => {
                let mut s2 = s.clone();
                s2.children = inline_block(&s.children, resolve, active, depth);
                s2.else_children = inline_block(&s.else_children, resolve, active, depth);
                out.push(s2);
            }
        }
    }
    out
}

/// Parses `Name ( args )` out of a head token sequence, returning the callee
/// name and the top-level-comma-separated argument token sequences.
fn as_direct_call(head: &[Token]) -> Option<(String, Vec<Vec<Token>>)> {
    if head.len() < 3 {
        return None;
    }
    let name = head[0].as_ident()?.to_string();
    if !head[1].is_punct("(") || !head.last()?.is_punct(")") {
        return None;
    }
    // Verify the trailing `)` matches the `(` at position 1.
    let mut depth = 0i32;
    for (i, t) in head.iter().enumerate().skip(1) {
        if t.is_punct("(") {
            depth += 1;
        } else if t.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                if i != head.len() - 1 {
                    return None;
                }
                break;
            }
        }
    }
    let inner = &head[2..head.len() - 1];
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        split_toplevel(inner, ",")
    };
    Some((name, args))
}

fn try_inline_stmt<'a>(
    s: &Stmt,
    resolve: &dyn Fn(&str) -> Option<&'a Function>,
    active: &mut HashSet<String>,
    depth: usize,
) -> Option<Vec<Stmt>> {
    if depth >= MAX_INLINE_DEPTH {
        return None;
    }
    if !matches!(s.kind, StmtKind::Return | StmtKind::Simple) {
        return None;
    }
    let (name, args) = as_direct_call(&s.head)?;
    if active.contains(&name) {
        return None;
    }
    let callee = resolve(&name)?;
    if callee.params.len() != args.len() {
        return None;
    }
    active.insert(name.clone());
    // Substitute formals by actuals throughout the callee body.
    let formals: Vec<(&str, &[Token])> = callee
        .params
        .iter()
        .zip(&args)
        .map(|(p, a)| (p.name.as_str(), a.as_slice()))
        .collect();
    let substituted: Vec<Stmt> = callee
        .body
        .iter()
        .map(|st| substitute_stmt(st, &formals))
        .collect();
    // Recursively inline within the substituted body.
    let body = inline_block(&substituted, resolve, active, depth + 1);
    active.remove(&name);
    Some(body)
}

fn substitute_stmt(s: &Stmt, formals: &[(&str, &[Token])]) -> Stmt {
    let mut out = s.clone();
    out.head = substitute_tokens(&s.head, formals);
    out.children = s
        .children
        .iter()
        .map(|c| substitute_stmt(c, formals))
        .collect();
    out.else_children = s
        .else_children
        .iter()
        .map(|c| substitute_stmt(c, formals))
        .collect();
    out
}

fn substitute_tokens(toks: &[Token], formals: &[(&str, &[Token])]) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    for (i, t) in toks.iter().enumerate() {
        // Do not substitute member names (`obj.K`) or scoped tails (`A::K`).
        let after_member = i > 0
            && (toks[i - 1].is_punct(".")
                || toks[i - 1].is_punct("->")
                || toks[i - 1].is_punct("::"));
        if let (Token::Ident(name), false) = (t, after_member) {
            if let Some((_, actual)) = formals.iter().find(|(f, _)| f == name) {
                // Parenthesize actuals containing loose operators to preserve
                // precedence; pure postfix chains (`a.b()`, `A::B`) need none.
                let needs_parens = actual.iter().any(|t| {
                    matches!(t, Token::Punct(p)
                        if !["::", ".", "->", "(", ")", "[", "]", ","].contains(p))
                });
                if needs_parens {
                    out.push(Token::Punct("("));
                    out.extend(actual.iter().cloned());
                    out.push(Token::Punct(")"));
                } else {
                    out.extend(actual.iter().cloned());
                }
                continue;
            }
        }
        out.push(t.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;
    use crate::printer::render_function;

    #[test]
    fn inlines_return_call_with_substitution() {
        let inner = parse_function(
            "unsigned GetRelocTypeInner(unsigned Kind, bool IsPCRel) { if (IsPCRel) { return Kind + 1; } return Kind; }",
        )
        .unwrap();
        let outer = parse_function(
            "unsigned getRelocType(const MCFixup &Fixup, bool PCRel) { return GetRelocTypeInner(Fixup.getKind(), PCRel); }",
        )
        .unwrap();
        let inlined = inline_function(&outer, &|n| (n == "GetRelocTypeInner").then_some(&inner));
        let text = render_function(&inlined);
        assert!(text.contains("if (PCRel) {"), "{text}");
        assert!(text.contains("return Fixup.getKind() + 1;"), "{text}");
        assert!(!text.contains("GetRelocTypeInner"), "{text}");
    }

    #[test]
    fn leaves_unknown_calls() {
        let outer = parse_function("void f() { report_fatal_error(\"bad\"); }").unwrap();
        let inlined = inline_function(&outer, &|_| None);
        assert_eq!(inlined, outer);
    }

    #[test]
    fn refuses_recursion() {
        let rec = parse_function("unsigned f(unsigned x) { return f(x); }").unwrap();
        let inlined = inline_function(&rec, &|n| (n == "f").then_some(&rec));
        assert_eq!(inlined, rec);
    }

    #[test]
    fn multi_token_args_are_parenthesized() {
        let inner = parse_function("int inner(int k) { return k * 2; }").unwrap();
        let outer = parse_function("int outer(int a, int b) { return inner(a + b); }").unwrap();
        let inlined = inline_function(&outer, &|n| (n == "inner").then_some(&inner));
        assert_eq!(inlined.body[0].head_line(), "return (a + b) * 2;");
    }

    #[test]
    fn inlines_inside_nested_blocks() {
        let inner = parse_function("int inner() { return 3; }").unwrap();
        let outer =
            parse_function("int outer(bool c) { if (c) { return inner(); } return 0; }").unwrap();
        let inlined = inline_function(&outer, &|n| (n == "inner").then_some(&inner));
        assert_eq!(inlined.body[0].children[0].head_line(), "return 3;");
    }
}
