//! Statement-level AST.
//!
//! Following the paper (§3.1), a *statement* is a source line ending in `;`,
//! `{`, `}` or `:`. The AST is therefore a tree of [`Stmt`] nodes, each
//! carrying its head token sequence (the line's tokens minus the terminator)
//! and its nested child statements. Alignment, templatization, feature
//! selection and the model all operate on this uniform shape; the miniature
//! compiler interprets it via [`crate::expr`].

use crate::token::{render_tokens, Token};
use std::fmt;

/// The syntactic role of a statement node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StmtKind {
    /// An expression or declaration statement: `unsigned Kind = ...;`
    Simple,
    /// `return <expr>;` — head holds the expression tokens.
    Return,
    /// `if (<cond>) { ... }` — head holds the condition tokens; an attached
    /// else branch is stored in the node's `else_children`.
    If,
    /// `switch (<expr>) { ... }` — children are `Case`/`Default` nodes.
    Switch,
    /// `case <expr>:` — head holds the label tokens; children are the body
    /// statements up to the next label.
    Case,
    /// `default:` — head is empty.
    Default,
    /// `while (<cond>) { ... }`.
    While,
    /// `for (<header>) { ... }` — head holds the raw header tokens.
    For,
    /// A bare `{ ... }` block.
    Block,
    /// `break;`
    Break,
}

/// One statement node: head tokens plus nested statements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Stmt {
    /// Statement role.
    pub kind: StmtKind,
    /// The head token sequence (condition for `If`, expression for `Return`,
    /// full line for `Simple`, label for `Case`, empty for `Default`/`Block`).
    pub head: Vec<Token>,
    /// Nested statements (then-branch for `If`, body for loops/cases, labels
    /// for `Switch`).
    pub children: Vec<Stmt>,
    /// The else-branch statements; only ever non-empty for `If`.
    pub else_children: Vec<Stmt>,
}

impl Stmt {
    /// Creates a simple (non-compound) statement from head tokens.
    pub fn simple(head: Vec<Token>) -> Self {
        Stmt {
            kind: StmtKind::Simple,
            head,
            children: Vec::new(),
            else_children: Vec::new(),
        }
    }

    /// Creates a node of the given kind with head tokens and children.
    pub fn new(kind: StmtKind, head: Vec<Token>, children: Vec<Stmt>) -> Self {
        Stmt {
            kind,
            head,
            children,
            else_children: Vec::new(),
        }
    }

    /// Total number of statement nodes in this subtree (including `self` and
    /// any else-branch).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .chain(self.else_children.iter())
            .map(Stmt::node_count)
            .sum::<usize>()
    }

    /// Height of the subtree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .chain(self.else_children.iter())
            .map(Stmt::height)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all nodes in the subtree, depth-first preorder.
    pub fn iter(&self) -> StmtIter<'_> {
        StmtIter { stack: vec![self] }
    }

    /// The one-line source rendering of just this node's head (no children),
    /// e.g. `if (IsPCRel) {` or `return ELF::R_ARM_NONE;`.
    pub fn head_line(&self) -> String {
        match self.kind {
            StmtKind::Simple => format!("{};", render_tokens(&self.head)),
            StmtKind::Return => {
                if self.head.is_empty() {
                    "return;".to_string()
                } else {
                    format!("return {};", render_tokens(&self.head))
                }
            }
            StmtKind::If => format!("if ({}) {{", render_tokens(&self.head)),
            StmtKind::Switch => format!("switch ({}) {{", render_tokens(&self.head)),
            StmtKind::Case => format!("case {}:", render_tokens(&self.head)),
            StmtKind::Default => "default:".to_string(),
            StmtKind::While => format!("while ({}) {{", render_tokens(&self.head)),
            StmtKind::For => format!("for ({}) {{", render_tokens(&self.head)),
            StmtKind::Block => "{".to_string(),
            StmtKind::Break => "break;".to_string(),
        }
    }

    /// The token sequence the paper feeds to templatization for this
    /// statement: structural keywords plus the head tokens.
    ///
    /// # Examples
    /// ```
    /// use vega_cpplite::{parse_stmts, Token};
    /// let s = &parse_stmts("if (IsPCRel) { return 1; }").unwrap()[0];
    /// let line = s.line_tokens();
    /// assert_eq!(line[0], Token::ident("if"));
    /// ```
    pub fn line_tokens(&self) -> Vec<Token> {
        let mut v = Vec::with_capacity(self.head.len() + 3);
        match self.kind {
            StmtKind::Simple => {
                v.extend(self.head.iter().cloned());
                v.push(Token::Punct(";"));
            }
            StmtKind::Return => {
                v.push(Token::ident("return"));
                v.extend(self.head.iter().cloned());
                v.push(Token::Punct(";"));
            }
            StmtKind::If | StmtKind::Switch | StmtKind::While | StmtKind::For => {
                v.push(Token::ident(match self.kind {
                    StmtKind::If => "if",
                    StmtKind::Switch => "switch",
                    StmtKind::While => "while",
                    _ => "for",
                }));
                v.push(Token::Punct("("));
                v.extend(self.head.iter().cloned());
                v.push(Token::Punct(")"));
                v.push(Token::Punct("{"));
            }
            StmtKind::Case => {
                v.push(Token::ident("case"));
                v.extend(self.head.iter().cloned());
                v.push(Token::Punct(":"));
            }
            StmtKind::Default => {
                v.push(Token::ident("default"));
                v.push(Token::Punct(":"));
            }
            StmtKind::Block => v.push(Token::Punct("{")),
            StmtKind::Break => {
                v.push(Token::ident("break"));
                v.push(Token::Punct(";"));
            }
        }
        v
    }
}

/// Depth-first preorder iterator over a statement subtree.
#[derive(Debug)]
pub struct StmtIter<'a> {
    stack: Vec<&'a Stmt>,
}

impl<'a> Iterator for StmtIter<'a> {
    type Item = &'a Stmt;
    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        for c in node.else_children.iter().rev() {
            self.stack.push(c);
        }
        for c in node.children.iter().rev() {
            self.stack.push(c);
        }
        Some(node)
    }
}

/// A function parameter: type tokens plus name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    /// Type tokens, e.g. `const MCFixup &`.
    pub ty: Vec<Token>,
    /// Parameter name.
    pub name: String,
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", render_tokens(&self.ty), self.name)
    }
}

/// A parsed function: signature plus statement body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// Return type tokens.
    pub ret: Vec<Token>,
    /// Unqualified function name (e.g. `getRelocType`).
    pub name: String,
    /// Qualifier tokens preceding the name (e.g. `ARMELFObjectWriter`), empty
    /// for free functions.
    pub qualifier: Vec<String>,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// The signature line as the paper's "function definition statement",
    /// which carries the whole-function confidence score.
    pub fn signature_line(&self) -> String {
        let params: Vec<String> = self.params.iter().map(Param::to_string).collect();
        let qual = if self.qualifier.is_empty() {
            String::new()
        } else {
            format!("{}::", self.qualifier.join("::"))
        };
        format!(
            "{} {}{}({}) {{",
            render_tokens(&self.ret),
            qual,
            self.name,
            params.join(", ")
        )
    }

    /// Signature tokens used as the template's first statement.
    pub fn signature_tokens(&self) -> Vec<Token> {
        let mut v = self.ret.clone();
        for q in &self.qualifier {
            v.push(Token::ident(q.clone()));
            v.push(Token::Punct("::"));
        }
        v.push(Token::ident(self.name.clone()));
        v.push(Token::Punct("("));
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                v.push(Token::Punct(","));
            }
            v.extend(p.ty.iter().cloned());
            v.push(Token::ident(p.name.clone()));
        }
        v.push(Token::Punct(")"));
        v.push(Token::Punct("{"));
        v
    }

    /// Total number of statements (all nested nodes, excluding the signature).
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::node_count).sum()
    }

    /// Iterates over every statement in the body, preorder.
    pub fn iter_stmts(&self) -> impl Iterator<Item = &Stmt> {
        self.body.iter().flat_map(Stmt::iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    const SRC: &str = r#"
unsigned getRelocType(MCContext &Ctx, const MCValue &Target, const MCFixup &Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      break;
    }
  } else {
    return ELF::R_ARM_NONE;
  }
  return 0;
}
"#;

    #[test]
    fn counts_and_iteration() {
        let f = parse_function(SRC).unwrap();
        assert_eq!(f.name, "getRelocType");
        assert_eq!(f.params.len(), 4);
        // Statements: Kind decl, if, switch, case, return, default, break,
        // return (else), return 0.
        assert_eq!(f.stmt_count(), 9);
        let heads: Vec<String> = f.iter_stmts().map(|s| s.head_line()).collect();
        assert!(heads.iter().any(|h| h == "case ARM::fixup_arm_movt_hi16:"));
        assert!(heads.iter().any(|h| h == "return ELF::R_ARM_NONE;"));
    }

    #[test]
    fn signature_line_roundtrip() {
        let f = parse_function(SRC).unwrap();
        assert!(f.signature_line().starts_with("unsigned getRelocType("));
        assert!(f.signature_line().ends_with(") {"));
    }

    #[test]
    fn height_and_node_count() {
        let f = parse_function(SRC).unwrap();
        let if_stmt = &f.body[1];
        assert_eq!(if_stmt.kind, StmtKind::If);
        assert_eq!(if_stmt.height(), 4); // if > switch > case > return
        assert!(if_stmt.node_count() >= 6);
    }
}
