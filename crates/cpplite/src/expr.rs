//! Expression parsing (Pratt) for statement heads.
//!
//! The statement AST stores heads as raw token sequences — that is what
//! alignment and the model consume. The miniature compiler, however, must
//! *execute* interface functions (pass@1 substitutes a generated function into
//! the backend and runs regression tests), so heads are parsed on demand into
//! this expression tree and evaluated by [`crate::eval`].

use crate::token::Token;
use std::fmt;

/// Binary operators in precedence order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are the operators' own names
pub enum BinOp {
    Or,
    And,
    BitOr,
    BitXor,
    BitAnd,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
}

impl BinOp {
    fn precedence(self) -> u8 {
        use BinOp::*;
        match self {
            Or => 1,
            And => 2,
            BitOr => 3,
            BitXor => 4,
            BitAnd => 5,
            Eq | Ne => 6,
            Lt | Le | Gt | Ge => 7,
            Shl | Shr => 8,
            Add | Sub => 9,
            Mul | Div | Rem => 10,
        }
    }

    fn from_punct(p: &str) -> Option<Self> {
        use BinOp::*;
        Some(match p {
            "||" => Or,
            "&&" => And,
            "|" => BitOr,
            "^" => BitXor,
            "&" => BitAnd,
            "==" => Eq,
            "!=" => Ne,
            "<" => Lt,
            "<=" => Le,
            ">" => Gt,
            ">=" => Ge,
            "<<" => Shl,
            ">>" => Shr,
            "+" => Add,
            "-" => Sub,
            "*" => Mul,
            "/" => Div,
            "%" => Rem,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinOp::*;
        let s = match self {
            Or => "||",
            And => "&&",
            BitOr => "|",
            BitXor => "^",
            BitAnd => "&",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            Shl => "<<",
            Shr => ">>",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `!e`
    Not,
    /// `-e`
    Neg,
    /// `~e`
    BitNot,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An identifier reference, e.g. `Kind`.
    Ident(String),
    /// A `::`-scoped path, e.g. `ARM::fixup_arm_movt_hi16`.
    Scoped(Vec<String>),
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Function call `callee(args)` where callee is an identifier or path.
    Call {
        /// Callee expression (identifier or scoped path).
        callee: Box<Expr>,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Member access `obj.name` or `obj->name`.
    Member {
        /// Receiver.
        obj: Box<Expr>,
        /// Member name.
        name: String,
    },
    /// Method call `obj.name(args)` or `obj->name(args)`.
    MethodCall {
        /// Receiver.
        obj: Box<Expr>,
        /// Method name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `c ? t : e`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Then value.
        then_: Box<Expr>,
        /// Else value.
        else_: Box<Expr>,
    },
    /// Assignment `lhs = rhs` (also a declaration initializer once the type
    /// prefix has been stripped).
    Assign {
        /// Target name.
        name: String,
        /// Value.
        value: Box<Expr>,
    },
}

/// Error produced for token sequences outside the expression subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprError {
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "expression error: {}", self.message)
    }
}

impl std::error::Error for ExprError {}

struct P<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> P<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, m: &str) -> ExprError {
        ExprError {
            message: format!("{m} at token {}", self.pos),
        }
    }

    fn parse_expr(&mut self, min_prec: u8) -> Result<Expr, ExprError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let Some(Token::Punct(p)) = self.peek() else {
                break;
            };
            if *p == "?" && min_prec == 0 {
                self.bump();
                let then_ = self.parse_expr(0)?;
                match self.bump() {
                    Some(t) if t.is_punct(":") => {}
                    _ => return Err(self.err("expected `:` in ternary")),
                }
                let else_ = self.parse_expr(0)?;
                lhs = Expr::Ternary {
                    cond: Box::new(lhs),
                    then_: Box::new(then_),
                    else_: Box::new(else_),
                };
                continue;
            }
            let Some(op) = BinOp::from_punct(p) else {
                break;
            };
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ExprError> {
        if let Some(Token::Punct(p)) = self.peek() {
            let op = match *p {
                "!" => Some(UnOp::Not),
                "-" => Some(UnOp::Neg),
                "~" => Some(UnOp::BitNot),
                _ => None,
            };
            if let Some(op) = op {
                self.bump();
                let e = self.parse_unary()?;
                return Ok(Expr::Unary {
                    op,
                    expr: Box::new(e),
                });
            }
            // C-style cast like `(unsigned)x` or parenthesized expression.
            if *p == "(" {
                self.bump();
                // Cast: single identifier followed by `)` then a primary.
                if let (Some(Token::Ident(ty)), Some(t2)) =
                    (self.peek(), self.toks.get(self.pos + 1))
                {
                    let is_cast_ty = matches!(
                        ty.as_str(),
                        "unsigned" | "int" | "uint8_t" | "uint16_t" | "uint32_t" | "uint64_t"
                    );
                    if is_cast_ty && t2.is_punct(")") {
                        self.bump();
                        self.bump();
                        // The cast is a no-op in our value model.
                        return self.parse_unary();
                    }
                }
                let e = self.parse_expr(0)?;
                match self.bump() {
                    Some(t) if t.is_punct(")") => {}
                    _ => return Err(self.err("expected `)`")),
                }
                return self.parse_postfix(e);
            }
        }
        let prim = self.parse_primary()?;
        self.parse_postfix(prim)
    }

    fn parse_primary(&mut self) -> Result<Expr, ExprError> {
        match self.bump() {
            Some(Token::Int(v)) => Ok(Expr::Int(*v)),
            Some(Token::Str(s)) => Ok(Expr::Str(s.clone())),
            Some(Token::Ident(s)) => {
                match s.as_str() {
                    "true" => return Ok(Expr::Int(1)),
                    "false" => return Ok(Expr::Int(0)),
                    "nullptr" => return Ok(Expr::Int(0)),
                    _ => {}
                }
                // Scoped path?
                let mut parts = vec![s.clone()];
                while self.peek().is_some_and(|t| t.is_punct("::")) {
                    self.bump();
                    match self.bump() {
                        Some(Token::Ident(n)) => parts.push(n.clone()),
                        _ => return Err(self.err("expected identifier after `::`")),
                    }
                }
                if parts.len() > 1 {
                    Ok(Expr::Scoped(parts))
                } else {
                    Ok(Expr::Ident(parts.pop().unwrap()))
                }
            }
            other => Err(self.err(&format!(
                "unexpected token `{}`",
                other
                    .map(|t| t.spelling())
                    .unwrap_or_else(|| "<eof>".into())
            ))),
        }
    }

    fn parse_args(&mut self) -> Result<Vec<Expr>, ExprError> {
        let mut args = Vec::new();
        if self.peek().is_some_and(|t| t.is_punct(")")) {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr(0)?);
            match self.bump() {
                Some(t) if t.is_punct(",") => continue,
                Some(t) if t.is_punct(")") => break,
                _ => return Err(self.err("expected `,` or `)` in arguments")),
            }
        }
        Ok(args)
    }

    fn parse_postfix(&mut self, mut e: Expr) -> Result<Expr, ExprError> {
        loop {
            match self.peek() {
                Some(t) if t.is_punct("(") => {
                    self.bump();
                    let args = self.parse_args()?;
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                    };
                }
                Some(t) if t.is_punct(".") || t.is_punct("->") => {
                    self.bump();
                    let name = match self.bump() {
                        Some(Token::Ident(n)) => n.clone(),
                        _ => return Err(self.err("expected member name")),
                    };
                    if self.peek().is_some_and(|t| t.is_punct("(")) {
                        self.bump();
                        let args = self.parse_args()?;
                        e = Expr::MethodCall {
                            obj: Box::new(e),
                            name,
                            args,
                        };
                    } else {
                        e = Expr::Member {
                            obj: Box::new(e),
                            name,
                        };
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }
}

/// Strips a leading type prefix (`unsigned`, `int`, `bool`, `uint32_t`,
/// `const X &`, …) from a declaration statement, returning the remaining
/// tokens starting at the declared name.
fn strip_decl_type(toks: &[Token]) -> &[Token] {
    // A declaration looks like `ty-tokens name = expr` or `ty-tokens name`.
    // Heuristic: if the sequence starts with ≥1 identifiers followed by
    // another identifier that is immediately followed by `=` or end, the
    // leading identifiers (plus `&`/`*`/`const`) are a type prefix.
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            Token::Ident(_) => {
                // Look ahead: is the *next* wordy token the declared name?
                let mut j = i + 1;
                while j < toks.len() && (toks[j].is_punct("&") || toks[j].is_punct("*")) {
                    j += 1;
                }
                if j < toks.len()
                    && matches!(toks[j], Token::Ident(_))
                    && (j + 1 == toks.len() || toks[j + 1].is_punct("="))
                {
                    return &toks[j..];
                }
                i += 1;
            }
            t if t.is_punct("&") || t.is_punct("*") => i += 1,
            _ => break,
        }
    }
    toks
}

/// Parses a statement-head token sequence into an expression.
///
/// Handles plain expressions, assignments (`x = e`), and declarations with
/// initializers (`unsigned Kind = e`, parsed as an assignment to `Kind`).
///
/// # Errors
/// Returns [`ExprError`] for sequences outside the subset.
///
/// # Examples
/// ```
/// use vega_cpplite::{lex, parse_head_expr, Expr};
/// let toks = lex("unsigned Kind = Fixup.getTargetKind()").unwrap();
/// let e = parse_head_expr(&toks)?;
/// assert!(matches!(e, Expr::Assign { .. }));
/// # Ok::<(), vega_cpplite::ExprError>(())
/// ```
pub fn parse_head_expr(toks: &[Token]) -> Result<Expr, ExprError> {
    let toks = strip_decl_type(toks);
    // Assignment: `name = expr` (single-identifier LHS only).
    if toks.len() >= 3 {
        if let (Token::Ident(name), t) = (&toks[0], &toks[1]) {
            if t.is_punct("=") {
                let mut p = P {
                    toks: &toks[2..],
                    pos: 0,
                };
                let value = p.parse_expr(0)?;
                if p.pos != toks.len() - 2 {
                    return Err(p.err("trailing tokens in assignment"));
                }
                return Ok(Expr::Assign {
                    name: name.clone(),
                    value: Box::new(value),
                });
            }
        }
    }
    let mut p = P { toks, pos: 0 };
    let e = p.parse_expr(0)?;
    if p.pos != toks.len() {
        return Err(p.err("trailing tokens in expression"));
    }
    Ok(e)
}

/// Parses a bare expression token sequence (no declaration handling).
///
/// # Errors
/// Returns [`ExprError`] for sequences outside the subset.
pub fn parse_expr_tokens(toks: &[Token]) -> Result<Expr, ExprError> {
    let mut p = P { toks, pos: 0 };
    let e = p.parse_expr(0)?;
    if p.pos != toks.len() {
        return Err(p.err("trailing tokens in expression"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn e(src: &str) -> Expr {
        parse_head_expr(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn precedence() {
        let x = e("1 + 2 * 3 == 7 && 1");
        assert!(matches!(x, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn scoped_and_method() {
        let x = e("Fixup.getTargetKind() == ARM::fixup_arm_movt_hi16");
        match x {
            Expr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } => {
                assert!(matches!(*lhs, Expr::MethodCall { .. }));
                assert!(matches!(*rhs, Expr::Scoped(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn declaration_becomes_assignment() {
        let x = e("unsigned Kind = Fixup.getTargetKind()");
        match x {
            Expr::Assign { name, .. } => assert_eq!(name, "Kind"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cast_is_transparent() {
        let x = e("(unsigned)Kind + 1");
        assert!(matches!(x, Expr::Binary { op: BinOp::Add, .. }));
    }

    #[test]
    fn ternary() {
        let x = e("IsPCRel ? 1 : 0");
        assert!(matches!(x, Expr::Ternary { .. }));
    }

    #[test]
    fn unary_chain() {
        let x = e("!~-Kind");
        assert!(matches!(x, Expr::Unary { op: UnOp::Not, .. }));
    }

    #[test]
    fn rejects_trailing() {
        assert!(parse_head_expr(&lex("1 2").unwrap()).is_err());
    }
}
