//! Pretty-printer: renders the statement AST back to indented source text.

use crate::ast::{Function, Stmt, StmtKind};
use std::fmt::Write as _;

/// Renders a list of statements with the given starting indent level.
pub fn render_stmts(stmts: &[Stmt], indent: usize) -> String {
    let mut out = String::new();
    for s in stmts {
        render_stmt(s, indent, &mut out);
    }
    out
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_stmt(s: &Stmt, indent: usize, out: &mut String) {
    match s.kind {
        StmtKind::Simple | StmtKind::Return | StmtKind::Break => {
            pad(indent, out);
            let _ = writeln!(out, "{}", s.head_line());
        }
        StmtKind::If => {
            pad(indent, out);
            let _ = writeln!(out, "{}", s.head_line());
            for c in &s.children {
                render_stmt(c, indent + 1, out);
            }
            if s.else_children.is_empty() {
                pad(indent, out);
                out.push_str("}\n");
            } else if s.else_children.len() == 1 && s.else_children[0].kind == StmtKind::If {
                pad(indent, out);
                out.push_str("} else ");
                // Render the else-if inline: reuse the child's rendering minus
                // its leading indent.
                let mut tmp = String::new();
                render_stmt(&s.else_children[0], indent, &mut tmp);
                out.push_str(tmp.trim_start_matches(' '));
            } else {
                pad(indent, out);
                out.push_str("} else {\n");
                for c in &s.else_children {
                    render_stmt(c, indent + 1, out);
                }
                pad(indent, out);
                out.push_str("}\n");
            }
        }
        StmtKind::Switch => {
            pad(indent, out);
            let _ = writeln!(out, "{}", s.head_line());
            for c in &s.children {
                render_stmt(c, indent, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
        StmtKind::Case | StmtKind::Default => {
            pad(indent, out);
            let _ = writeln!(out, "{}", s.head_line());
            for c in &s.children {
                render_stmt(c, indent + 1, out);
            }
        }
        StmtKind::While | StmtKind::For | StmtKind::Block => {
            pad(indent, out);
            let _ = writeln!(out, "{}", s.head_line());
            for c in &s.children {
                render_stmt(c, indent + 1, out);
            }
            pad(indent, out);
            out.push_str("}\n");
        }
    }
}

/// Renders a whole function definition.
///
/// # Examples
/// ```
/// use vega_cpplite::{parse_function, render_function};
/// let f = parse_function("int f(int x) { if (x) { return 1; } return 0; }")?;
/// let text = render_function(&f);
/// let f2 = parse_function(&text)?; // round-trips
/// assert_eq!(f, f2);
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn render_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", f.signature_line());
    out.push_str(&render_stmts(&f.body, 1));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_function, parse_stmts};

    #[test]
    fn roundtrip_nested() {
        let src = r#"
unsigned getRelocType(const MCFixup &Fixup, bool IsPCRel) {
  unsigned Kind = Fixup.getTargetKind();
  if (IsPCRel) {
    switch (Kind) {
    case ARM::fixup_arm_movt_hi16:
      return ELF::R_ARM_MOVT_PREL;
    default:
      break;
    }
  } else if (Kind == 3) {
    return 7;
  } else {
    return ELF::R_ARM_NONE;
  }
  return 0;
}
"#;
        let f = parse_function(src).unwrap();
        let printed = render_function(&f);
        let f2 = parse_function(&printed).unwrap();
        assert_eq!(f, f2);
    }

    #[test]
    fn roundtrip_loops_and_blocks() {
        let src = "for (i = 0; i < 4; i = i + 1) { { x = x + i; } } while (x) { x = x - 1; }";
        let stmts = parse_stmts(src).unwrap();
        let printed = render_stmts(&stmts, 0);
        let stmts2 = parse_stmts(&printed).unwrap();
        assert_eq!(stmts, stmts2);
    }
}

#[cfg(test)]
mod extra_tests {
    use crate::parser::parse_stmts;
    use crate::printer::render_stmts;

    #[test]
    fn deep_nesting_roundtrip() {
        let mut src = String::from("x = 0;");
        for i in 0..12 {
            src = format!("if (c{i}) {{ {src} }} else {{ y = {i}; }}");
        }
        let stmts = parse_stmts(&src).unwrap();
        let printed = render_stmts(&stmts, 0);
        assert_eq!(parse_stmts(&printed).unwrap(), stmts);
    }

    #[test]
    fn empty_bodies_roundtrip() {
        for src in ["if (a) { }", "switch (k) { default: }", "while (x) { }"] {
            let stmts = parse_stmts(src).unwrap();
            let printed = render_stmts(&stmts, 0);
            assert_eq!(parse_stmts(&printed).unwrap(), stmts, "{src}");
        }
    }
}
