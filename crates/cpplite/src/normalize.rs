//! Statement normalization (paper §3.1): equivalent `if`/`else if` selection
//! chains are rewritten into `switch` statements so that different targets'
//! implementations align structurally.

use crate::ast::{Stmt, StmtKind};
use crate::eval::split_toplevel;
use crate::token::Token;

/// Normalizes a statement list in place: every `if (X == A) ... else if
/// (X == B) ... else ...` chain with a common scrutinee `X` and at least two
/// comparisons becomes `switch (X) { case A: ...; case B: ...; default: ... }`.
///
/// # Examples
/// ```
/// use vega_cpplite::{normalize_stmts, parse_stmts, StmtKind};
/// let mut stmts = parse_stmts(
///     "if (Kind == 1) { return 10; } else if (Kind == 2) { return 20; } else { return 0; }",
/// )?;
/// normalize_stmts(&mut stmts);
/// assert_eq!(stmts[0].kind, StmtKind::Switch);
/// assert_eq!(stmts[0].children.len(), 3); // two cases + default
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn normalize_stmts(stmts: &mut Vec<Stmt>) {
    for s in stmts.iter_mut() {
        normalize_children(s);
        if let Some(sw) = try_chain_to_switch(s) {
            *s = sw;
        }
    }
}

fn normalize_children(s: &mut Stmt) {
    normalize_stmts(&mut s.children);
    normalize_stmts(&mut s.else_children);
}

/// Splits a condition `X == A` into `(X-tokens, A-tokens)` when it is a single
/// top-level equality.
fn split_equality(cond: &[Token]) -> Option<(Vec<Token>, Vec<Token>)> {
    let parts = split_toplevel(cond, "==");
    if parts.len() == 2 && !parts[0].is_empty() && !parts[1].is_empty() {
        Some((parts[0].clone(), parts[1].clone()))
    } else {
        None
    }
}

/// Ensures each case body ends the statement group (append `break;` unless the
/// body already returns or breaks).
fn terminated(body: &[Stmt]) -> bool {
    matches!(
        body.last().map(|s| s.kind),
        Some(StmtKind::Return) | Some(StmtKind::Break)
    )
}

fn try_chain_to_switch(s: &Stmt) -> Option<Stmt> {
    if s.kind != StmtKind::If {
        return None;
    }
    let mut cases: Vec<(Vec<Token>, Vec<Stmt>)> = Vec::new();
    let mut default_body: Option<Vec<Stmt>> = None;
    let mut scrutinee: Option<Vec<Token>> = None;
    let mut cur = s;
    loop {
        let (lhs, rhs) = split_equality(&cur.head)?;
        match &scrutinee {
            None => scrutinee = Some(lhs),
            Some(x) if *x == lhs => {}
            Some(_) => return None,
        }
        cases.push((rhs, cur.children.clone()));
        match cur.else_children.as_slice() {
            [] => break,
            [next] if next.kind == StmtKind::If => cur = next,
            other => {
                default_body = Some(other.to_vec());
                break;
            }
        }
    }
    if cases.len() < 2 {
        return None;
    }
    let mut children = Vec::with_capacity(cases.len() + 1);
    for (label, mut body) in cases {
        if !terminated(&body) {
            body.push(Stmt::new(StmtKind::Break, Vec::new(), Vec::new()));
        }
        children.push(Stmt::new(StmtKind::Case, label, body));
    }
    if let Some(mut body) = default_body {
        if !terminated(&body) {
            body.push(Stmt::new(StmtKind::Break, Vec::new(), Vec::new()));
        }
        children.push(Stmt::new(StmtKind::Default, Vec::new(), body));
    }
    Some(Stmt::new(StmtKind::Switch, scrutinee.unwrap(), children))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EmptyEnv, Interp, Value};
    use crate::parser::parse_stmts;

    #[test]
    fn converts_equality_chain() {
        let mut stmts = parse_stmts(
            "if (Kind == 1) { x = 10; } else if (Kind == 2) { return 20; } else { x = 0; } return x;",
        )
        .unwrap();
        normalize_stmts(&mut stmts);
        let sw = &stmts[0];
        assert_eq!(sw.kind, StmtKind::Switch);
        assert_eq!(sw.children.len(), 3);
        // Non-terminated case bodies gained a break.
        assert_eq!(
            sw.children[0].children.last().unwrap().kind,
            StmtKind::Break
        );
        // Terminated ones did not.
        assert_eq!(sw.children[1].children.len(), 1);
    }

    #[test]
    fn leaves_single_if_alone() {
        let mut stmts = parse_stmts("if (Kind == 1) { return 10; }").unwrap();
        normalize_stmts(&mut stmts);
        assert_eq!(stmts[0].kind, StmtKind::If);
    }

    #[test]
    fn leaves_mixed_scrutinee_alone() {
        let mut stmts =
            parse_stmts("if (a == 1) { return 1; } else if (b == 2) { return 2; }").unwrap();
        normalize_stmts(&mut stmts);
        assert_eq!(stmts[0].kind, StmtKind::If);
    }

    #[test]
    fn normalization_preserves_semantics() {
        let src =
            "if (Kind == 1) { x = 10; } else if (Kind == 2) { x = 20; } else { x = 0; } return x;";
        for k in [1i64, 2, 3] {
            let stmts = parse_stmts(src).unwrap();
            let mut normed = stmts.clone();
            normalize_stmts(&mut normed);
            let run = |ss: &[Stmt]| {
                let mut env = EmptyEnv;
                let mut it = Interp::new(&mut env);
                let pre = parse_stmts(&format!("Kind = {k};")).unwrap();
                it.run_stmts(&pre).unwrap();
                it.run_stmts(ss).unwrap()
            };
            assert_eq!(run(&stmts), run(&normed), "k={k}");
        }
    }

    #[test]
    fn normalizes_nested_chains() {
        let mut stmts =
            parse_stmts("if (outer) { if (k == 1) { return 1; } else if (k == 2) { return 2; } }")
                .unwrap();
        normalize_stmts(&mut stmts);
        assert_eq!(stmts[0].kind, StmtKind::If);
        assert_eq!(stmts[0].children[0].kind, StmtKind::Switch);
    }
}
