//! Recursive-descent parser from tokens to the statement AST.

use crate::ast::{Function, Param, Stmt, StmtKind};
use crate::lexer::{lex, LexError};
use crate::token::Token;
use std::fmt;

/// Error produced when the token stream does not form valid subset syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Index of the offending token.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at token {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            at: e.offset,
            message: format!("lex: {}", e.message),
        }
    }
}

struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_punct(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{p}`")))
        }
    }

    fn error(&self, msg: &str) -> ParseError {
        let found = self
            .peek()
            .map(|t| t.spelling())
            .unwrap_or_else(|| "<eof>".to_string());
        ParseError {
            at: self.pos,
            message: format!("{msg}, found `{found}`"),
        }
    }

    /// Collects tokens until the matching close of `open` (which has already
    /// been consumed), respecting nested brackets of all kinds.
    fn until_balanced(&mut self, open: &str, close: &str) -> Result<Vec<Token>, ParseError> {
        let mut depth = 0usize;
        let mut out = Vec::new();
        loop {
            let t = self
                .bump()
                .ok_or_else(|| self.error(&format!("unterminated `{open}`")))?;
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                if depth == 0 {
                    return Ok(out);
                }
                depth -= 1;
            }
            out.push(t.clone());
        }
    }

    /// Collects tokens until a top-level occurrence of `stop` (consumed but
    /// not included), respecting `()`, `[]` and `{}` nesting.
    fn until_toplevel(&mut self, stop: &str) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        let mut paren = 0i32;
        let mut brack = 0i32;
        let mut brace = 0i32;
        loop {
            let t = self
                .bump()
                .ok_or_else(|| self.error(&format!("expected `{stop}`")))?;
            if paren == 0 && brack == 0 && brace == 0 && t.is_punct(stop) {
                return Ok(out);
            }
            match t {
                Token::Punct("(") => paren += 1,
                Token::Punct(")") => paren -= 1,
                Token::Punct("[") => brack += 1,
                Token::Punct("]") => brack -= 1,
                Token::Punct("{") => brace += 1,
                Token::Punct("}") => brace -= 1,
                _ => {}
            }
            out.push(t.clone());
        }
    }
}

/// Parses one statement. `case`/`default` labels are not valid here; they are
/// handled inside `parse_switch_body`.
fn parse_stmt(c: &mut Cursor<'_>) -> Result<Stmt, ParseError> {
    let t = c.peek().ok_or_else(|| c.error("expected statement"))?;
    match t {
        Token::Punct("{") => {
            c.bump();
            let body = parse_stmt_list(c)?;
            c.expect_punct("}")?;
            Ok(Stmt::new(StmtKind::Block, Vec::new(), body))
        }
        Token::Ident(s) if s == "if" => parse_if(c),
        Token::Ident(s) if s == "switch" => parse_switch(c),
        Token::Ident(s) if s == "while" => {
            c.bump();
            c.expect_punct("(")?;
            let cond = c.until_balanced("(", ")")?;
            let body = parse_braced_or_single(c)?;
            Ok(Stmt::new(StmtKind::While, cond, body))
        }
        Token::Ident(s) if s == "for" => {
            c.bump();
            c.expect_punct("(")?;
            let header = c.until_balanced("(", ")")?;
            let body = parse_braced_or_single(c)?;
            Ok(Stmt::new(StmtKind::For, header, body))
        }
        Token::Ident(s) if s == "return" => {
            c.bump();
            let expr = c.until_toplevel(";")?;
            Ok(Stmt::new(StmtKind::Return, expr, Vec::new()))
        }
        Token::Ident(s) if s == "break" => {
            c.bump();
            c.expect_punct(";")?;
            Ok(Stmt::new(StmtKind::Break, Vec::new(), Vec::new()))
        }
        _ => {
            let toks = c.until_toplevel(";")?;
            if toks.is_empty() {
                // A stray `;` is an empty statement; keep it as Simple.
                return Ok(Stmt::simple(Vec::new()));
            }
            Ok(Stmt::simple(toks))
        }
    }
}

fn parse_braced_or_single(c: &mut Cursor<'_>) -> Result<Vec<Stmt>, ParseError> {
    if c.eat_punct("{") {
        let body = parse_stmt_list(c)?;
        c.expect_punct("}")?;
        Ok(body)
    } else {
        Ok(vec![parse_stmt(c)?])
    }
}

fn parse_if(c: &mut Cursor<'_>) -> Result<Stmt, ParseError> {
    c.bump(); // `if`
    c.expect_punct("(")?;
    let cond = c.until_balanced("(", ")")?;
    let then_ = parse_braced_or_single(c)?;
    let mut node = Stmt::new(StmtKind::If, cond, then_);
    if c.peek().is_some_and(|t| t.is_ident("else")) {
        c.bump();
        if c.peek().is_some_and(|t| t.is_ident("if")) {
            node.else_children = vec![parse_if(c)?];
        } else {
            node.else_children = parse_braced_or_single(c)?;
        }
    }
    Ok(node)
}

fn parse_switch(c: &mut Cursor<'_>) -> Result<Stmt, ParseError> {
    c.bump(); // `switch`
    c.expect_punct("(")?;
    let scrutinee = c.until_balanced("(", ")")?;
    c.expect_punct("{")?;
    let mut cases: Vec<Stmt> = Vec::new();
    loop {
        let t = c.peek().ok_or_else(|| c.error("unterminated switch"))?;
        if t.is_punct("}") {
            c.bump();
            break;
        }
        if t.is_ident("case") {
            c.bump();
            let label = c.until_toplevel(":")?;
            cases.push(Stmt::new(StmtKind::Case, label, Vec::new()));
        } else if t.is_ident("default") {
            c.bump();
            c.expect_punct(":")?;
            cases.push(Stmt::new(StmtKind::Default, Vec::new(), Vec::new()));
        } else {
            let stmt = parse_stmt(c)?;
            match cases.last_mut() {
                Some(case) => case.children.push(stmt),
                None => return Err(c.error("statement before first case label")),
            }
        }
    }
    Ok(Stmt::new(StmtKind::Switch, scrutinee, cases))
}

fn parse_stmt_list(c: &mut Cursor<'_>) -> Result<Vec<Stmt>, ParseError> {
    let mut out = Vec::new();
    while let Some(t) = c.peek() {
        if t.is_punct("}") {
            break;
        }
        out.push(parse_stmt(c)?);
    }
    Ok(out)
}

/// Parses a sequence of statements from source text (no enclosing function).
///
/// # Errors
/// Returns [`ParseError`] if lexing fails or the statements are malformed.
///
/// # Examples
/// ```
/// use vega_cpplite::parse_stmts;
/// let stmts = parse_stmts("unsigned Kind = Fixup.getTargetKind(); return Kind;")?;
/// assert_eq!(stmts.len(), 2);
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn parse_stmts(src: &str) -> Result<Vec<Stmt>, ParseError> {
    let toks = lex(src)?;
    let mut c = Cursor {
        toks: &toks,
        pos: 0,
    };
    let out = parse_stmt_list(&mut c)?;
    if c.pos != toks.len() {
        return Err(c.error("trailing tokens after statements"));
    }
    Ok(out)
}

/// Splits a parameter-list token sequence on top-level commas.
fn split_params(toks: &[Token]) -> Vec<Vec<Token>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        match t {
            Token::Punct("(") | Token::Punct("<") | Token::Punct("[") => depth += 1,
            Token::Punct(")") | Token::Punct(">") | Token::Punct("]") => depth -= 1,
            Token::Punct(",") if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses one function definition from source text.
///
/// Accepts both free functions and qualified member definitions
/// (`unsigned ARMELFObjectWriter::getRelocType(...) { ... }`).
///
/// # Errors
/// Returns [`ParseError`] on lex failure or malformed syntax.
///
/// # Examples
/// ```
/// use vega_cpplite::parse_function;
/// let f = parse_function("unsigned f(bool IsPCRel) { return 0; }")?;
/// assert_eq!(f.name, "f");
/// assert_eq!(f.params[0].name, "IsPCRel");
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn parse_function(src: &str) -> Result<Function, ParseError> {
    let toks = lex(src)?;
    let mut c = Cursor {
        toks: &toks,
        pos: 0,
    };
    let f = parse_function_at(&mut c)?;
    if c.pos != toks.len() {
        return Err(c.error("trailing tokens after function"));
    }
    Ok(f)
}

/// Parses all function definitions in a source file.
///
/// # Errors
/// Returns [`ParseError`] on the first malformed definition.
pub fn parse_functions(src: &str) -> Result<Vec<Function>, ParseError> {
    let toks = lex(src)?;
    let mut c = Cursor {
        toks: &toks,
        pos: 0,
    };
    let mut out = Vec::new();
    while c.peek().is_some() {
        out.push(parse_function_at(&mut c)?);
    }
    Ok(out)
}

fn parse_function_at(c: &mut Cursor<'_>) -> Result<Function, ParseError> {
    // Collect header tokens up to the parameter list's `(` at top level.
    let mut header: Vec<Token> = Vec::new();
    loop {
        let t = c
            .peek()
            .ok_or_else(|| c.error("expected function header"))?;
        if t.is_punct("(") {
            break;
        }
        header.push(c.bump().unwrap().clone());
    }
    if header.is_empty() {
        return Err(c.error("missing function header"));
    }
    // The name is the last identifier in the header; any `A::B::` chain
    // immediately before it is the qualifier; the rest is the return type.
    let name = match header.last() {
        Some(Token::Ident(s)) => s.clone(),
        _ => return Err(c.error("function name must be an identifier")),
    };
    header.pop();
    let mut qualifier_rev: Vec<String> = Vec::new();
    while header.len() >= 2
        && header.last().is_some_and(|t| t.is_punct("::"))
        && matches!(header[header.len() - 2], Token::Ident(_))
    {
        header.pop(); // `::`
        if let Some(Token::Ident(q)) = header.pop() {
            qualifier_rev.push(q);
        }
    }
    qualifier_rev.reverse();
    let ret = header;

    c.expect_punct("(")?;
    let param_toks = c.until_balanced("(", ")")?;
    let mut params = Vec::new();
    for ptoks in split_params(&param_toks) {
        // Name = last identifier; type = everything before it.
        let name_idx = ptoks
            .iter()
            .rposition(|t| matches!(t, Token::Ident(_)))
            .ok_or_else(|| c.error("parameter missing a name"))?;
        let name = ptoks[name_idx].as_ident().unwrap().to_string();
        let mut ty: Vec<Token> = ptoks[..name_idx].to_vec();
        ty.extend(ptoks[name_idx + 1..].iter().cloned());
        params.push(Param { ty, name });
    }
    // Skip trailing cv-qualifiers / `override` before the body.
    while c
        .peek()
        .is_some_and(|t| t.is_ident("const") || t.is_ident("override") || t.is_ident("noexcept"))
    {
        c.bump();
    }
    c.expect_punct("{")?;
    let body = parse_stmt_list(c)?;
    c.expect_punct("}")?;
    Ok(Function {
        ret,
        name,
        qualifier: qualifier_rev,
        params,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_if_else_chain() {
        let stmts =
            parse_stmts("if (a == 1) { x = 1; } else if (a == 2) { x = 2; } else { x = 3; }")
                .unwrap();
        assert_eq!(stmts.len(), 1);
        let s = &stmts[0];
        assert_eq!(s.kind, StmtKind::If);
        assert_eq!(s.else_children.len(), 1);
        assert_eq!(s.else_children[0].kind, StmtKind::If);
        assert_eq!(s.else_children[0].else_children.len(), 1);
    }

    #[test]
    fn parses_switch_with_fallthrough_labels() {
        let stmts =
            parse_stmts("switch (Kind) { case A: case B: return 1; default: break; }").unwrap();
        let sw = &stmts[0];
        assert_eq!(sw.kind, StmtKind::Switch);
        assert_eq!(sw.children.len(), 3);
        assert_eq!(sw.children[0].kind, StmtKind::Case);
        assert!(sw.children[0].children.is_empty()); // falls through
        assert_eq!(sw.children[1].children.len(), 1);
        assert_eq!(sw.children[2].kind, StmtKind::Default);
    }

    #[test]
    fn parses_unbraced_if_body() {
        let stmts = parse_stmts("if (x) return 1; return 2;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].children.len(), 1);
        assert_eq!(stmts[0].children[0].kind, StmtKind::Return);
    }

    #[test]
    fn parses_member_function_with_qualifier() {
        let f = parse_function(
            "unsigned ARMELFObjectWriter::getRelocType(const MCFixup &Fixup, bool IsPCRel) const { return 0; }",
        )
        .unwrap();
        assert_eq!(f.qualifier, vec!["ARMELFObjectWriter".to_string()]);
        assert_eq!(f.name, "getRelocType");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "Fixup");
    }

    #[test]
    fn parses_multiple_functions() {
        let fs = parse_functions("int a() { return 1; } int b() { return 2; }").unwrap();
        assert_eq!(fs.len(), 2);
        assert_eq!(fs[1].name, "b");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_function("int f( { }").is_err());
        assert!(parse_stmts("if (x { }").is_err());
    }

    #[test]
    fn for_loop_and_while() {
        let stmts =
            parse_stmts("for (unsigned i = 0; i < N; i = i + 1) { total = total + i; } while (x) { x = x - 1; }")
                .unwrap();
        assert_eq!(stmts.len(), 2);
        assert_eq!(stmts[0].kind, StmtKind::For);
        assert_eq!(stmts[1].kind, StmtKind::While);
    }
}
