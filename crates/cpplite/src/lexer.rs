//! A small hand-written lexer for the C++-like subset.
//!
//! The lexer is shared by every stage that looks at source text: parsing
//! backend functions, scanning `.td`/`.h`/`.def` description files during
//! feature selection (Algorithm 1, lines 8 and 25), and building model inputs.

use crate::token::Token;
use std::fmt;

/// Error produced when the input contains a character sequence outside the
/// supported subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "#", "{", "}", "(", ")", "[", "]", ";",
    ",", ":", "?", "=", "<", ">", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", ".", "@",
];

/// Tokenizes `src`, skipping whitespace, `//` and `/* */` comments, and
/// preprocessor line continuations.
///
/// # Errors
///
/// Returns [`LexError`] on an unterminated string/comment or a character
/// outside the subset.
///
/// # Examples
/// ```
/// use vega_cpplite::{lex, Token};
/// let toks = lex("case ARM::fixup_arm_movt_hi16: // upper half")?;
/// assert_eq!(toks.len(), 5);
/// assert_eq!(toks[0], Token::ident("case"));
/// # Ok::<(), vega_cpplite::LexError>(())
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut out = Vec::new();
    let err = |i: usize, line: usize, m: &str| LexError {
        offset: i,
        line,
        message: m.to_string(),
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(err(i, start_line, "unterminated block comment"));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        // Line continuation inside preprocessor-ish text.
        if c == '\\' && i + 1 < bytes.len() && bytes[i + 1] == b'\n' {
            i += 2;
            line += 1;
            continue;
        }
        // String literal.
        if c == '"' {
            let start = i + 1;
            let mut j = start;
            let mut s = String::new();
            loop {
                if j >= bytes.len() {
                    return Err(err(i, line, "unterminated string literal"));
                }
                match bytes[j] {
                    b'"' => break,
                    b'\\' if j + 1 < bytes.len() => {
                        s.push(bytes[j + 1] as char);
                        j += 2;
                    }
                    b'\n' => return Err(err(j, line, "newline in string literal")),
                    b => {
                        s.push(b as char);
                        j += 1;
                    }
                }
            }
            out.push(Token::Str(s));
            i = j + 1;
            continue;
        }
        // Character literal: lexed as an Int of its codepoint.
        if c == '\'' {
            let mut j = i + 1;
            let v: i64;
            if j < bytes.len() && bytes[j] == b'\\' {
                let esc = bytes.get(j + 1).copied().unwrap_or(b'?') as char;
                v = match esc {
                    'n' => 10,
                    't' => 9,
                    '0' => 0,
                    o => o as i64,
                };
                j += 2;
            } else if j < bytes.len() {
                v = bytes[j] as i64;
                j += 1;
            } else {
                return Err(err(i, line, "unterminated char literal"));
            }
            if j >= bytes.len() || bytes[j] != b'\'' {
                return Err(err(i, line, "unterminated char literal"));
            }
            out.push(Token::Int(v));
            i = j + 1;
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            let start = i;
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 0x20) == b'x' {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let text = &src[start + 2..i];
                let v = i64::from_str_radix(text, 16)
                    .map_err(|_| err(start, line, "invalid hex literal"))?;
                out.push(Token::Int(v));
            } else {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // Skip integer suffixes (u, l, ul, ull ...).
                let digits_end = i;
                while i < bytes.len() && matches!(bytes[i] | 0x20, b'u' | b'l') {
                    i += 1;
                }
                let v: i64 = src[start..digits_end]
                    .parse()
                    .map_err(|_| err(start, line, "invalid integer literal"))?;
                out.push(Token::Int(v));
            }
            continue;
        }
        // Identifier / keyword.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token::Ident(src[start..i].to_string()));
            continue;
        }
        // Punctuation (maximal munch).
        let rest = &src[i..];
        if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
            out.push(Token::Punct(p));
            i += p.len();
            continue;
        }
        return Err(err(i, line, &format!("unexpected character {c:?}")));
    }
    Ok(out)
}

/// Tokenizes `src`, dropping anything that fails to lex line-by-line.
///
/// Description files occasionally contain constructs outside the strict
/// subset; feature selection only needs the identifier/assignment structure,
/// so unlexable lines are skipped rather than failing the whole file. This is
/// the `Tokenizer` of Algorithm 1.
///
/// # Examples
/// ```
/// use vega_cpplite::lex_lossy;
/// let toks = lex_lossy("Name = \"ARM\"\n$bad$ line\nOperandType = \"OPERAND_PCREL\"");
/// assert!(toks.iter().any(|t| t.as_str_lit() == Some("ARM")));
/// ```
pub fn lex_lossy(src: &str) -> Vec<Token> {
    match lex(src) {
        Ok(t) => t,
        Err(_) => src
            .lines()
            .flat_map(|l| lex(l).unwrap_or_default())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_scoped_names_and_calls() {
        let toks = lex("unsigned Kind = Fixup.getTargetKind();").unwrap();
        let spell: Vec<String> = toks.iter().map(|t| t.spelling()).collect();
        assert_eq!(
            spell,
            [
                "unsigned",
                "Kind",
                "=",
                "Fixup",
                ".",
                "getTargetKind",
                "(",
                ")",
                ";"
            ]
        );
    }

    #[test]
    fn lexes_hex_and_suffixed_ints() {
        let toks = lex("0xff 42u 7ull").unwrap();
        assert_eq!(toks, vec![Token::Int(255), Token::Int(42), Token::Int(7)]);
    }

    #[test]
    fn skips_comments() {
        let toks = lex("a // trailing\n/* b */ c").unwrap();
        assert_eq!(toks, vec![Token::ident("a"), Token::ident("c")]);
    }

    #[test]
    fn string_escapes() {
        let toks = lex(r#""OPERAND\"_PCREL""#).unwrap();
        assert_eq!(toks, vec![Token::Str("OPERAND\"_PCREL".into())]);
    }

    #[test]
    fn errors_on_unterminated_string() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn maximal_munch_punct() {
        let toks = lex("a<<=b:: c->d").unwrap();
        let spell: Vec<String> = toks.iter().map(|t| t.spelling()).collect();
        assert_eq!(spell, ["a", "<<=", "b", "::", "c", "->", "d"]);
    }

    #[test]
    fn lossy_recovers_per_line() {
        let toks = lex_lossy("good = 1\n$$$\nName = \"X\"");
        assert!(toks.contains(&Token::Str("X".into())));
        assert!(toks.contains(&Token::ident("good")));
    }
}
