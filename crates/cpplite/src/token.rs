//! Lexical tokens for the C++-like subset used by miniature LLVM backends.
//!
//! The corpus (backend functions, `.td` target description files, `.h`
//! headers, `.def` files) is tokenized with one shared lexer, mirroring the
//! paper's use of the Clang lexer for both feature selection and model input
//! construction.

use std::fmt;

/// A single lexical token.
///
/// Keywords are not distinguished from identifiers: the templatization and
/// feature-selection stages treat `if` and `Kind` uniformly as tokens, and the
/// parser matches keywords by spelling.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Token {
    /// An identifier or keyword, e.g. `fixup_arm_movt_hi16`, `switch`.
    Ident(String),
    /// An integer literal (decimal or hexadecimal source form), e.g. `0xff`.
    Int(i64),
    /// A string literal, stored without the surrounding quotes.
    Str(String),
    /// An operator or punctuation token, e.g. `::`, `==`, `{`.
    Punct(&'static str),
}

impl Token {
    /// Creates an identifier token.
    ///
    /// # Examples
    /// ```
    /// use vega_cpplite::Token;
    /// let t = Token::ident("Kind");
    /// assert_eq!(t.as_ident(), Some("Kind"));
    /// ```
    pub fn ident(s: impl Into<String>) -> Self {
        Token::Ident(s.into())
    }

    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the string-literal contents if this token is a string literal.
    pub fn as_str_lit(&self) -> Option<&str> {
        match self {
            Token::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the given punctuation.
    ///
    /// # Examples
    /// ```
    /// use vega_cpplite::Token;
    /// assert!(Token::Punct("::").is_punct("::"));
    /// ```
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, Token::Punct(q) if *q == p)
    }

    /// Returns `true` if this token is the identifier `kw` (used for keyword
    /// matching in the parser).
    pub fn is_ident(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }

    /// The canonical source spelling of the token.
    pub fn spelling(&self) -> String {
        match self {
            Token::Ident(s) => s.clone(),
            Token::Int(v) => v.to_string(),
            Token::Str(s) => format!("\"{s}\""),
            Token::Punct(p) => (*p).to_string(),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spelling())
    }
}

/// Renders a token slice as compact single-line source text.
///
/// Spacing is minimal but unambiguous: identifiers and literals are separated
/// by single spaces, and common punctuation binds tightly (`A::B`, `f(x)`).
///
/// # Examples
/// ```
/// use vega_cpplite::{lex, render_tokens};
/// let toks = lex("return ELF::R_ARM_MOVT_ABS;").unwrap();
/// assert_eq!(render_tokens(&toks), "return ELF::R_ARM_MOVT_ABS;");
/// ```
pub fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, tok) in tokens.iter().enumerate() {
        if i > 0 && needs_space(&tokens[i - 1], tok) {
            out.push(' ');
        }
        out.push_str(&tok.spelling());
    }
    out
}

fn is_wordy(t: &Token) -> bool {
    matches!(t, Token::Ident(_) | Token::Int(_) | Token::Str(_))
}

fn needs_space(prev: &Token, next: &Token) -> bool {
    // Tight binders never need surrounding space.
    const TIGHT: &[&str] = &["::", ".", "->", "(", "[", "++", "--"];
    const TIGHT_BEFORE: &[&str] = &[
        "::", ".", "->", "(", ")", "[", "]", ";", ",", ":", "++", "--",
    ];
    if let Token::Punct(p) = prev {
        if TIGHT.contains(p) {
            return false;
        }
    }
    if let Token::Punct(p) = next {
        if TIGHT_BEFORE.contains(p) {
            return false;
        }
    }
    if is_wordy(prev) && is_wordy(next) {
        return true;
    }
    // Default: separate operators from operands with spaces, except after
    // opening brackets.
    match (prev, next) {
        (Token::Punct(_), _) | (_, Token::Punct(_)) => true,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_predicates() {
        assert!(Token::ident("if").is_ident("if"));
        assert!(!Token::ident("if").is_ident("else"));
        assert!(Token::Punct("{").is_punct("{"));
        assert_eq!(Token::Int(42).spelling(), "42");
        assert_eq!(Token::Str("ARM".into()).spelling(), "\"ARM\"");
    }

    #[test]
    fn render_scoped_name_tightly() {
        let toks = vec![
            Token::ident("ARM"),
            Token::Punct("::"),
            Token::ident("fixup_arm_movt_hi16"),
        ];
        assert_eq!(render_tokens(&toks), "ARM::fixup_arm_movt_hi16");
    }

    #[test]
    fn render_call_tightly() {
        let toks = vec![
            Token::ident("Fixup"),
            Token::Punct("."),
            Token::ident("getTargetKind"),
            Token::Punct("("),
            Token::Punct(")"),
        ];
        assert_eq!(render_tokens(&toks), "Fixup.getTargetKind()");
    }
}
