//! Statement-level alignment built on the GumTree matcher.
//!
//! Consumers (templatization, statement-accuracy metrics) think in terms of
//! *statement preorder indices* within a function body, not arena node ids;
//! this module converts between the two.

use crate::gumtree::{gumtree_match, Mapping};
use crate::tree::{Label, Tree};
use vega_cpplite::{Function, Stmt};

/// Result of aligning two statement forests: pairs of statement preorder
/// indices (0-based, counting every nested statement in document order, the
/// same order as [`vega_cpplite::Function::iter_stmts`]).
#[derive(Debug, Clone, Default)]
pub struct StmtAlignment {
    /// Matched statement index pairs `(left, right)`, in left preorder.
    pub pairs: Vec<(usize, usize)>,
    /// Number of statements on the left.
    pub left_len: usize,
    /// Number of statements on the right.
    pub right_len: usize,
}

impl StmtAlignment {
    /// The right-side index aligned with left statement `i`, if any.
    pub fn right_of(&self, i: usize) -> Option<usize> {
        self.pairs.iter().find(|(l, _)| *l == i).map(|(_, r)| *r)
    }

    /// The left-side index aligned with right statement `j`, if any.
    pub fn left_of(&self, j: usize) -> Option<usize> {
        self.pairs.iter().find(|(_, r)| *r == j).map(|(l, _)| *l)
    }
}

/// Maps arena node ids to statement preorder indices (virtual nodes → None).
fn stmt_indices(t: &Tree) -> Vec<Option<usize>> {
    let mut out = vec![None; t.len()];
    let mut next = 0usize;
    for (id, n) in t.iter() {
        if matches!(n.label, Label::Stmt(_)) {
            out[id] = Some(next);
            next += 1;
        }
    }
    out
}

fn to_stmt_alignment(t1: &Tree, t2: &Tree, m: &Mapping) -> StmtAlignment {
    let ix1 = stmt_indices(t1);
    let ix2 = stmt_indices(t2);
    let mut pairs = Vec::new();
    for (a, b) in m.pairs() {
        if let (Some(i), Some(j)) = (ix1[a], ix2[b]) {
            pairs.push((i, j));
        }
    }
    pairs.sort_unstable();
    StmtAlignment {
        pairs,
        left_len: ix1.iter().flatten().count(),
        right_len: ix2.iter().flatten().count(),
    }
}

/// Aligns two statement forests.
///
/// # Examples
/// ```
/// use vega_cpplite::parse_stmts;
/// use vega_treediff::align_stmts;
/// let a = parse_stmts("x = 1; y = 2; return x;")?;
/// let b = parse_stmts("x = 1; return x;")?;
/// let al = align_stmts(&a, &b);
/// assert_eq!(al.pairs, vec![(0, 0), (2, 1)]);
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn align_stmts(a: &[Stmt], b: &[Stmt]) -> StmtAlignment {
    let t1 = Tree::build(a);
    let t2 = Tree::build(b);
    let m = gumtree_match(&t1, &t2);
    to_stmt_alignment(&t1, &t2, &m)
}

/// Aligns the bodies of two functions (statement index 0 is each body's first
/// statement; signatures are not part of the alignment).
pub fn align_functions(a: &Function, b: &Function) -> StmtAlignment {
    align_stmts(&a.body, &b.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::{parse_function, parse_stmts};

    #[test]
    fn alignment_indices_follow_preorder() {
        let a = parse_stmts(
            "k = f(); if (p) { switch (k) { case A: return 1; default: break; } } return 0;",
        )
        .unwrap();
        let b = parse_stmts(
            "k = f(); if (p) { switch (k) { case B: return 2; default: break; } } return 0;",
        )
        .unwrap();
        let al = align_stmts(&a, &b);
        // k=f(), if, switch, case, return 1, default, break, return 0.
        assert_eq!(al.left_len, 8);
        assert_eq!(al.right_len, 8);
        // Perfect structural alignment.
        assert_eq!(al.pairs, (0..8).map(|i| (i, i)).collect::<Vec<_>>());
    }

    #[test]
    fn extra_statement_on_left() {
        let a = parse_stmts("a = 1; extra = 9; return a;").unwrap();
        let b = parse_stmts("a = 1; return a;").unwrap();
        let al = align_stmts(&a, &b);
        assert_eq!(al.right_of(0), Some(0));
        assert_eq!(al.right_of(1), None);
        assert_eq!(al.right_of(2), Some(1));
        assert_eq!(al.left_of(1), Some(2));
    }

    #[test]
    fn function_alignment_ignores_signature() {
        let f1 = parse_function("int f(int x) { return x; }").unwrap();
        let f2 = parse_function("int g(int y) { return y; }").unwrap();
        let al = align_functions(&f1, &f2);
        // `return x` vs `return y` still aligns (same kind, low token sim but
        // recovery floor applies at the same child slot).
        assert_eq!(al.left_len, 1);
        assert_eq!(al.pairs.len(), 1);
    }
}
