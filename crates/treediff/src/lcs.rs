//! Longest-common-subsequence utilities.
//!
//! Used in three places: token-level LCS to split common code from
//! placeholders during templatization (§3.2.1), sequence alignment of sibling
//! statements during template merging, and the GumTree recovery phase.

/// Returns index pairs `(i, j)` of one longest common subsequence of `a` and
/// `b` under `eq`, in increasing order.
///
/// # Examples
/// ```
/// use vega_treediff::lcs_indices;
/// let a = ["case", "SV", ":"];
/// let b = ["case", "X", ":"];
/// let m = lcs_indices(&a, &b, |x, y| x == y);
/// assert_eq!(m, vec![(0, 0), (2, 2)]);
/// ```
pub fn lcs_indices<T, F>(a: &[T], b: &[T], eq: F) -> Vec<(usize, usize)>
where
    F: Fn(&T, &T) -> bool,
{
    let (n, m) = (a.len(), b.len());
    // dp[i][j] = LCS length of a[i..], b[j..]
    let mut dp = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if eq(&a[i], &b[j]) {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if eq(&a[i], &b[j]) && dp[i][j] == dp[i + 1][j + 1] + 1 {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// LCS-based similarity in `[0, 1]`: `2·|LCS| / (|a| + |b|)`.
///
/// Empty-vs-empty is defined as 1.
///
/// # Examples
/// ```
/// use vega_treediff::lcs_similarity;
/// assert_eq!(lcs_similarity(&[1, 2, 3], &[1, 2, 3], |a, b| a == b), 1.0);
/// assert_eq!(lcs_similarity::<i32, _>(&[], &[], |a, b| a == b), 1.0);
/// ```
pub fn lcs_similarity<T, F>(a: &[T], b: &[T], eq: F) -> f64
where
    F: Fn(&T, &T) -> bool,
{
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let l = lcs_indices(a, b, eq).len();
    2.0 * l as f64 / (a.len() + b.len()) as f64
}

/// Weighted global sequence alignment (Needleman–Wunsch without mismatch
/// substitutions): returns matched index pairs maximizing the total
/// similarity, where pairs scoring below `threshold` are never matched.
///
/// Unlike plain LCS this supports graded similarity — two statements that
/// differ only in one target-specific value still align.
///
/// # Examples
/// ```
/// use vega_treediff::align_sequences;
/// let a = ["ret 1", "ret 2"];
/// let b = ["ret 9", "ret 2"];
/// let sim = |x: &&str, y: &&str| if x == y { 1.0 } else if x[..3] == y[..3] { 0.6 } else { 0.0 };
/// let m = align_sequences(&a, &b, sim, 0.5);
/// assert_eq!(m, vec![(0, 0), (1, 1)]);
/// ```
pub fn align_sequences<T, F>(a: &[T], b: &[T], sim: F, threshold: f64) -> Vec<(usize, usize)>
where
    F: Fn(&T, &T) -> f64,
{
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0f64; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            let mut best = dp[i + 1][j].max(dp[i][j + 1]);
            let s = sim(&a[i], &b[j]);
            if s >= threshold {
                best = best.max(dp[i + 1][j + 1] + s);
            }
            dp[i][j] = best;
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        let s = sim(&a[i], &b[j]);
        if s >= threshold && (dp[i][j] - (dp[i + 1][j + 1] + s)).abs() < 1e-9 {
            out.push((i, j));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_basic() {
        let a = [1, 3, 5, 7];
        let b = [0, 3, 7, 9];
        assert_eq!(lcs_indices(&a, &b, |x, y| x == y), vec![(1, 1), (3, 2)]);
    }

    #[test]
    fn lcs_empty() {
        let a: [i32; 0] = [];
        assert!(lcs_indices(&a, &[1, 2], |x, y| x == y).is_empty());
    }

    #[test]
    fn similarity_partial() {
        let s = lcs_similarity(&[1, 2, 3, 4], &[1, 9, 3, 8], |a, b| a == b);
        assert!((s - 0.5).abs() < 1e-9);
    }

    #[test]
    fn alignment_prefers_high_similarity() {
        // a[0] weakly matches b[0] but strongly matches b[1]; the aligner
        // should pick the strong pairing even though it skips b[0].
        let a = [10];
        let b = [11, 10];
        let sim = |x: &i32, y: &i32| {
            if x == y {
                1.0
            } else if (x - y).abs() == 1 {
                0.4
            } else {
                0.0
            }
        };
        assert_eq!(align_sequences(&a, &b, sim, 0.3), vec![(0, 1)]);
    }

    #[test]
    fn alignment_respects_threshold() {
        let a = [1];
        let b = [2];
        let sim = |x: &i32, y: &i32| if x == y { 1.0 } else { 0.2 };
        assert!(align_sequences(&a, &b, sim, 0.5).is_empty());
    }

    #[test]
    fn alignment_is_monotone() {
        let a = [1, 2, 3];
        let b = [3, 2, 1];
        let m = align_sequences(&a, &b, |x, y| f64::from(u8::from(x == y)), 0.5);
        // Only one pair can be kept while preserving order.
        assert_eq!(m.len(), 1);
    }
}
