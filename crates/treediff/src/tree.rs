//! Arena representation of statement trees for matching.
//!
//! GumTree-style algorithms want cheap indexed access to parents, heights,
//! subtree hashes and descendant counts; this module flattens a
//! [`vega_cpplite::Stmt`] forest into such an arena. `else` branches become
//! virtual `Else` nodes so that branch structure participates in matching.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use vega_cpplite::{Stmt, StmtKind, Token};

/// Node label: the statement kind, or one of two virtual labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The virtual root that holds a statement forest.
    Root,
    /// A real statement of the given kind.
    Stmt(StmtKind),
    /// The virtual node holding an `if` statement's else-branch.
    Else,
}

/// One arena node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node label.
    pub label: Label,
    /// Head tokens of the statement (empty for virtual nodes).
    pub tokens: Vec<Token>,
    /// Children node ids, in order.
    pub children: Vec<usize>,
    /// Parent node id (`usize::MAX` for the root).
    pub parent: usize,
    /// Height of the subtree rooted here (leaf = 1).
    pub height: usize,
    /// Structural hash of the subtree (label + tokens + child hashes).
    pub hash: u64,
    /// Number of nodes in the subtree including this one.
    pub size: usize,
}

/// An arena-allocated statement tree.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    /// Builds a tree from a statement forest. Node 0 is the virtual root.
    ///
    /// # Examples
    /// ```
    /// use vega_cpplite::parse_stmts;
    /// use vega_treediff::Tree;
    /// let stmts = parse_stmts("if (a) { return 1; } return 0;")?;
    /// let t = Tree::build(&stmts);
    /// assert_eq!(t.len(), 4); // root + if + return + return
    /// # Ok::<(), vega_cpplite::ParseError>(())
    /// ```
    pub fn build(stmts: &[Stmt]) -> Self {
        let mut tree = Tree {
            nodes: vec![Node {
                label: Label::Root,
                tokens: Vec::new(),
                children: Vec::new(),
                parent: usize::MAX,
                height: 0,
                hash: 0,
                size: 0,
            }],
        };
        for s in stmts {
            let id = tree.add(s, 0);
            tree.nodes[0].children.push(id);
        }
        tree.finish(0);
        tree
    }

    fn add(&mut self, s: &Stmt, parent: usize) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            label: Label::Stmt(s.kind),
            tokens: s.head.clone(),
            children: Vec::new(),
            parent,
            height: 0,
            hash: 0,
            size: 0,
        });
        for c in &s.children {
            let cid = self.add(c, id);
            self.nodes[id].children.push(cid);
        }
        if !s.else_children.is_empty() {
            let eid = self.nodes.len();
            self.nodes.push(Node {
                label: Label::Else,
                tokens: Vec::new(),
                children: Vec::new(),
                parent: id,
                height: 0,
                hash: 0,
                size: 0,
            });
            for c in &s.else_children {
                let cid = self.add(c, eid);
                self.nodes[eid].children.push(cid);
            }
            self.nodes[id].children.push(eid);
        }
        id
    }

    /// Computes height/hash/size bottom-up.
    fn finish(&mut self, id: usize) {
        let children = self.nodes[id].children.clone();
        let mut h = DefaultHasher::new();
        self.nodes[id].label.hash(&mut h);
        for t in &self.nodes[id].tokens {
            t.hash(&mut h);
        }
        let mut height = 0;
        let mut size = 1;
        for c in children {
            self.finish(c);
            self.nodes[c].hash.hash(&mut h);
            height = height.max(self.nodes[c].height);
            size += self.nodes[c].size;
        }
        self.nodes[id].height = height + 1;
        self.nodes[id].hash = h.finish();
        self.nodes[id].size = size;
    }

    /// Number of nodes, including the virtual root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree holds only the virtual root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Access a node by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// Iterates over `(id, node)` pairs in creation (preorder-ish) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Node)> {
        self.nodes.iter().enumerate()
    }

    /// Ids of all descendants of `id` (excluding `id`), preorder.
    pub fn descendants(&self, id: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack: Vec<usize> = self.nodes[id].children.iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            out.push(n);
            for c in self.nodes[n].children.iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Returns `true` if the two subtrees are isomorphic (same hash; hash
    /// collisions are acceptable for matching heuristics).
    pub fn isomorphic(&self, a: usize, other: &Tree, b: usize) -> bool {
        self.nodes[a].hash == other.nodes[b].hash && self.nodes[a].size == other.nodes[b].size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::parse_stmts;

    #[test]
    fn builds_with_else_virtual_node() {
        let stmts = parse_stmts("if (a) { x = 1; } else { x = 2; }").unwrap();
        let t = Tree::build(&stmts);
        // root, if, x=1, Else, x=2
        assert_eq!(t.len(), 5);
        let else_id = t
            .iter()
            .find(|(_, n)| n.label == Label::Else)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(t.node(else_id).children.len(), 1);
    }

    #[test]
    fn hashes_distinguish_tokens() {
        let a = Tree::build(&parse_stmts("return 1;").unwrap());
        let b = Tree::build(&parse_stmts("return 2;").unwrap());
        let c = Tree::build(&parse_stmts("return 1;").unwrap());
        assert!(!a.isomorphic(1, &b, 1));
        assert!(a.isomorphic(1, &c, 1));
    }

    #[test]
    fn sizes_and_heights() {
        let t =
            Tree::build(&parse_stmts("switch (k) { case 1: return 1; default: break; }").unwrap());
        let root = t.node(0);
        assert_eq!(root.size, t.len());
        let sw = t.node(root.children[0]);
        assert_eq!(sw.height, 3);
        assert_eq!(t.descendants(root.children[0]).len(), sw.size - 1);
    }
}
