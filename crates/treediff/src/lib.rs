//! `vega-treediff`: GumTree-style tree matching and statement alignment.
//!
//! The paper aligns statements across the target-specific implementations of
//! an interface function using GumTree (Falleri et al., ASE 2014) and
//! distinguishes common code from variant code with an LCS over matched
//! statements (§3.1, §3.2.1). This crate provides those algorithms over the
//! [`vega_cpplite::Stmt`] AST:
//!
//! * [`Tree`] — arena form with subtree hashes/heights/sizes,
//! * [`gumtree_match`] — two-phase matcher (top-down isomorphic, bottom-up
//!   dice, LCS recovery) returning a [`Mapping`],
//! * [`align_stmts`] / [`align_functions`] — statement-index alignment,
//! * [`lcs_indices`] / [`lcs_similarity`] / [`align_sequences`] — sequence
//!   utilities reused by templatization.
//!
//! # Examples
//! ```
//! use vega_cpplite::parse_stmts;
//! use vega_treediff::align_stmts;
//! let arm = parse_stmts("k = F.getKind(); switch (k) { case ARM::movt: return 1; }")?;
//! let mips = parse_stmts("k = F.getKind(); switch (k) { case Mips::hi16: return 2; }")?;
//! let al = align_stmts(&arm, &mips);
//! assert_eq!(al.pairs.len(), 4); // every statement aligns despite value differences
//! # Ok::<(), vega_cpplite::ParseError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod align;
mod gumtree;
mod lcs;
mod tree;

pub use align::{align_functions, align_stmts, StmtAlignment};
pub use gumtree::{gumtree_match, Mapping};
pub use lcs::{align_sequences, lcs_indices, lcs_similarity};
pub use tree::{Label, Node, Tree};
