//! GumTree-style tree matching (Falleri et al., ASE 2014), as used by the
//! paper to align statements across target-specific implementations of the
//! same interface function.
//!
//! The implementation follows the published two-phase structure:
//! a greedy *top-down* phase matching isomorphic subtrees (largest first),
//! then a *bottom-up* phase matching containers by the dice coefficient of
//! their matched descendants, followed by an LCS-based recovery pass over the
//! children of matched containers.

use crate::lcs::{align_sequences, lcs_similarity};
use crate::tree::Tree;
use std::collections::HashMap;

/// A one-to-one mapping between the nodes of two trees.
#[derive(Debug, Clone)]
pub struct Mapping {
    s2d: Vec<Option<usize>>,
    d2s: Vec<Option<usize>>,
}

impl Mapping {
    fn new(n1: usize, n2: usize) -> Self {
        Mapping {
            s2d: vec![None; n1],
            d2s: vec![None; n2],
        }
    }

    fn link(&mut self, a: usize, b: usize) {
        if self.s2d[a].is_none() && self.d2s[b].is_none() {
            self.s2d[a] = Some(b);
            self.d2s[b] = Some(a);
        }
    }

    /// The destination node matched to source node `a`, if any.
    pub fn dst_of(&self, a: usize) -> Option<usize> {
        self.s2d.get(a).copied().flatten()
    }

    /// The source node matched to destination node `b`, if any.
    pub fn src_of(&self, b: usize) -> Option<usize> {
        self.d2s.get(b).copied().flatten()
    }

    /// All matched pairs `(src, dst)` in source preorder.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.s2d
            .iter()
            .enumerate()
            .filter_map(|(a, b)| b.map(|b| (a, b)))
            .collect()
    }

    /// Number of matched pairs.
    pub fn len(&self) -> usize {
        self.s2d.iter().filter(|x| x.is_some()).count()
    }

    /// Returns `true` if no nodes are matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Dice-coefficient threshold for the bottom-up phase.
const DICE_THRESHOLD: f64 = 0.2;
/// Similarity threshold for the recovery pass over container children.
const RECOVERY_THRESHOLD: f64 = 0.35;

/// Matches two trees, returning the node mapping.
///
/// # Examples
/// ```
/// use vega_cpplite::parse_stmts;
/// use vega_treediff::{gumtree_match, Tree};
/// let a = Tree::build(&parse_stmts("x = 1; return x;")?);
/// let b = Tree::build(&parse_stmts("x = 1; return x;")?);
/// let m = gumtree_match(&a, &b);
/// assert_eq!(m.len(), a.len()); // fully isomorphic
/// # Ok::<(), vega_cpplite::ParseError>(())
/// ```
pub fn gumtree_match(t1: &Tree, t2: &Tree) -> Mapping {
    let mut m = Mapping::new(t1.len(), t2.len());
    m.link(0, 0);
    top_down(t1, t2, &mut m);
    bottom_up(t1, t2, &mut m);
    recovery(t1, t2, &mut m);
    m
}

/// Greedily matches isomorphic subtrees, tallest first. Among equal-hash
/// candidates, the one whose parent is already matched to our parent wins;
/// ties fall back to preorder.
fn top_down(t1: &Tree, t2: &Tree, m: &mut Mapping) {
    // Index t2 subtrees by hash.
    let mut by_hash: HashMap<u64, Vec<usize>> = HashMap::new();
    for (id, n) in t2.iter().skip(1) {
        by_hash.entry(n.hash).or_default().push(id);
    }
    // Process t1 nodes in height-descending order (stable on preorder).
    let mut order: Vec<usize> = (1..t1.len()).collect();
    order.sort_by_key(|&id| std::cmp::Reverse(t1.node(id).height));
    for a in order {
        if m.dst_of(a).is_some() {
            continue;
        }
        let Some(cands) = by_hash.get(&t1.node(a).hash) else {
            continue;
        };
        let parent_a = t1.node(a).parent;
        let want_parent = m.dst_of(parent_a);
        let pick = cands
            .iter()
            .copied()
            .filter(|&b| m.src_of(b).is_none() && t1.isomorphic(a, t2, b))
            .max_by_key(|&b| i32::from(want_parent == Some(t2.node(b).parent)));
        if let Some(b) = pick {
            link_subtrees(t1, a, t2, b, m);
        }
    }
}

/// Links two isomorphic subtrees node-by-node (same shape by construction).
fn link_subtrees(t1: &Tree, a: usize, t2: &Tree, b: usize, m: &mut Mapping) {
    m.link(a, b);
    let ca = &t1.node(a).children;
    let cb = &t2.node(b).children;
    debug_assert_eq!(ca.len(), cb.len());
    for (&x, &y) in ca.iter().zip(cb.iter()) {
        link_subtrees(t1, x, t2, y, m);
    }
}

fn dice(t1: &Tree, a: usize, t2: &Tree, b: usize, m: &Mapping) -> f64 {
    let d1 = t1.descendants(a);
    let d2: std::collections::HashSet<usize> = t2.descendants(b).into_iter().collect();
    if d1.is_empty() && d2.is_empty() {
        return 0.0;
    }
    let common = d1
        .iter()
        .filter(|&&x| m.dst_of(x).is_some_and(|y| d2.contains(&y)))
        .count();
    2.0 * common as f64 / (d1.len() + d2.len()) as f64
}

/// Matches unmatched containers whose descendants largely correspond.
fn bottom_up(t1: &Tree, t2: &Tree, m: &mut Mapping) {
    // Postorder ≈ increasing height then preorder; good enough for arenas.
    let mut order: Vec<usize> = (1..t1.len()).collect();
    order.sort_by_key(|&id| t1.node(id).height);
    let unmatched2: Vec<usize> = (1..t2.len()).collect();
    for a in order {
        if m.dst_of(a).is_some() || t1.node(a).children.is_empty() {
            continue;
        }
        let label = t1.node(a).label;
        let best = unmatched2
            .iter()
            .copied()
            .filter(|&b| m.src_of(b).is_none() && t2.node(b).label == label)
            .map(|b| (b, dice(t1, a, t2, b, m)))
            .filter(|&(_, d)| d >= DICE_THRESHOLD)
            .max_by(|x, y| x.1.partial_cmp(&y.1).unwrap());
        if let Some((b, _)) = best {
            m.link(a, b);
        }
    }
}

/// Similarity between two nodes for the recovery pass: same label required,
/// then token-sequence LCS similarity (with a floor so empty-token pairs of
/// equal label still align).
fn node_sim(t1: &Tree, a: usize, t2: &Tree, b: usize) -> f64 {
    let (n1, n2) = (t1.node(a), t2.node(b));
    if n1.label != n2.label {
        return 0.0;
    }
    0.4 + 0.6 * lcs_similarity(&n1.tokens, &n2.tokens, |x, y| x == y)
}

/// For every matched pair, aligns unmatched children by similarity and links
/// them; repeats until a fixed point (new links can enable deeper ones).
fn recovery(t1: &Tree, t2: &Tree, m: &mut Mapping) {
    for _ in 0..t1.node(0).height + 1 {
        let mut progressed = false;
        for (a, b) in m.pairs() {
            let ua: Vec<usize> = t1
                .node(a)
                .children
                .iter()
                .copied()
                .filter(|&c| m.dst_of(c).is_none())
                .collect();
            let ub: Vec<usize> = t2
                .node(b)
                .children
                .iter()
                .copied()
                .filter(|&c| m.src_of(c).is_none())
                .collect();
            if ua.is_empty() || ub.is_empty() {
                continue;
            }
            let pairs = align_sequences(
                &ua,
                &ub,
                |&x, &y| node_sim(t1, x, t2, y),
                RECOVERY_THRESHOLD,
            );
            for (i, j) in pairs {
                m.link(ua[i], ub[j]);
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::parse_stmts;

    fn trees(a: &str, b: &str) -> (Tree, Tree) {
        (
            Tree::build(&parse_stmts(a).unwrap()),
            Tree::build(&parse_stmts(b).unwrap()),
        )
    }

    #[test]
    fn identical_trees_fully_match() {
        let src = "unsigned Kind = F.getKind(); if (P) { switch (Kind) { case A: return 1; default: break; } } return 0;";
        let (a, b) = trees(src, src);
        let m = gumtree_match(&a, &b);
        assert_eq!(m.len(), a.len());
    }

    #[test]
    fn value_changes_still_align() {
        // Same structure, one case label differs (ARM vs MIPS flavor).
        let (a, b) = trees(
            "k = F.getKind(); switch (k) { case ARM::fixup_arm_movt_hi16: return ELF::R_ARM_MOVT_PREL; default: break; }",
            "k = F.getKind(); switch (k) { case Mips::fixup_MIPS_HI16: return ELF::R_MIPS_HI16; default: break; }",
        );
        let m = gumtree_match(&a, &b);
        // Everything aligns: root, k=..., switch, case, return, default, break.
        assert_eq!(m.len(), a.len());
    }

    #[test]
    fn missing_statement_leaves_gap() {
        let (a, b) = trees("a = 1; b = 2; return a;", "a = 1; return a;");
        let m = gumtree_match(&a, &b);
        assert_eq!(m.len(), 3); // root, a=1, return a
                                // `b = 2;` (node 2 in a) has no match.
        assert!(m.dst_of(2).is_none());
    }

    #[test]
    fn reordered_identical_leaves_match_uniquely() {
        let (a, b) = trees("x = 1; y = 2;", "y = 2; x = 1;");
        let m = gumtree_match(&a, &b);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn nested_if_else_alignment() {
        let (a, b) = trees(
            "if (P) { switch (K) { case A: return 1; } } else { return Z; }",
            "if (P) { switch (K) { case B: return 2; } } else { return W; }",
        );
        let m = gumtree_match(&a, &b);
        // All nodes align pairwise despite differing leaves.
        assert_eq!(m.len(), a.len());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn mapping_is_one_to_one() {
        let (a, b) = trees("x = 1; x = 1; x = 1;", "x = 1;");
        let m = gumtree_match(&a, &b);
        let mut seen = std::collections::HashSet::new();
        for (_, d) in m.pairs() {
            assert!(seen.insert(d), "destination matched twice");
        }
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use vega_cpplite::parse_stmts;

    /// A statement inserted mid-switch must not derail the case alignment.
    #[test]
    fn insertion_in_switch_preserves_other_cases() {
        let a = Tree::build(
            &parse_stmts("switch (k) { case A: return 1; case B: return 2; case C: return 3; }")
                .unwrap(),
        );
        let b = Tree::build(
            &parse_stmts(
                "switch (k) { case A: return 1; case X: return 9; case B: return 2; case C: return 3; }",
            )
            .unwrap(),
        );
        let m = gumtree_match(&a, &b);
        // All of a's nodes match (b has two extra).
        assert_eq!(m.len(), a.len());
    }

    /// Matching is symmetric in size: |M| ≤ min(|T1|, |T2|).
    #[test]
    fn mapping_size_bound() {
        let a = Tree::build(&parse_stmts("x = 1; y = 2; z = 3;").unwrap());
        let b = Tree::build(&parse_stmts("x = 1;").unwrap());
        let m = gumtree_match(&a, &b);
        assert!(m.len() <= a.len().min(b.len()));
    }
}
