//! Property tests for the LCS kernel: `lcs_indices` is checked against a
//! naive O(n·m) length-only reference on seeded random inputs, and its
//! output is validated structurally (a genuine common subsequence in
//! strictly increasing position order).

use vega_treediff::{lcs_indices, lcs_similarity};

/// Deterministic splitmix64 so the "random" cases are reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Textbook forward DP computing only the LCS *length*.
fn naive_lcs_len(a: &[u8], b: &[u8]) -> usize {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            dp[i][j] = if a[i - 1] == b[j - 1] {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m]
}

/// The matched pairs must be strictly increasing in both coordinates and
/// must pair equal elements — i.e. describe an actual common subsequence.
fn assert_valid_subsequence(a: &[u8], b: &[u8], pairs: &[(usize, usize)]) {
    for w in pairs.windows(2) {
        assert!(
            w[0].0 < w[1].0,
            "a-indices must strictly increase: {pairs:?}"
        );
        assert!(
            w[0].1 < w[1].1,
            "b-indices must strictly increase: {pairs:?}"
        );
    }
    for &(i, j) in pairs {
        assert_eq!(a[i], b[j], "pair ({i},{j}) must match equal elements");
    }
}

#[test]
fn lcs_matches_naive_reference_on_random_inputs() {
    let mut rng = Rng(0x5EED);
    for case in 0..300 {
        // Small alphabets force long, ambiguous common subsequences.
        let alphabet = 2 + rng.below(5) as u8;
        let n = rng.below(33) as usize;
        let m = rng.below(33) as usize;
        let a: Vec<u8> = (0..n).map(|_| (rng.below(alphabet as u64)) as u8).collect();
        let b: Vec<u8> = (0..m).map(|_| (rng.below(alphabet as u64)) as u8).collect();

        let pairs = lcs_indices(&a, &b, |x, y| x == y);
        assert_valid_subsequence(&a, &b, &pairs);
        assert_eq!(
            pairs.len(),
            naive_lcs_len(&a, &b),
            "case {case}: lcs_indices length disagrees with the naive DP\n  a={a:?}\n  b={b:?}"
        );

        let sim = lcs_similarity(&a, &b, |x, y| x == y);
        if n + m == 0 {
            assert_eq!(sim, 1.0, "empty-vs-empty similarity is defined as 1");
        } else {
            let expect = 2.0 * pairs.len() as f64 / (n + m) as f64;
            assert!(
                (sim - expect).abs() < 1e-12,
                "case {case}: similarity formula"
            );
            assert!((0.0..=1.0).contains(&sim));
        }
    }
}

#[test]
fn lcs_known_edges() {
    // Identical sequences: everything matches, in order.
    let a = [7u8, 7, 7, 7];
    let pairs = lcs_indices(&a, &a, |x, y| x == y);
    assert_eq!(pairs, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);

    // Disjoint alphabets: nothing matches.
    assert!(lcs_indices(&[1u8, 2, 3], &[4, 5, 6], |x, y| x == y).is_empty());
    assert_eq!(lcs_similarity(&[1u8, 2, 3], &[4, 5, 6], |x, y| x == y), 0.0);

    // One side empty.
    assert!(lcs_indices::<u8, _>(&[], &[1, 2], |x, y| x == y).is_empty());

    // Reversal: LCS of s and reverse(s) on distinct elements has length 1.
    let s = [1u8, 2, 3, 4, 5];
    let r = [5u8, 4, 3, 2, 1];
    assert_eq!(lcs_indices(&s, &r, |x, y| x == y).len(), 1);
    assert_eq!(naive_lcs_len(&s, &r), 1);
}
