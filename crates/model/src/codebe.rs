//! CodeBE: the pre-trained sequence model behind VEGA (paper §3.3).
//!
//! The paper fine-tunes UniXcoder; we (1) *pre-train* a from-scratch
//! transformer with a denoising objective over corpus code — the analog of
//! starting from a code-pretrained checkpoint — and (2) *fine-tune* it on
//! `(feature vector → statement)` pairs. A GRU variant and a no-pretraining
//! variant support the paper's model ablation.

use crate::backend::{BackendHandle, DecodeAbort};
use crate::vocab::{Special, Vocab};
use std::sync::Arc;
use std::time::Instant;
use vega_nn::{BatchDecode, GruConfig, GruSeq2Seq, Seq2Seq, Transformer, TransformerConfig};
use vega_obs::json::{Json, JsonError};
use vega_obs::{CurvePoint, TrainingCurve};

/// Which architecture backs CodeBE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelChoice {
    /// Encoder–decoder transformer (the CodeBE default).
    Transformer,
    /// GRU seq2seq — the "RNN-based VEGA" ablation arm.
    Gru,
}

#[derive(Debug, Clone)]
enum ModelKind {
    Transformer(Transformer),
    Gru(GruSeq2Seq),
}

impl ModelKind {
    fn as_seq2seq(&mut self) -> &mut dyn Seq2Seq {
        match self {
            ModelKind::Transformer(t) => t,
            ModelKind::Gru(g) => g,
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Denoising pre-training steps (0 = no pre-training, the ablation arm).
    pub pretrain_steps: usize,
    /// Fine-tuning epochs over the paired data.
    pub finetune_epochs: usize,
    /// Learning rate (the paper uses 6e-5 at 125M parameters; this scale
    /// wants more).
    pub lr: f32,
    /// Shuffling/masking seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            pretrain_steps: 600,
            finetune_epochs: 36,
            lr: 2e-3,
            seed: 1,
        }
    }
}

impl TrainConfig {
    /// Tiny settings for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            pretrain_steps: 0,
            finetune_epochs: 20,
            lr: 3e-3,
            seed: 1,
        }
    }
}

/// The CodeBE model: vocabulary plus sequence model.
#[derive(Debug, Clone)]
pub struct CodeBe {
    /// The shared subword vocabulary.
    pub vocab: Vocab,
    model: ModelKind,
    /// Per-epoch telemetry from the most recent [`CodeBe::finetune`] call
    /// (not serialized).
    curve: TrainingCurve,
    /// Optional decode backend: when set, [`CodeBe::try_generate`] and
    /// [`CodeBe::try_sequence_logprob`] route through it instead of running
    /// the in-process incremental path (not serialized; clones share it).
    backend: Option<BackendHandle>,
    /// Optional speculative-decoding draft: a cheap GRU that proposes tokens
    /// the transformer verifies in multi-position passes
    /// ([`vega_nn::speculative_greedy`]). `None` or depth 0 means plain
    /// greedy. Not serialized; clones share the draft weights via the `Arc`.
    draft: Option<Arc<GruSeq2Seq>>,
    /// Speculation depth k (tokens drafted per verifier pass).
    spec_depth: usize,
}

/// Deterministic shuffling/masking RNG (splitmix64, private copy).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
    fn chance(&mut self, p: f64) -> bool {
        (self.next() as f64 / u64::MAX as f64) < p
    }
}

impl CodeBe {
    /// Creates a transformer-backed CodeBE with the given width scale.
    pub fn transformer(
        vocab: Vocab,
        cfg_for_vocab: impl FnOnce(usize) -> TransformerConfig,
    ) -> Self {
        let cfg = cfg_for_vocab(vocab.len());
        CodeBe {
            vocab,
            model: ModelKind::Transformer(Transformer::new(cfg)),
            curve: TrainingCurve::new(),
            backend: None,
            draft: None,
            spec_depth: 0,
        }
    }

    /// Creates a GRU-backed CodeBE (ablation).
    pub fn gru(vocab: Vocab, cfg_for_vocab: impl FnOnce(usize) -> GruConfig) -> Self {
        let cfg = cfg_for_vocab(vocab.len());
        CodeBe {
            vocab,
            model: ModelKind::Gru(GruSeq2Seq::new(cfg)),
            curve: TrainingCurve::new(),
            backend: None,
            draft: None,
            spec_depth: 0,
        }
    }

    /// Per-epoch loss/lr/throughput telemetry recorded by the most recent
    /// [`CodeBe::finetune`] call (empty before the first call).
    pub fn training_curve(&self) -> &TrainingCurve {
        &self.curve
    }

    /// The maximum input sequence length the underlying architecture was
    /// sized for — checkpoints trained at one scale must not silently serve
    /// longer inputs, so loaders validate against this.
    pub fn max_len(&self) -> usize {
        match &self.model {
            ModelKind::Transformer(t) => t.cfg.max_len,
            ModelKind::Gru(g) => g.cfg.max_len,
        }
    }

    /// Short architecture name (`"transformer"` or `"gru"`), for checkpoint
    /// metadata and load-time diagnostics.
    pub fn arch_name(&self) -> &'static str {
        match &self.model {
            ModelKind::Transformer(_) => "transformer",
            ModelKind::Gru(_) => "gru",
        }
    }

    /// Denoising pre-training: mask ~30% of pieces, reconstruct the original.
    /// Returns the running loss at the end.
    pub fn pretrain(&mut self, sequences: &[Vec<usize>], steps: usize, lr: f32, seed: u64) -> f32 {
        if sequences.is_empty() || steps == 0 {
            return 0.0;
        }
        let span = vega_obs::global().span("pretrain");
        let mask_id = self.vocab.special(Special::Mask);
        let bos = self.vocab.special(Special::Bos);
        let eos = self.vocab.special(Special::Eos);
        let mut rng = Rng(seed ^ 0xDEC0DE);
        let mut running = f32::NAN;
        // Sample the running loss every CURVE_EVERY steps as pseudo-epochs.
        const CURVE_EVERY: usize = 20;
        let t0 = std::time::Instant::now();
        let mut last_sample = 0.0f64;
        for step in 0..steps {
            let seq = &sequences[rng.below(sequences.len())];
            if seq.is_empty() {
                continue;
            }
            let corrupted: Vec<usize> = seq
                .iter()
                .map(|&id| if rng.chance(0.3) { mask_id } else { id })
                .collect();
            let loss = self
                .model
                .as_seq2seq()
                .train_example(&corrupted, seq, bos, eos);
            self.model.as_seq2seq().step(lr);
            running = if running.is_nan() {
                loss
            } else {
                0.95 * running + 0.05 * loss
            };
            if (step + 1) % CURVE_EVERY == 0 {
                let now = t0.elapsed().as_secs_f64();
                vega_obs::global().curve_point(
                    "pretrain",
                    CurvePoint {
                        epoch: step / CURVE_EVERY,
                        loss: running,
                        lr,
                        examples: CURVE_EVERY,
                        seconds: now - last_sample,
                    },
                );
                last_sample = now;
            }
        }
        let _ = span.finish();
        running
    }

    /// Fine-tunes on `(input, output)` id sequences for the configured number
    /// of epochs, shuffling each epoch. Returns the mean loss of the final
    /// epoch.
    ///
    /// Micro-batches are data-parallel: each micro-batch is split into
    /// gradient shards of a fixed size, every shard trains on a cloned
    /// replica (possibly on a `vega-par` worker), and the shard gradients
    /// are merged in shard-index order before the single Adam step. Because
    /// the shard structure and merge order never depend on the thread count,
    /// loss curves and final weights are bit-identical for any
    /// `VEGA_THREADS`, including 1.
    pub fn finetune(&mut self, pairs: &[(Vec<usize>, Vec<usize>)], cfg: &TrainConfig) -> f32 {
        if pairs.is_empty() {
            return 0.0;
        }
        let span = vega_obs::global().span("finetune");
        let bos = self.vocab.special(Special::Bos);
        let eos = self.vocab.special(Special::Eos);
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        let mut rng = Rng(cfg.seed ^ 0xF17E);
        let mut last_epoch_loss = 0.0;
        self.curve = TrainingCurve::new();
        const MICRO_BATCH: usize = 8;
        /// Examples per gradient shard — a constant so the f32 reduction
        /// tree is fixed by the data, not by the machine.
        const GRAD_SHARD: usize = 2;
        for epoch in 0..cfg.finetune_epochs {
            let epoch_start = std::time::Instant::now();
            // Inverse-decay schedule smooths late epochs.
            let lr = cfg.lr / (1.0 + 0.04 * epoch as f32);
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.below(i + 1);
                order.swap(i, j);
            }
            let mut sum = 0.0f32;
            for batch in order.chunks(MICRO_BATCH) {
                let shards: Vec<&[usize]> = batch.chunks(GRAD_SHARD).collect();
                let model_ref = &self.model;
                let sharded: Vec<(f32, Vec<vega_nn::Tensor>)> =
                    vega_par::par_map_slice(&shards, |_, shard| {
                        let mut replica = model_ref.clone();
                        let s2s = replica.as_seq2seq();
                        let mut loss = 0.0f32;
                        for &i in shard.iter() {
                            let (src, tgt) = &pairs[i];
                            loss += s2s.train_example(src, tgt, bos, eos);
                        }
                        (loss, s2s.take_grads())
                    });
                // Merge in shard order, then one Adam step per micro-batch.
                for (loss, grads) in &sharded {
                    sum += loss;
                    self.model.as_seq2seq().merge_grads(grads);
                }
                self.model.as_seq2seq().step(lr);
            }
            last_epoch_loss = sum / pairs.len() as f32;
            let point = CurvePoint {
                epoch,
                loss: last_epoch_loss,
                lr,
                examples: pairs.len(),
                seconds: epoch_start.elapsed().as_secs_f64(),
            };
            self.curve.push(point);
            vega_obs::global().curve_point("finetune", point);
        }
        let _ = span.finish();
        last_epoch_loss
    }

    /// Installs (or with `None`, removes) a decode backend. See the
    /// [`crate::backend`] module docs: backends must be bit-identical to the
    /// local path; clones made after this call share the handle.
    pub fn set_decode_backend(&mut self, backend: Option<BackendHandle>) {
        self.backend = backend;
    }

    /// Whether a decode backend is installed.
    pub fn has_decode_backend(&self) -> bool {
        self.backend.is_some()
    }

    /// A clone of the installed decode backend handle, if any. Callers that
    /// want several decode calls in flight at once (the serve-side `score`
    /// op fanning candidates into a batching broker) clone the handle and
    /// call it from their own threads instead of serializing on `&mut self`.
    pub fn backend_handle(&self) -> Option<BackendHandle> {
        self.backend.clone()
    }

    /// Installs (or with `None`, removes) a speculative-decoding draft model
    /// with depth `k` tokens per verifier pass. The draft must share this
    /// model's vocabulary (same subword table) — drafts are only consulted
    /// for *proposals*, so a mismatched draft degrades throughput, never
    /// correctness. Speculation applies to [`CodeBe::try_generate`] on a
    /// transformer model without a decode backend; every other combination
    /// degrades gracefully to plain greedy with a logged warning (mirroring
    /// `VEGA_KERNEL=avx2` on a non-AVX2 CPU).
    pub fn set_speculative(&mut self, draft: Option<Arc<GruSeq2Seq>>, k: usize) {
        self.draft = draft;
        self.spec_depth = k;
    }

    /// The configured speculation depth, or 0 when speculation is off
    /// (no draft installed or depth 0).
    pub fn speculation_depth(&self) -> usize {
        if self.draft.is_some() {
            self.spec_depth
        } else {
            0
        }
    }

    /// The underlying GRU when this CodeBE is GRU-backed — how a serve
    /// process turns a small GRU checkpoint into a speculation draft for a
    /// transformer model.
    pub fn gru_model(&self) -> Option<&GruSeq2Seq> {
        match &self.model {
            ModelKind::Gru(g) => Some(g),
            ModelKind::Transformer(_) => None,
        }
    }

    /// Consumes this CodeBE and returns its GRU, if GRU-backed.
    pub fn into_gru(self) -> Option<GruSeq2Seq> {
        match self.model {
            ModelKind::Gru(g) => Some(g),
            ModelKind::Transformer(_) => None,
        }
    }

    /// Greedy generation for an input id sequence.
    ///
    /// # Panics
    /// Panics if an installed decode backend aborts; use
    /// [`CodeBe::try_generate`] to observe deadline expiry.
    pub fn generate(&mut self, input: &[usize], max_len: usize) -> Vec<usize> {
        self.try_generate(input, max_len, None)
            .expect("decode backend aborted a deadline-free generate")
    }

    /// Greedy generation with an optional deadline, honored at token
    /// boundaries when a decode backend is installed. Without a backend the
    /// in-process path runs to completion and never aborts (generation of a
    /// single function is short; deadlines are enforced by the callers that
    /// install backends).
    ///
    /// # Errors
    /// Returns [`DecodeAbort::Expired`] when the backend stopped at the
    /// deadline, [`DecodeAbort::Broken`] when the backend itself failed.
    pub fn try_generate(
        &mut self,
        input: &[usize],
        max_len: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<usize>, DecodeAbort> {
        if let Some(b) = &self.backend {
            return b.backend().generate(input, max_len, deadline);
        }
        let bos = self.vocab.special(Special::Bos);
        let eos = self.vocab.special(Special::Eos);
        if let Some(draft) = &self.draft {
            if self.spec_depth > 0 {
                match &self.model {
                    ModelKind::Transformer(t) => {
                        // Exact by construction: the stream is bit-identical
                        // to the plain greedy branch below.
                        let (out, _report) = vega_nn::speculative_greedy(
                            t,
                            draft,
                            input,
                            bos,
                            eos,
                            max_len,
                            self.spec_depth,
                        );
                        return Ok(out);
                    }
                    ModelKind::Gru(_) => {
                        // A GRU drafting for a GRU verifier has nothing to
                        // amortize (no multi-position KV prefill); warn once
                        // and serve plain greedy.
                        static WARNED: std::sync::Once = std::sync::Once::new();
                        WARNED.call_once(|| {
                            vega_obs::global().event(
                                vega_obs::Level::Warn,
                                "speculative decoding requires a transformer verifier; \
                                 GRU model falls back to plain greedy",
                            );
                        });
                    }
                }
            }
        }
        Ok(self.model.as_seq2seq().greedy(input, bos, eos, max_len))
    }

    /// Log-probability of the model emitting `output` for `input` —
    /// the scoring primitive behind template-guided decoding.
    ///
    /// # Panics
    /// Panics if an installed decode backend aborts; use
    /// [`CodeBe::try_sequence_logprob`] to observe deadline expiry.
    pub fn sequence_logprob(&mut self, input: &[usize], output: &[usize]) -> f32 {
        self.try_sequence_logprob(input, output, None)
            .expect("decode backend aborted a deadline-free logprob")
    }

    /// Forced-sequence log-probability with an optional deadline; deadline
    /// semantics match [`CodeBe::try_generate`].
    ///
    /// # Errors
    /// Returns [`DecodeAbort`] only when a backend is installed and aborts.
    pub fn try_sequence_logprob(
        &mut self,
        input: &[usize],
        output: &[usize],
        deadline: Option<Instant>,
    ) -> Result<f32, DecodeAbort> {
        if let Some(b) = &self.backend {
            return b.backend().sequence_logprob(input, output, deadline);
        }
        let bos = self.vocab.special(Special::Bos);
        let eos = self.vocab.special(Special::Eos);
        Ok(self
            .model
            .as_seq2seq()
            .sequence_logprob(input, output, bos, eos))
    }

    /// Starts a batch of `capacity` incremental decode slots over this
    /// model's weights (see [`vega_nn::BatchDecode`]): per-slot logits are
    /// bit-identical to the single-session decode path at any batch
    /// composition. The batch borrows the weights, so the model is
    /// immutable while it lives.
    pub fn begin_batch_decode(&self, capacity: usize) -> Box<dyn BatchDecode + '_> {
        match &self.model {
            ModelKind::Transformer(t) => Box::new(t.begin_batch_decode(capacity)),
            ModelKind::Gru(g) => Box::new(g.begin_batch_decode(capacity)),
        }
    }

    /// Exact-match rate over a verification set (the paper reports 99.03%).
    pub fn exact_match(&mut self, pairs: &[(Vec<usize>, Vec<usize>)], max_len: usize) -> f64 {
        if pairs.is_empty() {
            return 1.0;
        }
        let hits = pairs
            .iter()
            .filter(|(src, tgt)| &self.generate(src, max_len) == tgt)
            .count();
        hits as f64 / pairs.len() as f64
    }

    /// Serializes vocabulary and weights to JSON. The model is externally
    /// tagged by architecture: `{"vocab":{...},"model":{"Transformer":{...}}}`.
    pub fn save_json(&self) -> String {
        let model = match &self.model {
            ModelKind::Transformer(t) => Json::obj([("Transformer", t.to_json_value())]),
            ModelKind::Gru(g) => Json::obj([("Gru", g.to_json_value())]),
        };
        Json::obj([("vocab", self.vocab.to_json_value()), ("model", model)]).render()
    }

    /// Scalars held in owned (heap) storage rather than borrowed from a
    /// shared checkpoint mapping. Zero right after a v2 binary load; any
    /// weight mutation (training) copies the touched tensors out.
    pub fn owned_scalars(&self) -> usize {
        match &self.model {
            ModelKind::Transformer(t) => t.owned_scalars(),
            ModelKind::Gru(g) => g.owned_scalars(),
        }
    }

    /// Renders the `vega-ckpt/v2` header JSON: same shape as
    /// [`CodeBe::save_json`], but every tensor is an `{rows, cols, off}`
    /// descriptor whose data went into `table`.
    pub(crate) fn header_json_tabled(&self, table: &mut vega_nn::TensorTable) -> String {
        let model = match &self.model {
            ModelKind::Transformer(t) => {
                Json::obj([("Transformer", t.to_json_value_tabled(table))])
            }
            ModelKind::Gru(g) => Json::obj([("Gru", g.to_json_value_tabled(table))]),
        };
        Json::obj([("vocab", self.vocab.to_json_value()), ("model", model)]).render()
    }

    /// Rebuilds a model from a `vega-ckpt/v2` header, borrowing tensor data
    /// from `region` (the mapped checkpoint) starting at `data_base`.
    pub(crate) fn from_header_tabled(
        v: &Json,
        region: &std::sync::Arc<vega_nn::ByteRegion>,
        data_base: usize,
    ) -> Result<Self, JsonError> {
        let vocab = Vocab::from_json_value(v.field("vocab")?)?;
        let m = v.field("model")?;
        let model = if let Ok(t) = m.field("Transformer") {
            ModelKind::Transformer(Transformer::from_json_value_tabled(t, region, data_base)?)
        } else if let Ok(g) = m.field("Gru") {
            ModelKind::Gru(GruSeq2Seq::from_json_value_tabled(g, region, data_base)?)
        } else {
            return Err(JsonError {
                msg: "unknown model kind".into(),
            });
        };
        Ok(CodeBe {
            vocab,
            model,
            curve: TrainingCurve::new(),
            backend: None,
            draft: None,
            spec_depth: 0,
        })
    }

    /// Restores a model saved with [`CodeBe::save_json`].
    ///
    /// # Errors
    /// Returns an error if the JSON does not describe a CodeBE model.
    pub fn load_json(s: &str) -> Result<Self, JsonError> {
        let v = Json::parse(s)?;
        let vocab = Vocab::from_json_value(v.field("vocab")?)?;
        let m = v.field("model")?;
        let model = if let Ok(t) = m.field("Transformer") {
            ModelKind::Transformer(Transformer::from_json_value(t)?)
        } else if let Ok(g) = m.field("Gru") {
            ModelKind::Gru(GruSeq2Seq::from_json_value(g)?)
        } else {
            return Err(JsonError {
                msg: "unknown model kind".into(),
            });
        };
        Ok(CodeBe {
            vocab,
            model,
            curve: TrainingCurve::new(),
            backend: None,
            draft: None,
            spec_depth: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtok::tokens_to_pieces;
    use vega_cpplite::lex;

    fn tiny_codebe(samples: &[&str]) -> (CodeBe, Vec<Vec<usize>>) {
        let mut all_pieces: Vec<String> = Vec::new();
        let mut seqs = Vec::new();
        for s in samples {
            let toks = lex(s).unwrap();
            all_pieces.extend(tokens_to_pieces(&toks));
        }
        let vocab = Vocab::build(all_pieces.iter().map(String::as_str));
        for s in samples {
            let toks = lex(s).unwrap();
            seqs.push(vocab.encode_pieces(&tokens_to_pieces(&toks)));
        }
        (CodeBe::transformer(vocab, TransformerConfig::tiny), seqs)
    }

    #[test]
    fn finetune_memorizes_small_mapping() {
        let (mut m, seqs) = tiny_codebe(&["x = 1;", "return x;"]);
        let pairs: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (seqs[0].clone(), seqs[1].clone()),
            (seqs[1].clone(), seqs[0].clone()),
        ];
        let mut cfg = TrainConfig::tiny();
        cfg.finetune_epochs = 900; // micro-batched: one step per epoch here
        let loss = m.finetune(&pairs, &cfg);
        assert!(loss < 0.25, "loss {loss}");
        let out = m.generate(&seqs[0], 16);
        assert_eq!(
            m.vocab.decode_spellings(&out),
            m.vocab.decode_spellings(&seqs[1])
        );
        assert!(m.exact_match(&pairs, 16) > 0.4);
    }

    #[test]
    fn finetune_records_one_curve_point_per_epoch() {
        let (mut m, seqs) = tiny_codebe(&["x = 1;", "return x;"]);
        let pairs = vec![(seqs[0].clone(), seqs[1].clone())];
        let mut cfg = TrainConfig::tiny();
        cfg.finetune_epochs = 5;
        assert!(m.training_curve().is_empty());
        let loss = m.finetune(&pairs, &cfg);
        let curve = m.training_curve();
        assert_eq!(curve.len(), 5);
        assert_eq!(curve.final_loss(), Some(loss));
        for (i, p) in curve.points.iter().enumerate() {
            assert_eq!(p.epoch, i);
            assert_eq!(p.examples, pairs.len());
            assert!(p.lr > 0.0 && p.lr <= cfg.lr);
        }
        // The inverse-decay schedule makes lr strictly decreasing.
        assert!(curve.points.windows(2).all(|w| w[1].lr < w[0].lr));
    }

    #[test]
    fn pretrain_runs_and_reduces_loss() {
        let (mut m, seqs) = tiny_codebe(&["return Value & 255;", "return Value;"]);
        let final_loss = m.pretrain(&seqs, 120, 3e-3, 9);
        assert!(final_loss.is_finite());
        assert!(final_loss < 4.0, "denoising loss {final_loss}");
    }

    #[test]
    fn save_load_roundtrip() {
        let (mut m, seqs) = tiny_codebe(&["x = 1;"]);
        let json = m.save_json();
        let mut m2 = CodeBe::load_json(&json).unwrap();
        assert_eq!(m.generate(&seqs[0], 8), m2.generate(&seqs[0], 8));
        // Architecture metadata survives the round trip.
        assert_eq!(m2.arch_name(), "transformer");
        assert_eq!(m2.max_len(), m.max_len());
        assert_eq!(m2.vocab.len(), m.vocab.len());
    }

    #[test]
    fn gru_variant_trains() {
        let toks = lex("a = 1; b = 2;").unwrap();
        let vocab = Vocab::build(tokens_to_pieces(&toks).iter().map(String::as_str));
        let seq = vocab.encode_pieces(&tokens_to_pieces(&lex("a = 1;").unwrap()));
        let mut m = CodeBe::gru(vocab, GruConfig::tiny);
        let pairs = vec![(seq.clone(), seq.clone())];
        let mut cfg = TrainConfig::tiny();
        cfg.finetune_epochs = 80;
        let loss = m.finetune(&pairs, &cfg);
        assert!(loss.is_finite());
    }
}
