//! Subword tokenization of source tokens.
//!
//! UniXcoder sees code through a BPE vocabulary, which is what lets VEGA emit
//! identifiers it has never seen whole — `fixup_riscv_pcrel_hi20` decomposes
//! into known pieces (`fixup`, `_`, `riscv`, …). We reproduce that property
//! with a deterministic, reversible subword scheme:
//!
//! * identifiers split at `_`, lower↔upper camel-case boundaries and
//!   letter/digit boundaries; digit runs split into single digits;
//! * each *source token* starts with a piece carrying the `\u{2581}` (▁)
//!   word-start marker, sentencepiece-style, so a piece stream maps back to a
//!   source-token stream unambiguously;
//! * unknown pieces fall back to single characters, which are always in the
//!   vocabulary.

use vega_cpplite::Token;

/// The word-start marker prefix.
pub const WORD_START: char = '\u{2581}';

/// Splits an identifier-ish string into subword pieces (no markers).
///
/// # Examples
/// ```
/// use vega_model::split_ident;
/// assert_eq!(split_ident("fixup_arm_movt_hi16"),
///            vec!["fixup", "_", "arm", "_", "movt", "_", "hi", "1", "6"]);
/// assert_eq!(split_ident("getTargetKind"), vec!["get", "Target", "Kind"]);
/// assert_eq!(split_ident("R_ARM_MOVT"), vec!["R", "_", "ARM", "_", "MOVT"]);
/// ```
pub fn split_ident(s: &str) -> Vec<String> {
    #[derive(PartialEq, Clone, Copy)]
    enum Class {
        Lower,
        Upper,
        Digit,
        Other,
    }
    fn classify(c: char) -> Class {
        if c.is_ascii_lowercase() {
            Class::Lower
        } else if c.is_ascii_uppercase() {
            Class::Upper
        } else if c.is_ascii_digit() {
            Class::Digit
        } else {
            Class::Other
        }
    }
    let mut pieces: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut cur_class: Option<Class> = None;
    for c in s.chars() {
        let cl = classify(c);
        let boundary = match (cur_class, cl) {
            (None, _) => false,
            // Camel case: an Upper following Lower starts a new piece;
            // Upper→Lower continues (e.g. "Target" = 'T' then "arget").
            (Some(Class::Lower), Class::Upper) => true,
            (Some(Class::Upper), Class::Lower) => {
                // "ABCdef" → "AB" + "Cdef": split before the last upper.
                if cur.len() > 1 {
                    let last = cur.pop().unwrap();
                    pieces.push(std::mem::take(&mut cur));
                    cur.push(last);
                }
                false
            }
            (Some(a), b) => a != b,
        };
        if boundary || (cl == Class::Digit && cur_class == Some(Class::Digit)) {
            pieces.push(std::mem::take(&mut cur));
        }
        // `_` and other symbols are single-char pieces.
        if cl == Class::Other && !cur.is_empty() {
            pieces.push(std::mem::take(&mut cur));
        }
        cur.push(c);
        if cl == Class::Other {
            pieces.push(std::mem::take(&mut cur));
            cur_class = None;
            continue;
        }
        cur_class = Some(cl);
    }
    if !cur.is_empty() {
        pieces.push(cur);
    }
    pieces
}

/// Converts one source token into marked subword pieces.
pub fn token_to_pieces(tok: &Token) -> Vec<String> {
    let raw: Vec<String> = match tok {
        Token::Ident(s) => split_ident(s),
        // Integers are one piece: masks/latencies/opcodes copy atomically
        // (unknown numbers still fall back to per-character encoding).
        Token::Int(v) => vec![v.to_string()],
        Token::Str(s) => {
            let mut p = vec!["\"".to_string()];
            p.extend(split_ident(s));
            p.push("\"".to_string());
            p
        }
        Token::Punct(p) => vec![(*p).to_string()],
    };
    mark_first(raw)
}

fn mark_first(mut pieces: Vec<String>) -> Vec<String> {
    if let Some(first) = pieces.first_mut() {
        *first = format!("{WORD_START}{first}");
    }
    pieces
}

/// Converts a token slice into a flat marked piece stream.
pub fn tokens_to_pieces(tokens: &[Token]) -> Vec<String> {
    tokens.iter().flat_map(|t| token_to_pieces(t)).collect()
}

/// Converts a plain string (a property value such as `fixup_riscv_hi16` or
/// `OPERAND_PCREL`) into marked pieces, as one source token. All-digit
/// values stay a single piece, matching the integer-literal encoding.
pub fn string_to_pieces(s: &str) -> Vec<String> {
    if !s.is_empty() && s.chars().all(|c| c.is_ascii_digit() || c == '-') {
        return mark_first(vec![s.to_string()]);
    }
    mark_first(split_ident(s))
}

/// Reassembles a piece stream into source-token spellings: a new spelling
/// starts at every ▁-marked piece.
///
/// # Examples
/// ```
/// use vega_model::{pieces_to_spellings, tokens_to_pieces};
/// use vega_cpplite::lex;
/// let toks = lex("case ARM::fixup_arm_movt_hi16:").unwrap();
/// let pieces = tokens_to_pieces(&toks);
/// let spellings = pieces_to_spellings(&pieces);
/// assert_eq!(spellings, vec!["case", "ARM", "::", "fixup_arm_movt_hi16", ":"]);
/// ```
pub fn pieces_to_spellings(pieces: &[String]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for p in pieces {
        if let Some(rest) = p.strip_prefix(WORD_START) {
            out.push(rest.to_string());
        } else if let Some(last) = out.last_mut() {
            last.push_str(p);
        } else {
            out.push(p.clone());
        }
    }
    out
}

/// Joins spellings back into lexable source text with spaces.
pub fn spellings_to_source(spellings: &[String]) -> String {
    spellings.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_cpplite::lex;

    #[test]
    fn roundtrip_statement() {
        let src = "return (Value >> 16) & 65535;";
        let toks = lex(src).unwrap();
        let pieces = tokens_to_pieces(&toks);
        let spell = pieces_to_spellings(&pieces);
        let rejoined = spellings_to_source(&spell);
        let toks2 = lex(&rejoined).unwrap();
        assert_eq!(toks, toks2);
    }

    #[test]
    fn string_literals_roundtrip() {
        let toks = lex("Name = \"OPERAND_PCREL\"").unwrap();
        let pieces = tokens_to_pieces(&toks);
        let spell = pieces_to_spellings(&pieces);
        let toks2 = lex(&spellings_to_source(&spell)).unwrap();
        assert_eq!(toks, toks2);
    }

    #[test]
    fn unseen_identifier_decomposes_into_known_pieces() {
        let a = split_ident("fixup_riscv_pcrel_hi20");
        // All alpha pieces are short and reusable.
        assert!(a.contains(&"fixup".to_string()));
        assert!(a.contains(&"riscv".to_string()));
        assert!(a.contains(&"pcrel".to_string()));
        assert!(a.contains(&"2".to_string()) && a.contains(&"0".to_string()));
    }

    #[test]
    fn upper_runs_split_before_camel_tail() {
        assert_eq!(split_ident("MCFixupKind"), vec!["MC", "Fixup", "Kind"]);
        assert_eq!(split_ident("getRelocType"), vec!["get", "Reloc", "Type"]);
    }

    #[test]
    fn digits_are_single() {
        assert_eq!(split_ident("hi20"), vec!["hi", "2", "0"]);
        // …but literal integers and numeric value strings are one piece.
        assert_eq!(
            token_to_pieces(&vega_cpplite::Token::Int(65535)),
            vec!["\u{2581}65535"]
        );
        assert_eq!(string_to_pieces("65535"), vec!["\u{2581}65535"]);
    }
}

/// Sentinel characters standing for the target's own name inside training
/// and generation sequences (canonical / lowercase / uppercase spellings).
///
/// The paper's UniXcoder has an open BPE vocabulary, so `riscv` is a known
/// subword even though no training backend mentions it. Our corpus-built
/// vocabulary does not, so CodeBE could neither condition on nor emit a new
/// target's name. [`TargetNorm`] restores that capability: every occurrence
/// of the target's name (in any of its three casings) is replaced by a
/// sentinel before tokenization and substituted back after decoding — the
/// model learns *target-agnostic* statement patterns.
pub const TGT_SENTINELS: [char; 3] = ['\u{E000}', '\u{E001}', '\u{E002}'];

/// Bidirectional target-name anonymization.
#[derive(Debug, Clone)]
pub struct TargetNorm {
    /// Deduplicated forms used for replacement (longest first).
    anon_forms: Vec<(String, char)>,
    /// All three sentinel→form mappings used for restoration (a sentinel
    /// produced under another target must still restore here).
    restore_forms: [(char, String); 3],
}

impl TargetNorm {
    /// Creates a normalizer for a target namespace (e.g. `Mips`).
    pub fn new(ns: &str) -> Self {
        let restore_forms = [
            (TGT_SENTINELS[0], ns.to_string()),
            (TGT_SENTINELS[1], ns.to_lowercase()),
            (TGT_SENTINELS[2], ns.to_uppercase()),
        ];
        let mut anon_forms = vec![
            (ns.to_string(), TGT_SENTINELS[0]),
            (ns.to_lowercase(), TGT_SENTINELS[1]),
            (ns.to_uppercase(), TGT_SENTINELS[2]),
        ];
        // Longest-first, and skip duplicates (e.g. `ARM` == `ARM`.upper()).
        anon_forms.sort_by_key(|(f, _)| std::cmp::Reverse(f.len()));
        let mut seen = std::collections::HashSet::new();
        anon_forms.retain(|(f, _)| seen.insert(f.clone()));
        TargetNorm {
            anon_forms,
            restore_forms,
        }
    }

    /// Replaces name occurrences with sentinels.
    ///
    /// # Examples
    /// ```
    /// use vega_model::TargetNorm;
    /// let n = TargetNorm::new("Mips");
    /// let a = n.anonymize("fixup_MIPS_HI16");
    /// assert!(!a.contains("MIPS"));
    /// assert_eq!(n.restore(&a), "fixup_MIPS_HI16");
    /// ```
    pub fn anonymize(&self, s: &str) -> String {
        let mut out = s.to_string();
        for (form, sentinel) in &self.anon_forms {
            out = out.replace(form, &sentinel.to_string());
        }
        out
    }

    /// Substitutes sentinels with this normalizer's name forms.
    pub fn restore(&self, s: &str) -> String {
        let mut out = s.to_string();
        for (sentinel, form) in &self.restore_forms {
            out = out.replace(*sentinel, form);
        }
        out
    }

    /// Anonymizes a token (identifiers and string literals only).
    pub fn anonymize_token(&self, t: &Token) -> Token {
        match t {
            Token::Ident(s) => Token::Ident(self.anonymize(s)),
            Token::Str(s) => Token::Str(self.anonymize(s)),
            other => other.clone(),
        }
    }

    /// Piece-aligned anonymization of a marked piece stream.
    ///
    /// Plain string replacement would corrupt look-alikes (`VEC_ADD` contains
    /// target `VE`), so names are replaced only where they align with piece
    /// boundaries: a run of consecutive pieces spelling a name form
    /// (`RI`,`5`,`CY`), or a piece with a name prefix/suffix fused in
    /// (`ARMELF` = `ARM`+`ELF`).
    pub fn anonymize_pieces(&self, pieces: &[String]) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let stripped: Vec<(&str, bool)> = pieces
            .iter()
            .map(|p| match p.strip_prefix(WORD_START) {
                Some(rest) => (rest, true),
                None => (p.as_str(), false),
            })
            .collect();
        let mut i = 0;
        'outer: while i < pieces.len() {
            let (body, marked) = stripped[i];
            let push = |out: &mut Vec<String>, marked: bool, s: &str| {
                if marked {
                    out.push(format!("{WORD_START}{s}"));
                } else {
                    out.push(s.to_string());
                }
            };
            for (form, sentinel) in &self.anon_forms {
                // Run of pieces spelling the form exactly.
                let mut acc = String::new();
                let mut j = i;
                while j < pieces.len() && acc.len() < form.len() {
                    if j > i && stripped[j].1 {
                        break; // runs never cross source-token boundaries
                    }
                    acc.push_str(stripped[j].0);
                    j += 1;
                }
                if acc == *form {
                    push(&mut out, marked, &sentinel.to_string());
                    i = j;
                    continue 'outer;
                }
                // Fused prefix: `ARMELF` → sentinel + rest pieces. Requires
                // a substantial form and remainder so look-alike pieces
                // (`VEC` vs target `VE`) are left alone.
                if let Some(rest) = body.strip_prefix(form.as_str()) {
                    if form.len() >= 3 && rest.len() >= 2 {
                        push(&mut out, marked, &sentinel.to_string());
                        for r in split_ident(rest) {
                            out.push(r);
                        }
                        i += 1;
                        continue 'outer;
                    }
                }
                // Fused suffix: `ELFARM` → rest pieces + sentinel.
                if let Some(rest) = body.strip_suffix(form.as_str()) {
                    if form.len() >= 3 && rest.len() >= 2 {
                        let mut first = true;
                        for r in split_ident(rest) {
                            if first {
                                push(&mut out, marked, &r);
                                first = false;
                            } else {
                                out.push(r);
                            }
                        }
                        out.push(sentinel.to_string());
                        i += 1;
                        continue 'outer;
                    }
                }
            }
            out.push(pieces[i].clone());
            i += 1;
        }
        out
    }
}

#[cfg(test)]
mod norm_tests {
    use super::*;

    #[test]
    fn anonymize_roundtrips_all_casings() {
        let n = TargetNorm::new("XCore");
        for s in [
            "XCoreAsmParser",
            "fixup_xcore_tprel",
            "R_XCORE_32",
            "LSS_ADD",
        ] {
            let a = n.anonymize(s);
            assert_eq!(n.restore(&a), s);
        }
        assert!(!n.anonymize("R_XCORE_32").contains("XCORE"));
    }

    #[test]
    fn sentinels_become_single_pieces() {
        let n = TargetNorm::new("Mips");
        let a = n.anonymize("fixup_MIPS_HI16");
        let pieces = split_ident(&a);
        assert!(
            pieces.iter().any(|p| p == &TGT_SENTINELS[2].to_string()),
            "{pieces:?}"
        );
    }

    #[test]
    fn cross_target_restore_transfers_names() {
        // Anonymize under Mips, restore under RISCV — the transfer VEGA
        // needs at generation time.
        let m = TargetNorm::new("Mips");
        let r = TargetNorm::new("RISCV");
        let a = m.anonymize("fixup_MIPS_HI16");
        assert_eq!(r.restore(&a), "fixup_RISCV_HI16");
    }
}

#[cfg(test)]
mod anon_piece_tests {
    use super::*;
    use vega_cpplite::lex;

    fn pieces_of(norm: &TargetNorm, src: &str) -> Vec<String> {
        let toks = lex(src).unwrap();
        norm.anonymize_pieces(&tokens_to_pieces(&toks))
    }

    #[test]
    fn lookalikes_survive() {
        let n = TargetNorm::new("VE");
        let p = pieces_of(&n, "case ISD::VEC_ADD: return VE::VADD;");
        let joined = pieces_to_spellings(&p).join(" ");
        assert!(joined.contains("VEC_ADD"), "{joined}");
        assert!(joined.contains(TGT_SENTINELS[0]), "{joined}");
        assert!(!joined.contains("VE ::"), "{joined}");
    }

    #[test]
    fn fused_qualifier_is_split() {
        let n = TargetNorm::new("ARM");
        let p = pieces_of(&n, "ARMELFObjectWriter");
        let joined = pieces_to_spellings(&p).join("");
        assert_eq!(n.restore(&joined), "ARMELFObjectWriter");
        assert!(joined.contains(TGT_SENTINELS[0]));
    }

    #[test]
    fn multi_piece_names_collapse() {
        let n = TargetNorm::new("RI5CY");
        let p = pieces_of(&n, "RI5CY::fixup_ri5cy_hi16");
        let joined = pieces_to_spellings(&p).join(" ");
        assert!(!joined.contains("RI5CY"), "{joined}");
        assert!(!joined.contains("ri5cy"), "{joined}");
        assert_eq!(
            n.restore(&joined).replace(' ', ""),
            "RI5CY::fixup_ri5cy_hi16"
        );
    }

    #[test]
    fn restore_under_other_target() {
        let arm = TargetNorm::new("ARM");
        let rv = TargetNorm::new("RISCV");
        let p = pieces_of(&arm, "case ARM::fixup_arm_movt_hi16:");
        let line = pieces_to_spellings(&p).join(" ");
        let restored = rv.restore(&line);
        assert_eq!(restored, "case RISCV :: fixup_riscv_movt_hi16 :");
    }
}
