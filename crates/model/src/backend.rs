//! Pluggable decode backends for [`CodeBe`](crate::CodeBe).
//!
//! A backend intercepts the two decode primitives — greedy generation and
//! forced-sequence scoring — so generation can run somewhere other than the
//! calling thread's own weights. The motivating implementation is
//! `vega-serve`'s continuous-batching broker: many requester threads submit
//! their decode work to one broker that steps all sessions in lockstep
//! through a single shared weight traversal, then hands each requester its
//! result. The backend contract demands bit-identity with the local path:
//! installing or removing a backend must never change a single output bit,
//! only where (and how fast) the arithmetic happens.
//!
//! Backend calls are *fallible*: a deadline can expire at a token boundary,
//! or the remote engine can go away mid-call. The local in-process path
//! never aborts (it ignores deadlines), so code that does not opt into
//! deadlines keeps the original infallible API.

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Why a backend decode call gave up before producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeAbort {
    /// The per-call deadline passed; the backend stopped at a token
    /// boundary. No partial output is returned — a partial generation must
    /// never be cached or served.
    Expired,
    /// The backend itself failed (e.g. its broker thread is gone). Carries
    /// a diagnostic message.
    Broken(String),
}

impl fmt::Display for DecodeAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeAbort::Expired => write!(f, "decode deadline expired"),
            DecodeAbort::Broken(msg) => write!(f, "decode backend broken: {msg}"),
        }
    }
}

/// An engine that can run CodeBE's decode primitives on behalf of a caller.
///
/// Implementations must be bit-identical to the single-threaded in-process
/// path: same token streams, same logprob bits, for every input. `deadline`
/// is a best-effort abort checked at token boundaries; `None` means run to
/// completion.
pub trait DecodeBackend: Send + Sync {
    /// Greedy generation — the backend analog of
    /// [`CodeBe::generate`](crate::CodeBe::generate).
    fn generate(
        &self,
        input: &[usize],
        max_len: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<usize>, DecodeAbort>;

    /// Forced-sequence log-probability — the backend analog of
    /// [`CodeBe::sequence_logprob`](crate::CodeBe::sequence_logprob).
    fn sequence_logprob(
        &self,
        input: &[usize],
        output: &[usize],
        deadline: Option<Instant>,
    ) -> Result<f32, DecodeAbort>;
}

/// A cloneable, debuggable handle to a shared [`DecodeBackend`].
///
/// `CodeBe` derives `Debug`/`Clone`; trait objects provide neither, so the
/// handle wraps the `Arc` and fills both in. Cloning a model clones the
/// handle — replicas of one serve pool intentionally share a backend.
#[derive(Clone)]
pub struct BackendHandle(Arc<dyn DecodeBackend>);

impl BackendHandle {
    /// Wraps a backend for installation via
    /// [`CodeBe::set_decode_backend`](crate::CodeBe::set_decode_backend).
    pub fn new(backend: impl DecodeBackend + 'static) -> Self {
        BackendHandle(Arc::new(backend))
    }

    /// The wrapped backend.
    pub fn backend(&self) -> &dyn DecodeBackend {
        self.0.as_ref()
    }
}

impl fmt::Debug for BackendHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BackendHandle(..)")
    }
}
