//! Crash-safe checkpoint files.
//!
//! `CodeBe::save_json` / `load_json` move JSON strings; this module moves
//! *files*, and assumes the disk can fail at any byte. A checkpoint file is
//! an envelope around the model payload:
//!
//! ```text
//! {"format":"vega-ckpt/v1","digest":"<fnv1a-64 hex of payload>","payload":{…}}
//! ```
//!
//! [`save_file`] writes the envelope to `<path>.tmp` and renames it over
//! `<path>` only once every byte is flushed, so a crash mid-save (simulated
//! by the `ckpt.save.crash` fault site) leaves the previous checkpoint
//! intact. [`load_file`] verifies the digest before handing bytes to the
//! weight decoder, so truncated or bit-flipped checkpoints are rejected with
//! a named [`CkptError`] instead of being decoded into garbage weights.
//! Pre-envelope checkpoints (a bare `CodeBe::save_json` object) still load,
//! so old files keep working.

use crate::codebe::CodeBe;
use std::io::Write;
use std::path::Path;
use vega_obs::json::Json;

/// The envelope format tag; bump on incompatible envelope changes.
pub const CKPT_FORMAT: &str = "vega-ckpt/v1";

/// Why a checkpoint file could not be saved or loaded. Each variant names a
/// distinct failure so callers (and tests) can tell corruption from version
/// skew from plain I/O trouble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The file could not be read or written.
    Io(String),
    /// The file is not parseable JSON at all (e.g. truncated mid-write).
    Corrupt(String),
    /// The envelope digest does not match the payload (bit flip, partial
    /// overwrite).
    DigestMismatch {
        /// Digest recorded in the envelope.
        expected: String,
        /// Digest recomputed over the payload actually present.
        found: String,
    },
    /// The envelope is from a different format version.
    VersionMismatch {
        /// The `format` value found in the file.
        found: String,
    },
    /// The payload passed its digest check but does not decode as a CodeBE
    /// model.
    Payload(String),
    /// The `ckpt.save.crash` fault site fired mid-save; the temp file was
    /// abandoned and the original checkpoint (if any) is untouched.
    InjectedCrash,
    /// A binary (`vega-ckpt/v2`) checkpoint failed structural validation at
    /// a specific byte offset.
    Binary {
        /// The detected format tag (e.g. `vega-ckpt/v2`).
        format: String,
        /// Byte offset where validation failed.
        offset: usize,
        /// What was wrong there.
        msg: String,
    },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(msg) => write!(f, "checkpoint io: {msg}"),
            CkptError::Corrupt(msg) => write!(f, "checkpoint corrupt: {msg}"),
            CkptError::DigestMismatch { expected, found } => write!(
                f,
                "checkpoint digest mismatch: envelope says {expected}, payload hashes to {found}"
            ),
            CkptError::VersionMismatch { found } => write!(
                f,
                "checkpoint version mismatch: found `{found}`, expected `{CKPT_FORMAT}` or `{}`",
                crate::ckpt2::CKPT_FORMAT_V2
            ),
            CkptError::Payload(msg) => write!(f, "checkpoint payload: {msg}"),
            CkptError::InjectedCrash => write!(
                f,
                "checkpoint save crashed (injected at fault site `ckpt.save.crash`); \
                 previous checkpoint left intact"
            ),
            CkptError::Binary {
                format,
                offset,
                msg,
            } => write!(
                f,
                "checkpoint binary ({format}) invalid at byte {offset}: {msg}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

/// Renders the envelope bytes for a payload produced by `CodeBe::save_json`.
/// Assembled textually so the payload bytes are embedded exactly as hashed.
fn envelope(payload: &str) -> String {
    format!(
        "{{\"format\":\"{CKPT_FORMAT}\",\"digest\":\"{}\",\"payload\":{payload}}}",
        vega_fault::fnv1a_64_hex(payload.as_bytes())
    )
}

impl CodeBe {
    /// Writes this model to `path` crash-safely: envelope with an embedded
    /// FNV-1a digest, written to `<path>.tmp`, flushed, then renamed over
    /// `path`. A failure at any point — including an injected
    /// `ckpt.save.crash` — leaves whatever was at `path` before untouched.
    ///
    /// # Errors
    /// [`CkptError::Io`] for filesystem failures, [`CkptError::InjectedCrash`]
    /// when the fault site fires.
    pub fn save_file(&self, path: &Path) -> Result<(), CkptError> {
        write_crash_safe(path, envelope(&self.save_json()).as_bytes())
    }

    /// Loads a checkpoint from `path`, auto-detecting the on-disk format:
    /// `vega-ckpt/v2` binary, `vega-ckpt/v1` envelope JSON, or a legacy bare
    /// `save_json` file. Digest verification happens before any weight
    /// decoding in every format.
    ///
    /// # Errors
    /// A named [`CkptError`] variant: unreadable file, unparseable bytes,
    /// digest mismatch, version mismatch, or undecodable payload.
    pub fn load_file(path: &Path) -> Result<CodeBe, CkptError> {
        Self::load_file_detect(path).map(|(model, _)| model)
    }

    /// As [`CodeBe::load_file`], from bytes already in memory.
    ///
    /// # Errors
    /// See [`CodeBe::load_file`].
    pub fn load_envelope(text: &str) -> Result<CodeBe, CkptError> {
        let v = Json::parse(text).map_err(|e| CkptError::Corrupt(e.to_string()))?;
        let Ok(format) = v.field("format").and_then(Json::as_str) else {
            // No format tag: a legacy bare save_json checkpoint.
            return CodeBe::load_json(text).map_err(|e| CkptError::Payload(e.to_string()));
        };
        if format != CKPT_FORMAT {
            return Err(CkptError::VersionMismatch {
                found: format.to_string(),
            });
        }
        let expected = v
            .field("digest")
            .and_then(Json::as_str)
            .map_err(|e| CkptError::Corrupt(format!("envelope has no digest: {e}")))?
            .to_string();
        let payload = v
            .field("payload")
            .map_err(|e| CkptError::Corrupt(format!("envelope has no payload: {e}")))?
            .render();
        let found = vega_fault::fnv1a_64_hex(payload.as_bytes());
        if found != expected {
            return Err(CkptError::DigestMismatch { expected, found });
        }
        CodeBe::load_json(&payload).map_err(|e| CkptError::Payload(e.to_string()))
    }
}

/// Writes `bytes` to `path` crash-safely: `<path>.tmp`, flushed, then
/// renamed over `path`. Shared by the v1 (JSON envelope) and v2 (binary)
/// save paths so both get the same atomicity and the same injectable
/// mid-write crash.
pub(crate) fn write_crash_safe(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = tmp_path(path);
    let io_err =
        |what: &str, e: std::io::Error| CkptError::Io(format!("{what} {}: {e}", tmp.display()));
    let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create", e))?;
    // Write in two halves with the crash site between them: a fired
    // fault abandons a deliberately truncated temp file, exactly the
    // state a real mid-write crash leaves behind.
    let mid = bytes.len() / 2;
    f.write_all(&bytes[..mid]).map_err(|e| io_err("write", e))?;
    if vega_fault::check(vega_fault::sites::CKPT_SAVE_CRASH).is_some() {
        let _ = f.sync_all();
        return Err(CkptError::InjectedCrash);
    }
    f.write_all(&bytes[mid..]).map_err(|e| io_err("write", e))?;
    f.sync_all().map_err(|e| io_err("sync", e))?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| {
        CkptError::Io(format!(
            "rename {} -> {}: {e}",
            tmp.display(),
            path.display()
        ))
    })
}

/// The temp file a save writes before the atomic rename.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}
