//! The `vega-ckpt/v2` binary checkpoint format.
//!
//! v1 ([`crate::ckpt`]) stores weights as JSON text — robust and diffable,
//! but loading re-parses every scalar and every replica owns a private copy
//! of the model. v2 keeps the *header* as JSON (vocabulary, architecture,
//! tensor shapes) and moves the weight data into a 64-byte-aligned
//! little-endian `f32` region that can be memory-mapped read-only and used
//! in place:
//!
//! ```text
//! bytes 0..8    magic  b"VEGACKP2"
//! bytes 8..16   u64 LE: header JSON length H
//! bytes 16..24  u64 LE: FNV-1a digest over bytes[24..end]
//! bytes 24..24+H   header JSON (save_json shape, tensors as {rows,cols,off})
//! ..data_base      zero padding to the next 64-byte boundary
//! data_base..end   tensor data region; each tensor 64-byte aligned,
//!                  offsets in the header are relative to data_base
//! ```
//!
//! [`CodeBe::load_file`] auto-detects v1 vs v2 by the magic. A v2 load maps
//! the file once and hands every tensor a view into the mapping, so cloning
//! the model for a serving replica copies descriptors, not weights, and
//! training on a loaded model copies tensors out lazily (copy-on-write).
//! Saving goes through the same crash-safe temp-file + rename envelope as
//! v1, including the `ckpt.save.crash` fault site.

use crate::ckpt::{write_crash_safe, CkptError, CKPT_FORMAT};
use crate::codebe::CodeBe;
use std::path::Path;
use std::sync::Arc;
use vega_nn::storage::DATA_ALIGN;
use vega_nn::{ByteRegion, TensorTable};
use vega_obs::json::Json;

/// The v2 format tag, as reported in errors and checkpoint metadata.
pub const CKPT_FORMAT_V2: &str = "vega-ckpt/v2";

/// The 8-byte magic opening every v2 checkpoint file.
pub const V2_MAGIC: [u8; 8] = *b"VEGACKP2";

/// Bytes before the header JSON: magic + header length + digest.
const PROLOGUE: usize = 24;

/// Which on-disk checkpoint format a file was detected as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptFormat {
    /// `vega-ckpt/v1`: JSON envelope (or a legacy bare `save_json` file).
    V1,
    /// `vega-ckpt/v2`: binary header + mappable weight region.
    V2,
}

impl CkptFormat {
    /// The format tag string (`vega-ckpt/v1` / `vega-ckpt/v2`).
    pub fn tag(self) -> &'static str {
        match self {
            CkptFormat::V1 => CKPT_FORMAT,
            CkptFormat::V2 => CKPT_FORMAT_V2,
        }
    }

    /// Parses a `--ckpt-format` style name (`"v1"` / `"v2"`).
    ///
    /// # Errors
    /// Returns the unrecognized name.
    pub fn parse(name: &str) -> Result<CkptFormat, String> {
        match name {
            "v1" => Ok(CkptFormat::V1),
            "v2" => Ok(CkptFormat::V2),
            other => Err(format!(
                "unknown checkpoint format `{other}` (want v1 or v2)"
            )),
        }
    }
}

impl std::fmt::Display for CkptFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Renders a model as v2 checkpoint bytes (no I/O).
pub fn encode_v2(model: &CodeBe) -> Vec<u8> {
    let mut table = TensorTable::new();
    let header = model.header_json_tabled(&mut table);
    let data = table.into_bytes();
    let data_base = (PROLOGUE + header.len()).next_multiple_of(DATA_ALIGN);
    let mut out = Vec::with_capacity(data_base + data.len());
    out.extend_from_slice(&V2_MAGIC);
    out.extend_from_slice(&(header.len() as u64).to_le_bytes());
    out.extend_from_slice(&[0u8; 8]); // digest, patched below
    out.extend_from_slice(header.as_bytes());
    out.resize(data_base, 0);
    out.extend_from_slice(&data);
    let digest = vega_fault::fnv1a_64(&out[PROLOGUE..]);
    out[16..PROLOGUE].copy_from_slice(&digest.to_le_bytes());
    out
}

impl CodeBe {
    /// Writes this model to `path` in the v2 binary format, crash-safely
    /// (temp file + rename; the `ckpt.save.crash` site can fire mid-write
    /// and leaves any previous checkpoint intact).
    ///
    /// # Errors
    /// [`CkptError::Io`] for filesystem failures, [`CkptError::InjectedCrash`]
    /// when the fault site fires.
    pub fn save_file_v2(&self, path: &Path) -> Result<(), CkptError> {
        write_crash_safe(path, &encode_v2(self))
    }

    /// As [`CodeBe::save_file`] / [`CodeBe::save_file_v2`], selected by
    /// `format`.
    ///
    /// # Errors
    /// See [`CodeBe::save_file`].
    pub fn save_file_as(&self, path: &Path, format: CkptFormat) -> Result<(), CkptError> {
        match format {
            CkptFormat::V1 => self.save_file(path),
            CkptFormat::V2 => self.save_file_v2(path),
        }
    }

    /// Loads a checkpoint and reports which format was detected. v2 files
    /// are memory-mapped and the returned model borrows the mapping; v1
    /// files decode into owned tensors.
    ///
    /// # Errors
    /// A named [`CkptError`]; binary structural failures carry the detected
    /// format and the byte offset of the problem.
    pub fn load_file_detect(path: &Path) -> Result<(CodeBe, CkptFormat), CkptError> {
        Self::load_file_detect_opts(path, false)
    }

    /// As [`CodeBe::load_file_detect`], with an optional prefault pass: when
    /// `prefault` is true the mapped (or freshly read) checkpoint region is
    /// warm-touched page by page before anything decodes, so a served model
    /// never pays major-fault latency on its first generations. The touched
    /// byte count is recorded on the `ckpt.prefault_bytes` counter.
    ///
    /// # Errors
    /// See [`CodeBe::load_file_detect`].
    pub fn load_file_detect_opts(
        path: &Path,
        prefault: bool,
    ) -> Result<(CodeBe, CkptFormat), CkptError> {
        let region = ByteRegion::from_file(path)
            .map_err(|e| CkptError::Io(format!("read {}: {e}", path.display())))?;
        if prefault {
            let touched = region.prefault();
            vega_obs::global().counter_add("ckpt.prefault_bytes", touched as u64);
        }
        let b = region.bytes();
        if b.len() >= 8 && b[..8] == V2_MAGIC {
            return load_v2(Arc::new(region)).map(|m| (m, CkptFormat::V2));
        }
        if b.len() >= 7 && &b[..7] == b"VEGACKP" {
            // Right family, wrong version byte — a future (or mangled) rev.
            return Err(CkptError::VersionMismatch {
                found: String::from_utf8_lossy(&b[..8.min(b.len())]).into_owned(),
            });
        }
        let text = std::str::from_utf8(b).map_err(|e| {
            CkptError::Corrupt(format!(
                "{}: neither {CKPT_FORMAT_V2} magic nor UTF-8 JSON (bad byte at {})",
                path.display(),
                e.valid_up_to()
            ))
        })?;
        Self::load_envelope(text).map(|m| (m, CkptFormat::V1))
    }
}

/// Validates and decodes a mapped v2 checkpoint. The digest is verified
/// over everything after the prologue before any parsing or weight
/// decoding, so truncation and bit flips are caught up front.
fn load_v2(region: Arc<ByteRegion>) -> Result<CodeBe, CkptError> {
    let bin = |offset: usize, msg: String| CkptError::Binary {
        format: CKPT_FORMAT_V2.to_string(),
        offset,
        msg,
    };
    let b = region.bytes();
    if b.len() < PROLOGUE {
        return Err(bin(
            b.len(),
            format!(
                "file is {} bytes, shorter than the {PROLOGUE}-byte prologue",
                b.len()
            ),
        ));
    }
    let header_len = u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")) as usize;
    let expected = u64::from_le_bytes(b[16..PROLOGUE].try_into().expect("8 bytes"));
    let header_end = PROLOGUE
        .checked_add(header_len)
        .filter(|&end| end <= b.len())
        .ok_or_else(|| {
            bin(
                8,
                format!(
                    "header length {header_len} overruns the {}-byte file",
                    b.len()
                ),
            )
        })?;
    let found = vega_fault::fnv1a_64(&b[PROLOGUE..]);
    if found != expected {
        return Err(CkptError::DigestMismatch {
            expected: format!("{expected:016x}"),
            found: format!("{found:016x}"),
        });
    }
    let header = std::str::from_utf8(&b[PROLOGUE..header_end]).map_err(|e| {
        bin(
            PROLOGUE + e.valid_up_to(),
            "header is not UTF-8".to_string(),
        )
    })?;
    let v = Json::parse(header).map_err(|e| CkptError::Corrupt(format!("v2 header: {e}")))?;
    let data_base = header_end.next_multiple_of(DATA_ALIGN);
    CodeBe::from_header_tabled(&v, &region, data_base)
        .map_err(|e| CkptError::Payload(e.to_string()))
}
