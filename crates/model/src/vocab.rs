//! The CodeBE vocabulary: special tokens, subword pieces, char fallback.

use crate::subtok::{pieces_to_spellings, WORD_START};
use std::collections::HashMap;
use vega_obs::json::{Json, JsonError};

/// Number of quantized confidence-score tokens (`[CS_0]`=0.00 … `[CS_20]`=1.00).
pub const NUM_SCORE_TOKENS: usize = 21;

/// Special vocabulary entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Special {
    /// Padding.
    Pad,
    /// Decoder start (the paper's `[E2D]` mode token doubles as BOS here).
    Bos,
    /// End of sequence.
    Eos,
    /// Separator between the statement template and the property values.
    Sep,
    /// Sequence-leading classification token.
    Cls,
    /// Encoder-decoder mode marker.
    E2d,
    /// A NULL property value (target-dependent property absent).
    Null,
    /// Boolean true property value.
    True,
    /// Boolean false property value.
    False,
    /// Mask token for the denoising pre-training objective.
    Mask,
    /// Placeholder marker rendered for template slots (`SV` in the paper).
    Slot,
}

const SPECIAL_NAMES: &[(&str, Special)] = &[
    ("[PAD]", Special::Pad),
    ("[BOS]", Special::Bos),
    ("[EOS]", Special::Eos),
    ("[SEP]", Special::Sep),
    ("[CLS]", Special::Cls),
    ("[E2D]", Special::E2d),
    ("[NULL]", Special::Null),
    ("[TRUE]", Special::True),
    ("[FALSE]", Special::False),
    ("[MASK]", Special::Mask),
    ("[SV]", Special::Slot),
];

/// A frozen subword vocabulary. Only the piece list is serialized; the
/// lookup map is rebuilt on load. The contents live behind an `Arc`, so
/// cloning a vocabulary — and hence spawning a model replica — shares one
/// frozen piece table instead of copying thousands of strings.
#[derive(Debug, Clone)]
pub struct Vocab {
    inner: std::sync::Arc<VocabInner>,
}

#[derive(Debug)]
struct VocabInner {
    pieces: Vec<String>,
    ids: HashMap<String, usize>,
}

impl Vocab {
    /// Freezes a piece list, building the lookup index.
    fn freeze(pieces: Vec<String>) -> Self {
        let ids = pieces
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Vocab {
            inner: std::sync::Arc::new(VocabInner { pieces, ids }),
        }
    }

    /// Builds a vocabulary from the subword pieces observed in a corpus.
    /// Specials and score tokens come first, then a full single-character
    /// fallback (both ▁-marked and continuation forms), then observed pieces.
    pub fn build<'a>(observed: impl IntoIterator<Item = &'a str>) -> Self {
        let mut pieces: Vec<String> = Vec::new();
        for (name, _) in SPECIAL_NAMES {
            pieces.push((*name).to_string());
        }
        for k in 0..NUM_SCORE_TOKENS {
            pieces.push(format!("[CS_{k}]"));
        }
        // Char fallback: printable ASCII in both positions.
        for c in 32u8..127 {
            let ch = c as char;
            pieces.push(format!("{WORD_START}{ch}"));
            pieces.push(ch.to_string());
        }
        // Target-name sentinels (see `TargetNorm`).
        for ch in crate::subtok::TGT_SENTINELS {
            pieces.push(format!("{WORD_START}{ch}"));
            pieces.push(ch.to_string());
        }
        let mut seen: HashMap<String, usize> = pieces
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        let mut ordered: Vec<String> = Vec::new();
        for p in observed {
            if !seen.contains_key(p) {
                seen.insert(p.to_string(), 0);
                ordered.push(p.to_string());
            }
        }
        ordered.sort_unstable();
        pieces.extend(ordered);
        Vocab::freeze(pieces)
    }

    /// Serializes to a JSON value (`{"pieces":[...]}`).
    pub fn to_json_value(&self) -> Json {
        Json::obj([(
            "pieces",
            Json::Arr(self.inner.pieces.iter().map(Json::str).collect()),
        )])
    }

    /// Restores from [`Vocab::to_json_value`] output, rebuilding the index.
    ///
    /// # Errors
    /// Returns an error if the value does not describe a vocabulary.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let pieces = v
            .field("pieces")?
            .as_array()?
            .iter()
            .map(|p| Ok(p.as_str()?.to_string()))
            .collect::<Result<Vec<String>, JsonError>>()?;
        Ok(Vocab::freeze(pieces))
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.inner.pieces.len()
    }

    /// Returns `true` if the vocabulary is empty (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.inner.pieces.is_empty()
    }

    /// Id of a special token.
    pub fn special(&self, s: Special) -> usize {
        let name = SPECIAL_NAMES
            .iter()
            .find(|(_, sp)| *sp == s)
            .map(|(n, _)| *n)
            .expect("special registered");
        self.inner.ids[name]
    }

    /// Id of the quantized score token for a confidence in `[0, 1]`.
    pub fn score_token(&self, confidence: f64) -> usize {
        let k = (confidence.clamp(0.0, 1.0) * (NUM_SCORE_TOKENS - 1) as f64).round() as usize;
        self.inner.ids[&format!("[CS_{k}]")]
    }

    /// The confidence represented by an id, if it is a score token.
    pub fn score_of(&self, id: usize) -> Option<f64> {
        let p = self.inner.pieces.get(id)?;
        let k: usize = p.strip_prefix("[CS_")?.strip_suffix(']')?.parse().ok()?;
        Some(k as f64 / (NUM_SCORE_TOKENS - 1) as f64)
    }

    /// Encodes one piece, falling back to characters for unknown pieces.
    pub fn encode_piece(&self, piece: &str, out: &mut Vec<usize>) {
        if let Some(&id) = self.inner.ids.get(piece) {
            out.push(id);
            return;
        }
        // Char fallback, preserving the word-start marker on the first char.
        let (marked, body) = match piece.strip_prefix(WORD_START) {
            Some(rest) => (true, rest),
            None => (false, piece),
        };
        for (i, ch) in body.chars().enumerate() {
            let key = if i == 0 && marked {
                format!("{WORD_START}{ch}")
            } else {
                ch.to_string()
            };
            if let Some(&id) = self.inner.ids.get(&key) {
                out.push(id);
            }
            // Non-ASCII chars outside the fallback are dropped.
        }
    }

    /// Encodes a piece stream.
    pub fn encode_pieces(&self, pieces: &[String]) -> Vec<usize> {
        let mut out = Vec::with_capacity(pieces.len());
        for p in pieces {
            self.encode_piece(p, out.as_mut());
        }
        out
    }

    /// Decodes ids into pieces, skipping specials and score tokens.
    pub fn decode_pieces(&self, ids: &[usize]) -> Vec<String> {
        ids.iter()
            .filter_map(|&id| self.inner.pieces.get(id))
            .filter(|p| !(p.starts_with('[') && p.ends_with(']')))
            .cloned()
            .collect()
    }

    /// Decodes ids into source-token spellings.
    pub fn decode_spellings(&self, ids: &[usize]) -> Vec<String> {
        pieces_to_spellings(&self.decode_pieces(ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subtok::tokens_to_pieces;
    use vega_cpplite::lex;

    fn sample_vocab() -> Vocab {
        let toks = lex("case ARM::fixup_arm_movt_hi16: return ELF::R_ARM_MOVT_PREL;").unwrap();
        let pieces = tokens_to_pieces(&toks);
        let refs: Vec<&str> = pieces.iter().map(String::as_str).collect();
        Vocab::build(refs)
    }

    #[test]
    fn roundtrip_known_statement() {
        let v = sample_vocab();
        let toks = lex("case ARM::fixup_arm_movt_hi16:").unwrap();
        let ids = v.encode_pieces(&tokens_to_pieces(&toks));
        let spell = v.decode_spellings(&ids);
        assert_eq!(spell, vec!["case", "ARM", "::", "fixup_arm_movt_hi16", ":"]);
    }

    #[test]
    fn unknown_pieces_fall_back_to_chars() {
        let v = sample_vocab();
        let toks = lex("zzqy").unwrap();
        let ids = v.encode_pieces(&tokens_to_pieces(&toks));
        assert!(!ids.is_empty());
        let spell = v.decode_spellings(&ids);
        assert_eq!(spell, vec!["zzqy"]);
    }

    #[test]
    fn score_tokens_roundtrip() {
        let v = sample_vocab();
        for conf in [0.0, 0.23, 0.5, 0.77, 1.0] {
            let id = v.score_token(conf);
            let back = v.score_of(id).unwrap();
            assert!((back - conf).abs() <= 0.025 + 1e-9, "{conf} → {back}");
        }
        assert_eq!(v.score_of(v.special(Special::Sep)), None);
    }

    #[test]
    fn specials_are_distinct() {
        let v = sample_vocab();
        let ids: Vec<usize> = [
            Special::Pad,
            Special::Bos,
            Special::Eos,
            Special::Sep,
            Special::Cls,
            Special::E2d,
            Special::Null,
            Special::True,
            Special::False,
            Special::Mask,
        ]
        .iter()
        .map(|&s| v.special(s))
        .collect();
        let mut d = ids.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), ids.len());
    }

    #[test]
    fn json_roundtrip_with_reindex() {
        let v = sample_vocab();
        let json = v.to_json_value().render();
        let v2 = Vocab::from_json_value(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(v.len(), v2.len());
        assert_eq!(v.special(Special::Sep), v2.special(Special::Sep));
    }
}
