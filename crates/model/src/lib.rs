//! `vega-model`: subword tokenization, vocabulary, and the CodeBE model.
//!
//! Sits between the VEGA pipeline (which thinks in statements, templates and
//! feature vectors) and the raw sequence models in [`vega_nn`]:
//!
//! * [`split_ident`] / [`tokens_to_pieces`] — a reversible subword scheme so
//!   never-seen identifiers (`fixup_riscv_pcrel_hi20`) decompose into known
//!   pieces, as UniXcoder's BPE does for the paper;
//! * [`Vocab`] — specials (`[CLS]`, `[SEP]`, `[E2D]`, `[NULL]`, …), the 21
//!   quantized confidence-score tokens, char fallback, corpus pieces;
//! * [`CodeBe`] — denoising pre-training + fine-tuning + greedy generation
//!   over a transformer (default) or GRU (ablation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
mod ckpt;
mod ckpt2;
mod codebe;
mod subtok;
mod vocab;

pub use backend::{BackendHandle, DecodeAbort, DecodeBackend};
pub use ckpt::{tmp_path, CkptError, CKPT_FORMAT};
pub use ckpt2::{encode_v2, CkptFormat, CKPT_FORMAT_V2, V2_MAGIC};
pub use codebe::{CodeBe, ModelChoice, TrainConfig};
pub use subtok::{
    pieces_to_spellings, spellings_to_source, split_ident, string_to_pieces, token_to_pieces,
    tokens_to_pieces, TargetNorm, TGT_SENTINELS, WORD_START,
};
pub use vocab::{Special, Vocab, NUM_SCORE_TOKENS};
