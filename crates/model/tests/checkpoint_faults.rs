//! Crash-safety tests for the checkpoint file layer: round-trip identity,
//! named rejection of truncated / bit-flipped / version-mismatched files,
//! and a `FaultPlan`-injected crash mid-save that must leave the previous
//! checkpoint intact.
//!
//! Everything runs in one `#[test]` because the fault plan is process-global
//! and the scenarios install and clear plans.

use std::path::Path;
use vega_cpplite::lex;
use vega_fault::FaultPlan;
use vega_model::{tmp_path, tokens_to_pieces, CkptError, CodeBe, Vocab, CKPT_FORMAT};
use vega_nn::TransformerConfig;

/// A tiny transformer CodeBE over the pieces of `samples`, plus the encoded
/// sequences (mirrors the model crate's own unit-test helper).
fn tiny_model(samples: &[&str]) -> (CodeBe, Vec<Vec<usize>>) {
    let mut all_pieces: Vec<String> = Vec::new();
    for s in samples {
        all_pieces.extend(tokens_to_pieces(&lex(s).unwrap()));
    }
    let vocab = Vocab::build(all_pieces.iter().map(String::as_str));
    let seqs = samples
        .iter()
        .map(|s| vocab.encode_pieces(&tokens_to_pieces(&lex(s).unwrap())))
        .collect();
    (CodeBe::transformer(vocab, TransformerConfig::tiny), seqs)
}

fn generation(m: &mut CodeBe, input: &[usize]) -> Vec<usize> {
    m.generate(input, 8)
}

#[test]
fn checkpoint_files_are_crash_safe_and_validated() {
    let dir = std::env::temp_dir().join("vega-model-ckpt-faults");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    let (mut model, seqs) = tiny_model(&["x = 1;", "return x;"]);

    // --- save_json -> load_json is identity (string level and behaviour) --
    let json = model.save_json();
    let mut reloaded = CodeBe::load_json(&json).unwrap();
    assert_eq!(
        reloaded.save_json(),
        json,
        "load_json(save_json) must re-serialize to identical bytes"
    );
    assert_eq!(
        generation(&mut model, &seqs[0]),
        generation(&mut reloaded, &seqs[0])
    );

    // --- save_file -> load_file round trip ------------------------------
    model.save_file(&path).unwrap();
    assert!(
        !tmp_path(&path).exists(),
        "a successful save leaves no temp file behind"
    );
    let envelope = std::fs::read_to_string(&path).unwrap();
    assert!(envelope.starts_with(&format!("{{\"format\":\"{CKPT_FORMAT}\"")));
    let mut from_file = CodeBe::load_file(&path).unwrap();
    assert_eq!(from_file.save_json(), json);
    assert_eq!(
        generation(&mut model, &seqs[1]),
        generation(&mut from_file, &seqs[1])
    );

    // --- missing file: named Io error -----------------------------------
    assert!(matches!(
        CodeBe::load_file(Path::new("/nonexistent/ckpt.json")),
        Err(CkptError::Io(_))
    ));

    // --- truncation: named Corrupt error --------------------------------
    let cut = dir.join("truncated.json");
    std::fs::write(&cut, &envelope[..envelope.len() / 2]).unwrap();
    assert!(
        matches!(CodeBe::load_file(&cut), Err(CkptError::Corrupt(_))),
        "a half-written checkpoint must be rejected as corrupt"
    );

    // --- bit flip inside the payload: named DigestMismatch --------------
    let payload_at = envelope.find("\"payload\":").unwrap() + "\"payload\":".len();
    let flip_at = payload_at
        + envelope[payload_at..]
            .find(|c: char| c.is_ascii_digit())
            .expect("payload contains a digit");
    let mut flipped = envelope.clone().into_bytes();
    flipped[flip_at] = if flipped[flip_at] == b'9' { b'8' } else { b'9' };
    let bad = dir.join("bitflip.json");
    std::fs::write(&bad, &flipped).unwrap();
    match CodeBe::load_file(&bad) {
        Err(CkptError::DigestMismatch { expected, found }) => {
            assert_ne!(expected, found);
            assert_eq!(expected.len(), 16);
        }
        other => panic!("bit flip must be a DigestMismatch, got {other:?}"),
    }

    // --- version mismatch: named error with the found version -----------
    let versioned = envelope.replace(CKPT_FORMAT, "vega-ckpt/v999");
    let vpath = dir.join("future.json");
    std::fs::write(&vpath, &versioned).unwrap();
    match CodeBe::load_file(&vpath) {
        Err(CkptError::VersionMismatch { found }) => assert_eq!(found, "vega-ckpt/v999"),
        other => panic!("future format must be a VersionMismatch, got {other:?}"),
    }

    // --- legacy bare save_json files still load -------------------------
    let legacy = dir.join("legacy.json");
    std::fs::write(&legacy, &json).unwrap();
    let old = CodeBe::load_file(&legacy).unwrap();
    assert_eq!(old.save_json(), json);

    // --- injected crash mid-save leaves the previous checkpoint intact --
    let (newer, _) = tiny_model(&["return Value & 255;", "y = 2;"]);
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=@0", vega_fault::sites::CKPT_SAVE_CRASH)).unwrap(),
    ));
    let crashed = newer.save_file(&path);
    vega_fault::set_plan(None);
    assert!(
        matches!(crashed, Err(CkptError::InjectedCrash)),
        "the fault site must surface as the named InjectedCrash error"
    );
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        envelope,
        "a crash mid-save must not touch the previous checkpoint"
    );
    let tmp = tmp_path(&path);
    assert!(
        tmp.exists(),
        "the crash leaves a truncated temp file behind"
    );
    assert!(
        std::fs::metadata(&tmp).unwrap().len() < envelope.len() as u64,
        "the temp file is the partial write, not a complete checkpoint"
    );
    assert!(
        matches!(CodeBe::load_file(&tmp), Err(CkptError::Corrupt(_))),
        "the partial temp file must never load as a checkpoint"
    );
    // The intact original still loads and behaves identically.
    let mut survivor = CodeBe::load_file(&path).unwrap();
    assert_eq!(
        generation(&mut survivor, &seqs[0]),
        generation(&mut model, &seqs[0])
    );
    // The injected crash showed up on the obs trace.
    assert!(
        vega_obs::global().counter(&format!(
            "fault.injected.{}",
            vega_fault::sites::CKPT_SAVE_CRASH
        )) >= 1
    );

    // A clean re-save replaces the checkpoint normally afterwards.
    newer.save_file(&path).unwrap();
    assert_ne!(std::fs::read_to_string(&path).unwrap(), envelope);
    CodeBe::load_file(&path).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
