//! `vega-ckpt/v2` binary checkpoint tests: v1 and v2 round-trip
//! bit-identically, a mapped model shares weights until written
//! (copy-on-write), and corrupted v2 files are rejected with named errors —
//! truncation, bit flips, version skew, a doctored tensor table, and an
//! injected crash mid-save.
//!
//! Everything runs in one `#[test]` because the fault plan is process-global
//! and the scenarios install and clear plans.

use vega_cpplite::lex;
use vega_fault::FaultPlan;
use vega_model::{
    tmp_path, tokens_to_pieces, CkptError, CkptFormat, CodeBe, TrainConfig, Vocab, V2_MAGIC,
};
use vega_nn::TransformerConfig;

/// A tiny transformer CodeBE over the pieces of `samples`, plus the encoded
/// sequences (mirrors the model crate's own unit-test helper).
fn tiny_model(samples: &[&str]) -> (CodeBe, Vec<Vec<usize>>) {
    let mut all_pieces: Vec<String> = Vec::new();
    for s in samples {
        all_pieces.extend(tokens_to_pieces(&lex(s).unwrap()));
    }
    let vocab = Vocab::build(all_pieces.iter().map(String::as_str));
    let seqs = samples
        .iter()
        .map(|s| vocab.encode_pieces(&tokens_to_pieces(&lex(s).unwrap())))
        .collect();
    (CodeBe::transformer(vocab, TransformerConfig::tiny), seqs)
}

/// Patches the v2 digest field after a deliberate header mutation, so the
/// file passes the integrity check and exercises the *structural* tensor
/// validation behind it.
fn refresh_digest(bytes: &mut [u8]) {
    let digest = vega_fault::fnv1a_64(&bytes[24..]);
    bytes[16..24].copy_from_slice(&digest.to_le_bytes());
}

#[test]
fn v2_checkpoints_roundtrip_share_weights_and_reject_corruption() {
    let dir = std::env::temp_dir().join("vega-model-ckpt-v2");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    let (mut model, seqs) = tiny_model(&["x = 1;", "return x;"]);
    // Train a little so the weights are not at init.
    let mut cfg = TrainConfig::tiny();
    cfg.finetune_epochs = 3;
    model.finetune(&[(seqs[0].clone(), seqs[1].clone())], &cfg);
    let json = model.save_json();
    let baseline = model.generate(&seqs[0], 8);
    let base_lp = model.sequence_logprob(&seqs[0], &seqs[1]);

    // --- v2 save -> load: detected format, bit-identical weights ---------
    model.save_file_v2(&path).unwrap();
    assert!(!tmp_path(&path).exists());
    let raw = std::fs::read(&path).unwrap();
    assert_eq!(&raw[..8], &V2_MAGIC);
    let (mut mapped, fmt) = CodeBe::load_file_detect(&path).unwrap();
    assert_eq!(fmt, CkptFormat::V2);
    assert_eq!(
        mapped.save_json(),
        json,
        "a v2 round trip must re-serialize to byte-identical v1 JSON"
    );
    assert_eq!(mapped.generate(&seqs[0], 8), baseline);
    assert_eq!(
        mapped.sequence_logprob(&seqs[0], &seqs[1]).to_bits(),
        base_lp.to_bits(),
        "logprobs must agree to the bit across formats"
    );
    // Plain load_file auto-detects too.
    assert_eq!(CodeBe::load_file(&path).unwrap().save_json(), json);

    // --- shared storage + copy-on-write ----------------------------------
    #[cfg(target_endian = "little")]
    assert_eq!(
        mapped.owned_scalars(),
        0,
        "a freshly loaded v2 model owns no weight data"
    );
    let mut replica = mapped.clone();
    replica.finetune(&[(seqs[1].clone(), seqs[0].clone())], &cfg);
    assert!(
        replica.owned_scalars() > 0,
        "training must copy tensors out of the mapping"
    );
    #[cfg(target_endian = "little")]
    assert_eq!(
        mapped.owned_scalars(),
        0,
        "training a replica must not detach the source model's weights"
    );
    assert_eq!(
        mapped.generate(&seqs[0], 8),
        baseline,
        "the mapped model must be untouched by replica training"
    );
    assert_eq!(
        CodeBe::load_file(&path).unwrap().save_json(),
        json,
        "the on-disk checkpoint must be untouched by replica training"
    );

    // --- v1 <-> v2 conversion is lossless ---------------------------------
    let v1_path = dir.join("model.v1.json");
    model.save_file_as(&v1_path, CkptFormat::V1).unwrap();
    let (via_v1, fmt) = CodeBe::load_file_detect(&v1_path).unwrap();
    assert_eq!(fmt, CkptFormat::V1);
    let v2_again = dir.join("model.again.ckpt");
    via_v1.save_file_as(&v2_again, CkptFormat::V2).unwrap();
    assert_eq!(
        std::fs::read(&v2_again).unwrap(),
        raw,
        "v1 -> v2 re-encode must be byte-identical to the original v2 file"
    );
    assert_eq!(CkptFormat::parse("v2"), Ok(CkptFormat::V2));
    assert!(CkptFormat::parse("v3").is_err());

    // --- truncation below the prologue: named Binary error ----------------
    let stub = dir.join("stub.ckpt");
    std::fs::write(&stub, &raw[..10]).unwrap();
    match CodeBe::load_file(&stub) {
        Err(CkptError::Binary { format, offset, .. }) => {
            assert_eq!(format, "vega-ckpt/v2");
            assert_eq!(offset, 10);
        }
        other => panic!("10-byte stub must be a Binary error, got {other:?}"),
    }

    // --- truncation mid-data: DigestMismatch ------------------------------
    let cut = dir.join("cut.ckpt");
    std::fs::write(&cut, &raw[..raw.len() - 3]).unwrap();
    assert!(
        matches!(
            CodeBe::load_file(&cut),
            Err(CkptError::DigestMismatch { .. })
        ),
        "a truncated data region must fail the digest check"
    );

    // --- bit flip in the weight data: DigestMismatch ----------------------
    let mut flipped = raw.clone();
    let n = flipped.len();
    flipped[n - 40] ^= 0x10;
    let bad = dir.join("bitflip.ckpt");
    std::fs::write(&bad, &flipped).unwrap();
    match CodeBe::load_file(&bad) {
        Err(CkptError::DigestMismatch { expected, found }) => assert_ne!(expected, found),
        other => panic!("bit flip must be a DigestMismatch, got {other:?}"),
    }

    // --- header length overrun: Binary error at the length field ----------
    let mut overrun = raw.clone();
    overrun[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
    let opath = dir.join("overrun.ckpt");
    std::fs::write(&opath, &overrun).unwrap();
    match CodeBe::load_file(&opath) {
        Err(CkptError::Binary { offset, .. }) => assert_eq!(offset, 8),
        other => panic!("header overrun must be a Binary error, got {other:?}"),
    }

    // --- future version byte: named VersionMismatch -----------------------
    let mut future = raw.clone();
    future[7] = b'3'; // VEGACKP3
    let fpath = dir.join("future.ckpt");
    std::fs::write(&fpath, &future).unwrap();
    match CodeBe::load_file(&fpath) {
        Err(CkptError::VersionMismatch { found }) => assert!(found.contains("VEGACKP3")),
        other => panic!("future magic must be a VersionMismatch, got {other:?}"),
    }

    // --- doctored tensor table (valid digest, bogus offset) ---------------
    // The first tensor sits at offset 0; nudging it to 1 breaks f32
    // alignment, which the loader must catch by bounds/alignment checks,
    // not by reading garbage.
    let mut doctored = raw.clone();
    let needle = b"\"off\":0";
    let at = doctored
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("header contains a tensor at offset 0");
    doctored[at + needle.len() - 1] = b'1';
    refresh_digest(&mut doctored);
    let dpath = dir.join("doctored.ckpt");
    std::fs::write(&dpath, &doctored).unwrap();
    match CodeBe::load_file(&dpath) {
        Err(CkptError::Payload(msg)) => assert!(
            msg.contains("byte"),
            "tensor-table rejection must name a byte offset, got: {msg}"
        ),
        other => panic!("doctored tensor table must be a Payload error, got {other:?}"),
    }

    // --- injected crash mid-save leaves the previous v2 file intact -------
    let (newer, _) = tiny_model(&["return Value & 255;", "y = 2;"]);
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=@0", vega_fault::sites::CKPT_SAVE_CRASH)).unwrap(),
    ));
    let crashed = newer.save_file_v2(&path);
    vega_fault::set_plan(None);
    assert!(matches!(crashed, Err(CkptError::InjectedCrash)));
    assert_eq!(
        std::fs::read(&path).unwrap(),
        raw,
        "a crash mid-save must not touch the previous v2 checkpoint"
    );
    let tmp = tmp_path(&path);
    assert!(tmp.exists());
    assert!(
        CodeBe::load_file(&tmp).is_err(),
        "the partial temp file must never load as a checkpoint"
    );
    assert!(
        vega_obs::global().counter(&format!(
            "fault.injected.{}",
            vega_fault::sites::CKPT_SAVE_CRASH
        )) >= 1
    );

    // A clean re-save replaces the checkpoint normally afterwards.
    newer.save_file_v2(&path).unwrap();
    assert_ne!(std::fs::read(&path).unwrap(), raw);
    CodeBe::load_file(&path).unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
