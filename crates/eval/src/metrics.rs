//! Accuracy metrics: pass@1 function accuracy (Fig. 8), statement-level
//! accuracy (Fig. 9 / Table 3), and the error taxonomy (Table 2).

use std::collections::BTreeMap;
use vega::{GeneratedBackend, GeneratedFunction};
use vega_corpus::{ArchSpec, Backend, Corpus, Module};
use vega_cpplite::{Function, Stmt};
use vega_minicc::regression_test;
use vega_treediff::align_stmts;

/// Evaluation of one generated function against its reference.
#[derive(Debug, Clone)]
pub struct FunctionEval {
    /// Interface name.
    pub name: String,
    /// Backend module.
    pub module: Module,
    /// Whether the function was assembled at all.
    pub generated: bool,
    /// pass@1 verdict.
    pub accurate: bool,
    /// Function-level confidence score (0 for baselines without scores).
    pub confidence: f64,
    /// Whether the generated statements span multiple training targets.
    pub multi_source: bool,
    /// Reference statement count.
    pub stmt_total: usize,
    /// Statements counted accurate (all of them when the function passes).
    pub stmt_accurate: usize,
    /// Statements needing manual modification or supplementation.
    pub stmt_manual: usize,
    /// Wrong target-specific value in an otherwise-aligned statement.
    pub err_v: bool,
    /// Confidence score contradicting statement correctness.
    pub err_cs: bool,
    /// Missing or spurious statements.
    pub err_def: bool,
}

/// Evaluation of a whole generated backend.
#[derive(Debug, Clone)]
pub struct BackendEval {
    /// Target name.
    pub target: String,
    /// Per-function results (functions absent from the base compiler — e.g.
    /// DIS on xCORE — are excluded, as in the paper).
    pub functions: Vec<FunctionEval>,
}

impl BackendEval {
    /// Function-level accuracy over all evaluated functions.
    pub fn function_accuracy(&self) -> f64 {
        ratio(
            self.functions.iter().filter(|f| f.accurate).count(),
            self.functions.len(),
        )
    }

    /// Function accuracy per module.
    pub fn module_accuracy(&self) -> BTreeMap<Module, (usize, usize)> {
        let mut m: BTreeMap<Module, (usize, usize)> = BTreeMap::new();
        for f in &self.functions {
            let e = m.entry(f.module).or_insert((0, 0));
            e.1 += 1;
            if f.accurate {
                e.0 += 1;
            }
        }
        m
    }

    /// `(accurate, manual)` statement counts per module (Table 3).
    pub fn module_stmt_counts(&self) -> BTreeMap<Module, (usize, usize)> {
        let mut m: BTreeMap<Module, (usize, usize)> = BTreeMap::new();
        for f in &self.functions {
            let e = m.entry(f.module).or_insert((0, 0));
            e.0 += f.stmt_accurate;
            e.1 += f.stmt_manual;
        }
        m
    }

    /// Statement-level accuracy over everything.
    pub fn stmt_accuracy(&self) -> f64 {
        let acc: usize = self.functions.iter().map(|f| f.stmt_accurate).sum();
        let man: usize = self.functions.iter().map(|f| f.stmt_manual).sum();
        ratio(acc, acc + man)
    }

    /// Error-type rates over all functions (Table 2).
    pub fn error_rates(&self) -> (f64, f64, f64) {
        let n = self.functions.len();
        (
            ratio(self.functions.iter().filter(|f| f.err_v).count(), n),
            ratio(self.functions.iter().filter(|f| f.err_cs).count(), n),
            ratio(self.functions.iter().filter(|f| f.err_def).count(), n),
        )
    }
}

fn ratio(a: usize, b: usize) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// Flattened view of a statement forest in alignment preorder.
fn flatten(stmts: &[Stmt]) -> Vec<&Stmt> {
    let mut out = Vec::new();
    fn walk<'a>(s: &'a Stmt, out: &mut Vec<&'a Stmt>) {
        out.push(s);
        for c in &s.children {
            walk(c, out);
        }
        for c in &s.else_children {
            walk(c, out);
        }
    }
    for s in stmts {
        walk(s, &mut out);
    }
    out
}

/// Statement-level comparison of a candidate against the reference.
struct StmtDiff {
    accurate: usize,
    manual: usize,
    value_mismatch: bool,
    missing_or_spurious: bool,
}

fn diff_stmts(candidate: &Function, reference: &Function) -> StmtDiff {
    let al = align_stmts(&candidate.body, &reference.body);
    let cand = flatten(&candidate.body);
    let refs = flatten(&reference.body);
    let mut matched_ref = vec![false; refs.len()];
    let mut accurate = 0usize;
    let mut value_mismatch = false;
    for (ci, ri) in &al.pairs {
        matched_ref[*ri] = true;
        let (c, r) = (cand[*ci], refs[*ri]);
        if c.kind == r.kind && c.head == r.head {
            accurate += 1;
        } else {
            value_mismatch = true;
        }
    }
    let missing = matched_ref.iter().filter(|m| !**m).count();
    let spurious = cand.len() - al.pairs.len();
    let mismatched = al.pairs.len() - accurate;
    StmtDiff {
        accurate,
        manual: missing + spurious + mismatched,
        value_mismatch,
        missing_or_spurious: missing + spurious > 0,
    }
}

/// Evaluates one generated function.
pub fn eval_function(
    gf: &GeneratedFunction,
    module: Module,
    reference: &Function,
    spec: &ArchSpec,
) -> FunctionEval {
    let stmt_total = reference.stmt_count();
    let (generated, accurate, diff) = match &gf.function {
        Some(f) => {
            let accurate = regression_test(&gf.name, f, reference, spec).passed();
            (true, accurate, Some(diff_stmts(f, reference)))
        }
        None => (false, false, None),
    };
    let (stmt_accurate, stmt_manual, err_v, err_def) = if accurate {
        (stmt_total, 0, false, false)
    } else {
        match &diff {
            Some(d) => (
                d.accurate,
                d.manual,
                d.value_mismatch,
                d.missing_or_spurious,
            ),
            None => (0, stmt_total, false, true),
        }
    };

    // Err-CS: a *confidence contradiction* — the score asserts near-certain
    // correctness (≥ 0.9) for a statement the reference does not contain, or
    // asserts incorrectness (< 0.5, dropped) for a statement the reference
    // does contain. Plain value mistakes at middling confidence are Err-V
    // territory, not calibration failures.
    let ref_lines: std::collections::HashSet<String> = flatten(&reference.body)
        .iter()
        .map(|s| s.head_line())
        .collect();
    let mut err_cs = false;
    for s in gf.stmts.iter().filter(|s| s.node != usize::MAX) {
        let line_matches = canonical_line(&s.line)
            .map(|l| ref_lines.contains(&l))
            .unwrap_or(false);
        if s.kept && s.score >= 0.9 && !line_matches && !accurate {
            err_cs = true;
        }
        if !s.kept && line_matches {
            err_cs = true;
        }
    }

    FunctionEval {
        name: gf.name.clone(),
        module,
        generated,
        accurate,
        confidence: gf.confidence,
        multi_source: gf.multi_source,
        stmt_total,
        stmt_accurate,
        stmt_manual,
        err_v,
        err_cs,
        err_def,
    }
}

/// Re-lexes a decoded line into the canonical `head_line` spelling so it can
/// be compared against reference lines.
fn canonical_line(line: &str) -> Option<String> {
    let stmts = vega_cpplite::parse_stmts(line).ok()?;
    stmts.first().map(|s| s.head_line())
}

/// Evaluates a VEGA-generated backend against the corpus reference.
pub fn eval_generated_backend(corpus: &Corpus, gen: &GeneratedBackend) -> BackendEval {
    let t = corpus.target(&gen.target).expect("target in corpus");
    let mut functions = Vec::new();
    for (module, gf) in &gen.functions {
        // The base compiler must implement the interface for pass@1 to be
        // defined (e.g. DIS does not exist for xCORE).
        let Some(reference) = t.backend.function(&gf.name) else {
            continue;
        };
        functions.push(eval_function(gf, *module, reference, &t.spec));
    }
    BackendEval {
        target: gen.target.clone(),
        functions,
    }
}

/// Evaluates a plain (score-less) candidate backend, e.g. ForkFlow output.
pub fn eval_plain_backend(corpus: &Corpus, candidate: &Backend, target: &str) -> BackendEval {
    let t = corpus.target(target).expect("target in corpus");
    let mut functions = Vec::new();
    for (name, module, reference) in t.backend.iter() {
        let Some(f) = candidate.function(name) else {
            functions.push(FunctionEval {
                name: name.to_string(),
                module,
                generated: false,
                accurate: false,
                confidence: 0.0,
                multi_source: false,
                stmt_total: reference.stmt_count(),
                stmt_accurate: 0,
                stmt_manual: reference.stmt_count(),
                err_v: false,
                err_cs: false,
                err_def: true,
            });
            continue;
        };
        let accurate = regression_test(name, f, reference, &t.spec).passed();
        let stmt_total = reference.stmt_count();
        let d = diff_stmts(f, reference);
        let (sa, sm) = if accurate {
            (stmt_total, 0)
        } else {
            (d.accurate, d.manual)
        };
        functions.push(FunctionEval {
            name: name.to_string(),
            module,
            generated: true,
            accurate,
            confidence: 0.0,
            multi_source: false,
            stmt_total,
            stmt_accurate: sa,
            stmt_manual: sm,
            err_v: !accurate && d.value_mismatch,
            err_cs: false,
            err_def: !accurate && d.missing_or_spurious,
        });
    }
    BackendEval {
        target: target.to_string(),
        functions,
    }
}

/// The corrected compiler of §4.3: generated-and-accurate functions kept,
/// every inaccurate one replaced by its base-compiler reference.
pub fn corrected_backend(corpus: &Corpus, eval: &BackendEval, gen: &GeneratedBackend) -> Backend {
    let t = corpus.target(&gen.target).expect("target");
    let mut out = t.backend.clone();
    for fe in &eval.functions {
        if fe.accurate {
            if let Some(gf) = gen.function(&fe.name) {
                if let Some(f) = &gf.function {
                    out.replace(&fe.name, f.clone());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vega_corpus::{Corpus, CorpusConfig};

    #[test]
    fn reference_as_candidate_scores_perfectly() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let rv = corpus.target("RISCV").unwrap();
        let eval = eval_plain_backend(&corpus, &rv.backend.clone(), "RISCV");
        assert!(eval.function_accuracy() > 0.999);
        assert_eq!(eval.stmt_accuracy(), 1.0);
        let (v, cs, d) = eval.error_rates();
        assert_eq!((v, cs, d), (0.0, 0.0, 0.0));
    }

    #[test]
    fn forkflow_scores_poorly_but_nonzero_totals() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let ff = vega_forkflow::forkflow_backend(&corpus, "Mips", "RISCV");
        let eval = eval_plain_backend(&corpus, &ff, "RISCV");
        assert!(!eval.functions.is_empty());
        assert!(eval.function_accuracy() < 0.5);
        // Statement counts are consistent.
        for f in &eval.functions {
            assert!(f.stmt_accurate + f.stmt_manual >= f.stmt_total.min(1));
        }
    }

    #[test]
    fn missing_candidate_function_counts_as_err_def() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let rv = corpus.target("RISCV").unwrap();
        // A candidate backend with a single function: everything else counts
        // as missing with full manual effort.
        let mut partial = vega_corpus::Backend::new("RISCV");
        partial.insert(
            Module::Reg,
            rv.backend.function("getPointerRegClass").unwrap().clone(),
        );
        let eval = eval_plain_backend(&corpus, &partial, "RISCV");
        let missing: Vec<_> = eval.functions.iter().filter(|f| !f.generated).collect();
        assert!(!missing.is_empty());
        for f in &missing {
            assert!(f.err_def && !f.accurate);
            assert_eq!(f.stmt_manual, f.stmt_total);
        }
        let present = eval
            .functions
            .iter()
            .find(|f| f.name == "getPointerRegClass")
            .unwrap();
        assert!(present.accurate);
    }

    #[test]
    fn stmt_diff_counts_value_mismatch() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        let rv = corpus.target("RISCV").unwrap();
        let reference = rv.backend.function("getFrameRegister").unwrap();
        // Same structure, one wrong register value (the return-address reg
        // instead of the frame pointer) — aligns but mismatches.
        let wrong = vega_cpplite::parse_function(&format!(
            "unsigned RISCVRegisterInfo::getFrameRegister(const MachineFunction &MF) {{ if (MF.hasFP()) {{ return RISCV::{}; }} return RISCV::{}; }}",
            rv.spec.ra_reg, rv.spec.sp_reg
        ))
        .unwrap();
        let mut cand = rv.backend.clone();
        cand.replace("getFrameRegister", wrong);
        let eval = eval_plain_backend(&corpus, &cand, "RISCV");
        let f = eval
            .functions
            .iter()
            .find(|f| f.name == "getFrameRegister")
            .unwrap();
        assert!(!f.accurate);
        assert!(f.err_v, "value mismatch must be Err-V");
        assert!(f.stmt_accurate > 0, "aligned-equal statements still count");
        assert!(f.stmt_manual > 0);
    }

    #[test]
    fn xcore_dis_functions_excluded() {
        let corpus = Corpus::build(&CorpusConfig::tiny());
        // The xCORE base backend has no DIS functions, so a fork from a
        // DIS-capable target must not produce DIS rows.
        let ff = vega_forkflow::forkflow_backend(&corpus, "Mips", "XCore");
        let eval = eval_plain_backend(&corpus, &ff, "XCore");
        assert!(eval.functions.iter().all(|f| f.module != Module::Dis));
    }
}
