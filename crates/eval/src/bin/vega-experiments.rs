//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! vega-experiments [all|headline|fig6|fig7|fig8|table2|fig9|table3|table4|
//!                   fig10|verify|robustness|ablation-split|ablation-model]
//!                  [--scale tiny|small] [--synthetic N] [--epochs E]
//!                  [--pretrain STEPS] [--seed S] [--threads N]
//!                  [--trace-out PATH] [--save-model PATH] [--load-model PATH]
//!                  [--ckpt-format v1|v2] [--model transformer|gru]
//! ```
//!
//! `all` trains once and renders every artifact off the same model; the
//! ablations train additional models. Progress messages go through the
//! `vega-obs` event log (set `VEGA_LOG=info` to see them); `--trace-out`
//! writes the full span/metric/curve trace as JSON lines. `--threads`
//! overrides the `vega-par` pool size (default: `VEGA_THREADS` or the core
//! count); results are bit-identical for any value.
//!
//! `--save-model` writes the trained CodeBE checkpoint after stage 2;
//! `--ckpt-format` picks the on-disk layout (`v2`, the default, is the
//! binary mmap-shareable `vega-ckpt/v2`; `v1` is the JSON envelope).
//! `--load-model` skips training and reuses such a checkpoint — the format
//! is auto-detected from the file, and a malformed file is rejected with
//! the detected format and the offending byte offset. The checkpoint must
//! have been produced with the same `--scale`/`--synthetic`/`--seed`, or
//! loading fails with a vocabulary mismatch. `vega-serve` consumes the
//! same files.
//!
//! `--model gru` trains the GRU baseline instead of the transformer — the
//! cheap way to produce a speculation draft checkpoint for
//! `vega-serve --draft` (a draft must be GRU-backed).

use std::path::PathBuf;
use std::time::Instant;
use vega::{Scale, Split, Vega, VegaConfig};
use vega_eval::exp::{self, Workbench};
use vega_eval::pct;
use vega_model::ModelChoice;

struct Args {
    command: String,
    scale: Scale,
    synthetic: Option<usize>,
    epochs: Option<usize>,
    pretrain: Option<usize>,
    seed: u64,
    threads: Option<usize>,
    trace_out: Option<PathBuf>,
    save_model: Option<PathBuf>,
    load_model: Option<PathBuf>,
    ckpt_format: vega_model::CkptFormat,
    model: ModelChoice,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: "all".to_string(),
        scale: Scale::Small,
        synthetic: None,
        epochs: None,
        pretrain: None,
        seed: 0,
        threads: None,
        trace_out: None,
        save_model: None,
        load_model: None,
        ckpt_format: vega_model::CkptFormat::V2,
        model: ModelChoice::Transformer,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                args.scale = match argv.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    _ => Scale::Small,
                };
            }
            "--synthetic" => {
                i += 1;
                args.synthetic = argv.get(i).and_then(|v| v.parse().ok());
            }
            "--epochs" => {
                i += 1;
                args.epochs = argv.get(i).and_then(|v| v.parse().ok());
            }
            "--pretrain" => {
                i += 1;
                args.pretrain = argv.get(i).and_then(|v| v.parse().ok());
            }
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(0);
            }
            "--threads" => {
                i += 1;
                args.threads = argv.get(i).and_then(|v| v.parse().ok());
            }
            "--trace-out" => {
                i += 1;
                args.trace_out = argv.get(i).map(PathBuf::from);
            }
            "--save-model" => {
                i += 1;
                args.save_model = argv.get(i).map(PathBuf::from);
            }
            "--load-model" => {
                i += 1;
                args.load_model = argv.get(i).map(PathBuf::from);
            }
            "--ckpt-format" => {
                i += 1;
                let name = argv.get(i).map(String::as_str).unwrap_or("");
                args.ckpt_format = vega_model::CkptFormat::parse(name).unwrap_or_else(|e| {
                    vega_obs::error!("--ckpt-format: {e}");
                    std::process::exit(2);
                });
            }
            "--model" => {
                i += 1;
                args.model = match argv.get(i).map(String::as_str) {
                    Some("gru") => ModelChoice::Gru,
                    Some("transformer") | None => ModelChoice::Transformer,
                    Some(other) => {
                        vega_obs::error!(
                            "--model: unknown architecture `{other}` (transformer|gru)"
                        );
                        std::process::exit(2);
                    }
                };
            }
            cmd if !cmd.starts_with("--") => args.command = cmd.to_string(),
            other => vega_obs::warn!("ignoring unknown flag {other}"),
        }
        i += 1;
    }
    args
}

fn config_from(args: &Args) -> VegaConfig {
    let mut cfg = match args.scale {
        Scale::Tiny => VegaConfig::tiny(),
        Scale::Small => VegaConfig::default(),
    };
    if let Some(n) = args.synthetic {
        cfg.corpus.synthetic_targets = n;
    }
    if let Some(e) = args.epochs {
        cfg.train.finetune_epochs = e;
    }
    if let Some(p) = args.pretrain {
        cfg.train.pretrain_steps = p;
    }
    cfg.seed = args.seed;
    cfg.train.seed = args.seed ^ 1;
    cfg.model = args.model;
    cfg
}

fn ablation_split(base: &VegaConfig) -> String {
    // Function-group split vs backend split: accuracy drop per target.
    let mut out = String::from("§4.2 ablation — function-group vs backend-based split\n");
    let acc = |split: Split| -> Vec<(String, f64)> {
        let mut cfg = base.clone();
        cfg.split = split;
        let mut vega = Vega::train(cfg);
        vega_corpus::EVAL_TARGET_NAMES
            .iter()
            .map(|t| {
                let gen = vega.generate_backend(t);
                let ev = vega_eval::eval_generated_backend(&vega.corpus, &gen);
                (t.to_string(), ev.function_accuracy())
            })
            .collect()
    };
    let fg = acc(Split::FunctionGroup);
    let be = acc(Split::Backend);
    let mut t =
        vega_eval::TextTable::new(["Target", "FunctionGroup split", "Backend split", "Drop"]);
    for ((name, a), (_, b)) in fg.iter().zip(&be) {
        t.row([
            name.clone(),
            pct(*a),
            pct(*b),
            format!("{:+.1}pp", 100.0 * (b - a)),
        ]);
    }
    out.push_str(&t.render());
    out
}

fn ablation_model(base: &VegaConfig) -> String {
    // Pretrained transformer vs no-pretraining vs GRU.
    let mut out = String::from("§4.1.2 ablation — model architecture and pre-training\n");
    let run = |label: &str, model: ModelChoice, pretrain: usize| -> (String, Vec<f64>) {
        let mut cfg = base.clone();
        cfg.model = model;
        cfg.train.pretrain_steps = pretrain;
        let mut vega = Vega::train(cfg);
        let accs = vega_corpus::EVAL_TARGET_NAMES
            .iter()
            .map(|t| {
                let gen = vega.generate_backend(t);
                vega_eval::eval_generated_backend(&vega.corpus, &gen).function_accuracy()
            })
            .collect();
        (label.to_string(), accs)
    };
    let arms = vec![
        run(
            "Transformer + pretraining (CodeBE)",
            ModelChoice::Transformer,
            base.train.pretrain_steps.max(1),
        ),
        run("Transformer, no pretraining", ModelChoice::Transformer, 0),
        run("GRU seq2seq (RNN-based VEGA)", ModelChoice::Gru, 0),
    ];
    let mut t = vega_eval::TextTable::new(["Model", "RISC-V", "RI5CY", "xCORE"]);
    for (label, accs) in arms {
        t.row([label, pct(accs[0]), pct(accs[1]), pct(accs[2])]);
    }
    out.push_str(&t.render());
    out
}

fn main() {
    let args = parse_args();
    if let Some(n) = args.threads {
        vega_par::set_threads(n);
    }
    // Results are bit-identical at any thread count *within* a kernel mode,
    // so surface the resolved mode next to the run's other reproducibility
    // inputs (seed, scale) before any math runs.
    vega_obs::info!(
        "[vega-experiments] kernel={} threads={}",
        vega_nn::kernel::active_name(),
        vega_par::threads()
    );
    let cfg = config_from(&args);
    run(&args, &cfg);
    if let Some(path) = &args.trace_out {
        match vega_obs::global().write_trace(path) {
            Ok(()) => vega_obs::info!("trace written to {}", path.display()),
            Err(e) => vega_obs::error!("failed to write trace {}: {e}", path.display()),
        }
    }
}

fn run(args: &Args, cfg: &VegaConfig) {
    let t0 = Instant::now();

    match args.command.as_str() {
        "ablation-split" => {
            println!("{}", ablation_split(cfg));
            return;
        }
        "ablation-model" => {
            println!("{}", ablation_model(cfg));
            return;
        }
        _ => {}
    }

    let checkpoint = args.load_model.as_ref().map(|path| {
        let (model, format) = vega_model::CodeBe::load_file_detect(path).unwrap_or_else(|e| {
            vega_obs::error!("cannot load checkpoint {}: {e}", path.display());
            std::process::exit(2);
        });
        vega_obs::info!(
            "[vega-experiments] loaded checkpoint {} ({}, {}, {} pieces)",
            path.display(),
            format,
            model.arch_name(),
            model.vocab.len()
        );
        model
    });
    if checkpoint.is_none() {
        vega_obs::info!("[vega-experiments] training (scale {:?}) …", cfg.scale);
    }
    let mut wb = Workbench::run_with(cfg.clone(), checkpoint).unwrap_or_else(|e| {
        vega_obs::error!("{e}");
        std::process::exit(2);
    });
    if let Some(path) = &args.save_model {
        // Crash-safe write: digest-stamped bytes to a temp file, then an
        // atomic rename, so a crash mid-save never clobbers an old checkpoint.
        match wb.vega.model().save_file_as(path, args.ckpt_format) {
            Ok(()) => vega_obs::info!(
                "[vega-experiments] checkpoint saved to {} ({})",
                path.display(),
                args.ckpt_format
            ),
            Err(e) => {
                vega_obs::error!("cannot write checkpoint {}: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    vega_obs::info!(
        "[vega-experiments] trained in {:.1}s (stage1 {:.1}s, stage2 {:.1}s); {} templates, {} train samples",
        t0.elapsed().as_secs_f64(),
        wb.vega.timings.code_feature_mapping.as_secs_f64(),
        wb.vega.timings.model_creation.as_secs_f64(),
        wb.vega.templates.len(),
        wb.vega.train_samples.len(),
    );

    let run_one = |wb: &mut Workbench, cmd: &str| -> Option<String> {
        Some(match cmd {
            "headline" => exp::headline(wb),
            "fig6" => exp::fig6(wb),
            "fig7" => exp::fig7(wb),
            "fig8" => exp::fig8(wb),
            "table2" => exp::table2(wb),
            "fig9" => exp::fig9(wb),
            "table3" => exp::table3(wb),
            "table4" => exp::table4(wb),
            "fig10" => exp::fig10(wb),
            "robustness" => exp::robustness(wb),
            "verify" => exp::verification(wb),
            "update" => exp::update_mechanism(wb),
            _ => return None,
        })
    };

    if args.command == "all" {
        for cmd in [
            "headline",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "fig9",
            "table3",
            "table4",
            "fig10",
            "robustness",
            "verify",
            "update",
        ] {
            println!("{}", run_one(&mut wb, cmd).unwrap());
        }
        println!("{}", ablation_split(cfg));
        println!("{}", ablation_model(cfg));
    } else {
        match run_one(&mut wb, &args.command) {
            Some(text) => println!("{text}"),
            None => vega_obs::error!("unknown command `{}`", args.command),
        }
    }
    vega_obs::info!(
        "[vega-experiments] done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
