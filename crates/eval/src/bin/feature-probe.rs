//! Developer diagnostics: dump a template's discovered properties and each
//! slot's candidates for a target, without training anything.

use std::collections::BTreeMap;
use vega::{prop_catalog, select_features, FunctionTemplate, TgtIndex};
use vega_corpus::{Corpus, CorpusConfig};

fn main() {
    let group = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "isLegalImmediate".into());
    let target = std::env::args().nth(2).unwrap_or_else(|| "RISCV".into());
    let corpus = Corpus::build(&CorpusConfig::tiny());
    let catalog = prop_catalog(corpus.llvm_fs());
    let groups = corpus.function_groups(false);
    let Some((_, members)) = groups.get(&group) else {
        vega_obs::error!(
            "unknown function group `{group}`; available groups: {}",
            groups.keys().cloned().collect::<Vec<_>>().join(", ")
        );
        std::process::exit(2);
    };
    let template = FunctionTemplate::build(&group, members);
    let mut ixs = BTreeMap::new();
    for t in &template.targets {
        let data = corpus
            .try_target(t)
            .expect("template member targets come from the corpus");
        ixs.insert(t.clone(), TgtIndex::build(&data.descriptions));
    }
    let feats = select_features(&template, &catalog, &ixs);
    println!("properties:");
    for (i, p) in feats.props.iter().enumerate() {
        println!(
            "  [{i}] {} bool={} source={:?}",
            p.name, p.is_bool, p.source
        );
    }
    let tix = match corpus.try_target(&target) {
        Ok(data) => TgtIndex::build(&data.descriptions),
        Err(e) => {
            vega_obs::error!("{e}");
            std::process::exit(2);
        }
    };
    for (node_id, node) in template.stmts.iter().enumerate() {
        for (slot_id, slot) in node.slots.iter().enumerate() {
            let prop = feats.slot_props.get(&(node_id, slot_id));
            let vals: Vec<String> = slot
                .values
                .iter()
                .map(|(t, v)| format!("{t}={}", vega_cpplite::render_tokens(v)))
                .collect();
            let cands = prop
                .and_then(|p| feats.props[*p].source.as_ref())
                .map(|s| tix.candidates(s))
                .unwrap_or_default();
            println!(
                "node {node_id} ({:?}) slot {slot_id}: prop={:?} train={:?} cands({target})={:?}",
                node.kind,
                prop.map(|p| feats.props[*p].name.clone()),
                vals,
                cands
            );
        }
    }
}
