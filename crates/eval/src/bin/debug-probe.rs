//! Developer diagnostics: train briefly, then dump verification exact-match,
//! training-sample shapes, and the raw generation transcript for one group.

use vega::{Scale, Vega, VegaConfig};
use vega_model::TrainConfig;

fn main() {
    let group = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "getRelocType".into());
    let epochs: usize = std::env::var("EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let pretrain: usize = std::env::var("PRETRAIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let synthetic: usize = std::env::var("SYN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut cfg = VegaConfig {
        scale: Scale::Small,
        ..VegaConfig::tiny()
    };
    cfg.corpus.synthetic_targets = synthetic;
    cfg.train = TrainConfig {
        pretrain_steps: pretrain,
        finetune_epochs: epochs,
        lr: 2e-3,
        seed: 1,
    };

    let mut vega = Vega::train(cfg);
    vega_obs::info!(
        "templates={} train={} verify={} stage2={:.0}s",
        vega.templates.len(),
        vega.train_samples.len(),
        vega.verify_samples.len(),
        vega.timings.model_creation.as_secs_f64()
    );

    // Sample shapes.
    let mut in_len = 0usize;
    let mut out_len = 0usize;
    for s in &vega.train_samples {
        in_len = in_len.max(s.input.len());
        out_len = out_len.max(s.output.len());
    }
    vega_obs::info!("max input len {in_len}, max output len {out_len}");

    // Verification exact match on a subsample.
    let sub: Vec<(Vec<usize>, Vec<usize>)> = vega
        .verify_samples
        .iter()
        .take(120)
        .map(|s| (s.input.clone(), s.output.clone()))
        .collect();
    let em = vega.model_mut().exact_match(&sub, 72);
    vega_obs::info!(
        "verification exact match (first {} samples): {:.1}%",
        sub.len(),
        100.0 * em
    );

    // A couple of verify samples: expected vs generated.
    for s in vega
        .verify_samples
        .iter()
        .take(6)
        .cloned()
        .collect::<Vec<_>>()
    {
        let gen = vega.model_mut().generate(&s.input, 72);
        let vocab = &vega.model_mut().vocab;
        vega_obs::debug!(
            "[{}::{}::{}]\n  expect: {:?} {}\n  gen:    {:?} {}",
            s.group,
            s.target,
            s.node,
            s.output.first().and_then(|&i| vocab.score_of(i)),
            vocab.decode_spellings(&s.output).join(" "),
            gen.first().and_then(|&i| vocab.score_of(i)),
            vocab.decode_spellings(&gen).join(" "),
        );
    }

    // Full generation transcript for one group on RISC-V.
    let backend = vega.generate_backend("RISCV");
    let Some(gf) = backend.function(&group) else {
        vega_obs::error!(
            "unknown function group `{group}`; available groups: {}",
            backend
                .functions
                .iter()
                .map(|(_, f)| f.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(2);
    };
    println!(
        "\n=== generated {group} (confidence {:.2}) ===",
        gf.confidence
    );
    for s in &gf.stmts {
        println!(
            "[{:.2}]{} {}",
            s.score,
            if s.kept { ' ' } else { 'x' },
            s.line
        );
    }
    // Whole-backend verdicts with first counterexamples.
    let reference = match vega.corpus.try_target("RISCV") {
        Ok(t) => t,
        Err(e) => {
            vega_obs::error!("{e}");
            std::process::exit(2);
        }
    };
    println!("\n=== per-function verdicts (RISCV) ===");
    for (module, gf) in &backend.functions {
        let Some(rf) = reference.backend.function(&gf.name) else {
            continue;
        };
        let verdict = match &gf.function {
            Some(f) => match vega_minicc::regression_test(&gf.name, f, rf, &reference.spec) {
                vega_minicc::RegressionOutcome::Pass => "PASS".to_string(),
                vega_minicc::RegressionOutcome::Fail {
                    vector,
                    expected,
                    got,
                } => {
                    format!("fail v{vector}: want {expected} got {got}")
                }
                vega_minicc::RegressionOutcome::NoSuite => "nosuite".to_string(),
            },
            None => "NOT ASSEMBLED".to_string(),
        };
        println!("  {module} {:<26} {verdict}", gf.name);
    }
    let rf = reference.backend.function(&group).expect("reference");
    println!("\n=== reference ===\n{}", vega_cpplite::render_function(rf));
    if let Some(f) = &gf.function {
        println!("=== assembled ===\n{}", vega_cpplite::render_function(f));
        let out = vega_minicc::regression_test(&group, f, rf, &reference.spec);
        println!("regression: {out:?}");
    } else {
        println!("=== did not assemble ===");
    }
}
