//! Plain-text table rendering for experiment reports.

/// A fixed-width text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            format!("| {} |", cells.join(" | "))
        };
        let sep = format!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Module", "Acc"]);
        t.row(["SEL", "55.0%"]).row(["REG", "100.0%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("| SEL"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.715), "71.5%");
        assert_eq!(pct(0.0), "0.0%");
    }
}
