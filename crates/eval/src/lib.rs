//! `vega-eval`: evaluation metrics and the paper's experiments.
//!
//! * [`metrics`] — pass@1 function accuracy, statement-level accuracy and
//!   the Err-V/Err-CS/Err-Def taxonomy, for VEGA output and plain baselines;
//! * [`effort`] — the Table 4 manual-effort model, calibrated on the paper's
//!   two developers;
//! * [`exp`] — one driver per table/figure ([`exp::fig7`] … [`exp::fig10`]),
//!   all running off a single trained [`exp::Workbench`];
//! * [`report`] — plain-text table rendering.
//!
//! The `vega-experiments` binary regenerates every artifact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod effort;
pub mod exp;
pub mod metrics;
pub mod report;

pub use effort::DeveloperProfile;
pub use exp::Workbench;
pub use metrics::{
    corrected_backend, eval_function, eval_generated_backend, eval_plain_backend, BackendEval,
    FunctionEval,
};
pub use report::{pct, TextTable};
