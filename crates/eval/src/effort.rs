//! The manual-effort model behind Table 4.
//!
//! Table 4 reports human hours spent correcting the VEGA-generated RISC-V
//! backend. We model hours as `manual statements × minutes-per-statement`,
//! with per-module minutes calibrated from the paper's own data (Developer A
//! hours ÷ Developer A manual statements per module, and likewise B):
//! e.g. SEL: 21.83 h over 3,747 statements ≈ 0.35 min/stmt; REG: 0.41 h over
//! 35 ≈ 0.70 min/stmt.

use std::collections::BTreeMap;
use vega_corpus::Module;

/// A developer's per-module correction speed in minutes per statement.
#[derive(Debug, Clone)]
pub struct DeveloperProfile {
    /// Display name.
    pub name: &'static str,
    minutes: BTreeMap<Module, f64>,
}

impl DeveloperProfile {
    /// Developer A: third-year PhD candidate, compiler mid-ends.
    pub fn developer_a() -> Self {
        DeveloperProfile {
            name: "Developer A",
            minutes: [
                (Module::Sel, 21.83 * 60.0 / 3747.0),
                (Module::Reg, 0.41 * 60.0 / 35.0),
                (Module::Opt, 7.23 * 60.0 / 1204.0),
                (Module::Sch, 3.17 * 60.0 / 281.0),
                (Module::Emi, 4.15 * 60.0 / 589.0),
                (Module::Ass, 5.17 * 60.0 / 1310.0),
                (Module::Dis, 0.58 * 60.0 / 57.0),
            ]
            .into_iter()
            .collect(),
        }
    }

    /// Developer B: compiler engineer, RISC-V performance work.
    pub fn developer_b() -> Self {
        DeveloperProfile {
            name: "Developer B",
            minutes: [
                (Module::Sel, 17.47 * 60.0 / 3747.0),
                (Module::Reg, 0.39 * 60.0 / 35.0),
                (Module::Opt, 10.87 * 60.0 / 1204.0),
                (Module::Sch, 3.04 * 60.0 / 281.0),
                (Module::Emi, 7.47 * 60.0 / 589.0),
                (Module::Ass, 7.90 * 60.0 / 1310.0),
                (Module::Dis, 0.98 * 60.0 / 57.0),
            ]
            .into_iter()
            .collect(),
        }
    }

    /// Hours to correct `manual_stmts` statements in `module`.
    pub fn hours(&self, module: Module, manual_stmts: usize) -> f64 {
        self.minutes.get(&module).copied().unwrap_or(0.4) * manual_stmts as f64 / 60.0
    }

    /// Per-module and total hours for a manual-statement breakdown.
    pub fn estimate(
        &self,
        manual_per_module: &BTreeMap<Module, usize>,
    ) -> (BTreeMap<Module, f64>, f64) {
        let per: BTreeMap<Module, f64> = manual_per_module
            .iter()
            .map(|(m, n)| (*m, self.hours(*m, *n)))
            .collect();
        let total = per.values().sum();
        (per, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_paper_hours() {
        // Feeding the paper's own Table 3 manual counts must reproduce the
        // paper's Table 4 hours (by construction of the calibration).
        let paper_manual: BTreeMap<Module, usize> = [
            (Module::Sel, 3747),
            (Module::Reg, 35),
            (Module::Opt, 1204),
            (Module::Sch, 281),
            (Module::Emi, 589),
            (Module::Ass, 1310),
            (Module::Dis, 57),
        ]
        .into_iter()
        .collect();
        let (per, total) = DeveloperProfile::developer_a().estimate(&paper_manual);
        assert!((total - 42.54).abs() < 0.05, "total {total}");
        assert!((per[&Module::Sel] - 21.83).abs() < 0.01);
        let (_, total_b) = DeveloperProfile::developer_b().estimate(&paper_manual);
        assert!((total_b - 48.12).abs() < 0.05, "total B {total_b}");
    }

    #[test]
    fn hours_scale_linearly() {
        let dev = DeveloperProfile::developer_a();
        let h1 = dev.hours(Module::Sel, 100);
        let h2 = dev.hours(Module::Sel, 200);
        assert!((h2 - 2.0 * h1).abs() < 1e-9);
    }
}
