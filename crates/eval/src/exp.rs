//! Experiment drivers: one function per paper table/figure.
//!
//! A [`Workbench`] holds one trained VEGA plus the generated and evaluated
//! backends for the three evaluation targets; each `fig*`/`table*` function
//! renders the corresponding artifact as a text table whose rows mirror the
//! paper's.

use crate::effort::DeveloperProfile;
use crate::metrics::{corrected_backend, eval_generated_backend, eval_plain_backend, BackendEval};
use crate::report::{pct, TextTable};
use std::fmt::Write as _;
use vega::{GeneratedBackend, ModelLoadError, Vega, VegaConfig};
use vega_corpus::{Module, EVAL_TARGET_NAMES};
use vega_forkflow::forkflow_backend;
use vega_minicc::{benchmark_suite, run_kernel, BackendVm, OptLevel};

/// One trained VEGA with everything the per-figure drivers need.
pub struct Workbench {
    /// The trained system.
    pub vega: Vega,
    /// Generated backends for RISC-V, RI5CY, xCORE.
    pub backends: Vec<GeneratedBackend>,
    /// pass@1 evaluations of the generated backends.
    pub evals: Vec<BackendEval>,
    /// ForkFlow (forked from MIPS) evaluations for the same targets.
    pub ff_evals: Vec<BackendEval>,
}

impl Workbench {
    /// Trains VEGA and generates + evaluates all three target backends.
    pub fn run(config: VegaConfig) -> Self {
        Self::run_with(config, None)
            .expect("training from scratch cannot hit a checkpoint mismatch")
    }

    /// As [`Workbench::run`], but stage 2 can be replaced by a loaded
    /// checkpoint (`--load-model`).
    ///
    /// # Errors
    /// Returns [`ModelLoadError`] when the checkpoint does not fit the
    /// configured corpus/scale.
    pub fn run_with(
        config: VegaConfig,
        checkpoint: Option<vega_model::CodeBe>,
    ) -> Result<Self, ModelLoadError> {
        let mut vega = match checkpoint {
            Some(model) => Vega::with_model(config, model)?,
            None => Vega::train(config),
        };
        let mut backends = Vec::new();
        let mut evals = Vec::new();
        let mut ff_evals = Vec::new();
        for target in EVAL_TARGET_NAMES {
            let gen = vega.generate_backend(target);
            evals.push(eval_generated_backend(&vega.corpus, &gen));
            backends.push(gen);
            let ff = forkflow_backend(&vega.corpus, "Mips", target);
            ff_evals.push(eval_plain_backend(&vega.corpus, &ff, target));
        }
        Ok(Workbench {
            vega,
            backends,
            evals,
            ff_evals,
        })
    }
}

/// Fig. 6 — targets, ISAs and function modules.
pub fn fig6(wb: &Workbench) -> String {
    let mut t = TextTable::new([
        "Target",
        "Class",
        "WordBits",
        "Endian",
        "Key traits",
        "Modules",
    ]);
    let mut missing = Vec::new();
    for name in EVAL_TARGET_NAMES {
        let spec = match wb.vega.corpus.try_target(name) {
            Ok(t) => &t.spec,
            Err(e) => {
                missing.push(e.to_string());
                continue;
            }
        };
        let tr = &spec.traits;
        let mut traits = Vec::new();
        for (flag, label) in [
            (tr.has_compressed, "compressed"),
            (tr.has_hwloop, "hwloop"),
            (tr.has_simd, "simd"),
            (tr.has_mac, "mac"),
            (tr.has_threads, "threads"),
            (tr.has_fpu, "fpu"),
        ] {
            if flag {
                traits.push(label);
            }
        }
        let class = match name {
            "RISCV" => "GPP",
            "RI5CY" => "ULP",
            _ => "IoT",
        };
        let modules: Vec<&str> = Module::ALL
            .iter()
            .filter(|m| **m != Module::Dis || tr.has_disassembler)
            .map(|m| m.code())
            .collect();
        t.row([
            name.to_string(),
            class.to_string(),
            spec.word_bits.to_string(),
            format!("{:?}", spec.endian),
            traits.join("+"),
            modules.join(","),
        ]);
    }
    let mut out = format!(
        "Fig. 6 — evaluation targets and their function modules\n{}",
        t.render()
    );
    for e in missing {
        let _ = writeln!(out, "skipped: {e}");
    }
    out
}

/// Fig. 7 — inference time per module per target.
pub fn fig7(wb: &Workbench) -> String {
    let mut t = TextTable::new([
        "Target", "SEL", "REG", "OPT", "SCH", "EMI", "ASS", "DIS", "Total",
    ]);
    for b in &wb.backends {
        let mut row = vec![b.target.clone()];
        for m in Module::ALL {
            let d = b.module_times.get(&m).copied().unwrap_or_default();
            row.push(format!("{:.1}s", d.as_secs_f64()));
        }
        row.push(format!("{:.1}s", b.total_time.as_secs_f64()));
        t.row(row);
    }
    format!(
        "Fig. 7 — backend generation (inference) time per module\n{}",
        t.render()
    )
}

/// Fig. 8 — function-level pass@1 accuracy per module, with the confidence
/// split and the multi-target share.
pub fn fig8(wb: &Workbench) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 8 — pass@1 function accuracy per module");
    for ev in &wb.evals {
        let mut t = TextTable::new([
            "Module",
            "Funcs",
            "Accurate",
            "Acc%",
            "CS≈1.00",
            "CS<1.00",
            "MultiTarget",
        ]);
        for m in Module::ALL {
            let fs: Vec<_> = ev.functions.iter().filter(|f| f.module == m).collect();
            if fs.is_empty() {
                continue;
            }
            let acc: Vec<_> = fs.iter().filter(|f| f.accurate).collect();
            let cs1 = acc.iter().filter(|f| f.confidence > 0.99).count();
            let multi = acc.iter().filter(|f| f.multi_source).count();
            t.row([
                m.code().to_string(),
                fs.len().to_string(),
                acc.len().to_string(),
                pct(acc.len() as f64 / fs.len() as f64),
                cs1.to_string(),
                (acc.len() - cs1).to_string(),
                multi.to_string(),
            ]);
        }
        let _ = writeln!(
            out,
            "\n[{}] overall function accuracy: {}\n{}",
            ev.target,
            pct(ev.function_accuracy()),
            t.render()
        );
    }
    out
}

/// Table 2 — sources of inaccurate statements.
pub fn table2(wb: &Workbench) -> String {
    let mut t = TextTable::new(["Error type", "RISC-V", "RI5CY", "xCORE"]);
    let rates: Vec<(f64, f64, f64)> = wb.evals.iter().map(BackendEval::error_rates).collect();
    t.row([
        "1. Err-V".to_string(),
        pct(rates[0].0),
        pct(rates[1].0),
        pct(rates[2].0),
    ]);
    t.row([
        "2. Err-CS".to_string(),
        pct(rates[0].1),
        pct(rates[1].1),
        pct(rates[2].1),
    ]);
    t.row([
        "3. Err-Def".to_string(),
        pct(rates[0].2),
        pct(rates[1].2),
        pct(rates[2].2),
    ]);
    format!(
        "Table 2 — sources of inaccurate statements (share of functions)\n{}",
        t.render()
    )
}

/// Fig. 9 — statement-level accuracy, VEGA vs ForkFlow, per module.
pub fn fig9(wb: &Workbench) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 9 — statement-level accuracy, VEGA vs ForkFlow");
    for (ev, ff) in wb.evals.iter().zip(&wb.ff_evals) {
        let mut t = TextTable::new([
            "Module",
            "VEGA acc",
            "VEGA manual",
            "VEGA%",
            "Fork acc",
            "Fork manual",
            "Fork%",
        ]);
        let vm = ev.module_stmt_counts();
        let fm = ff.module_stmt_counts();
        for m in Module::ALL {
            let (va, vman) = vm.get(&m).copied().unwrap_or((0, 0));
            let (fa, fman) = fm.get(&m).copied().unwrap_or((0, 0));
            if va + vman + fa + fman == 0 {
                continue;
            }
            let p = |a: usize, man: usize| {
                if a + man == 0 {
                    "-".to_string()
                } else {
                    pct(a as f64 / (a + man) as f64)
                }
            };
            t.row([
                m.code().to_string(),
                va.to_string(),
                vman.to_string(),
                p(va, vman),
                fa.to_string(),
                fman.to_string(),
                p(fa, fman),
            ]);
        }
        let _ = writeln!(
            out,
            "\n[{}] VEGA stmt accuracy {} vs ForkFlow {}\n{}",
            ev.target,
            pct(ev.stmt_accuracy()),
            pct(ff.stmt_accuracy()),
            t.render()
        );
    }
    out
}

/// Table 3 — accurate vs manual-effort statement counts.
pub fn table3(wb: &Workbench) -> String {
    let mut t = TextTable::new([
        "Module",
        "RISCV acc",
        "RISCV man",
        "RI5CY acc",
        "RI5CY man",
        "XCore acc",
        "XCore man",
    ]);
    let per: Vec<_> = wb
        .evals
        .iter()
        .map(BackendEval::module_stmt_counts)
        .collect();
    let mut totals = vec![(0usize, 0usize); 3];
    for m in Module::ALL {
        let mut row = vec![m.code().to_string()];
        let mut any = false;
        for (i, p) in per.iter().enumerate() {
            match p.get(&m) {
                Some((a, man)) => {
                    row.push(a.to_string());
                    row.push(man.to_string());
                    totals[i].0 += a;
                    totals[i].1 += man;
                    any = true;
                }
                None => {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
        }
        if any {
            t.row(row);
        }
    }
    let mut row = vec!["ALL".to_string()];
    for (a, man) in &totals {
        row.push(a.to_string());
        row.push(man.to_string());
    }
    t.row(row);
    format!(
        "Table 3 — statements accurate vs needing manual effort\n{}",
        t.render()
    )
}

/// Table 4 — modelled manual correction hours for the RISC-V backend.
pub fn table4(wb: &Workbench) -> String {
    let ev = &wb.evals[0]; // RISC-V
    let manual: std::collections::BTreeMap<Module, usize> = ev
        .module_stmt_counts()
        .into_iter()
        .map(|(m, (_, man))| (m, man))
        .collect();
    let deva = DeveloperProfile::developer_a();
    let devb = DeveloperProfile::developer_b();
    let (pa, ta) = deva.estimate(&manual);
    let (pb, tb) = devb.estimate(&manual);
    let mut t = TextTable::new([
        "Module",
        "Manual stmts",
        "Developer A (h)",
        "Developer B (h)",
    ]);
    for m in Module::ALL {
        let n = manual.get(&m).copied().unwrap_or(0);
        t.row([
            m.code().to_string(),
            n.to_string(),
            format!("{:.2}", pa.get(&m).copied().unwrap_or(0.0)),
            format!("{:.2}", pb.get(&m).copied().unwrap_or(0.0)),
        ]);
    }
    t.row([
        "ALL".to_string(),
        manual.values().sum::<usize>().to_string(),
        format!("{ta:.2}"),
        format!("{tb:.2}"),
    ]);
    format!(
        "Table 4 — modelled manual correction effort for the RISC-V backend\n\
         (minutes/statement calibrated from the paper's developers)\n{}",
        t.render()
    )
}

/// Fig. 10 — backend performance: -O3 speedup over -O0, corrected VEGA
/// compiler vs base compiler, per benchmark kernel.
pub fn fig10(wb: &Workbench) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 10 — -O3 speedup over -O0, VEGA^target vs base compiler"
    );
    for (ev, gen) in wb.evals.iter().zip(&wb.backends) {
        let t = match wb.vega.corpus.try_target(&ev.target) {
            Ok(t) => t,
            Err(e) => {
                let _ = writeln!(out, "\n[{}] skipped: {e}", ev.target);
                continue;
            }
        };
        let corrected = corrected_backend(&wb.vega.corpus, ev, gen);
        let base_vm = BackendVm::new(&t.spec, &t.backend);
        let vega_vm = BackendVm::new(&t.spec, &corrected);
        let mut table = TextTable::new(["Kernel", "Base speedup", "VEGA speedup", "Results match"]);
        for kernel in benchmark_suite() {
            let speedup = |vm: &BackendVm<'_>| -> Option<(f64, i64)> {
                let o0 = run_kernel(&kernel, vm, OptLevel::O0).ok()?;
                let o3 = run_kernel(&kernel, vm, OptLevel::O3).ok()?;
                Some((o0.cycles / o3.cycles.max(1e-9), o3.result))
            };
            match (speedup(&base_vm), speedup(&vega_vm)) {
                (Some((sb, rb)), Some((sv, rv))) => {
                    table.row([
                        kernel.name.clone(),
                        format!("{sb:.2}x"),
                        format!("{sv:.2}x"),
                        if rb == rv {
                            "yes".into()
                        } else {
                            "NO".to_string()
                        },
                    ]);
                }
                _ => {
                    table.row([
                        kernel.name.clone(),
                        "-".into(),
                        "-".into(),
                        "build failed".into(),
                    ]);
                }
            }
        }
        let _ = writeln!(out, "\n[{}]\n{}", ev.target, table.render());
    }
    out
}

/// §4.3 robustness — corrected compilers pass the full regression suite.
pub fn robustness(wb: &Workbench) -> String {
    let mut t = TextTable::new(["Target", "Functions", "Regression pass", "Pass rate"]);
    let mut missing = Vec::new();
    for (ev, gen) in wb.evals.iter().zip(&wb.backends) {
        let target = match wb.vega.corpus.try_target(&ev.target) {
            Ok(t) => t,
            Err(e) => {
                missing.push(format!("[{}] skipped: {e}", ev.target));
                continue;
            }
        };
        let corrected = corrected_backend(&wb.vega.corpus, ev, gen);
        let mut pass = 0usize;
        let mut total = 0usize;
        for (name, _, reference) in target.backend.iter() {
            let Some(f) = corrected.function(name) else {
                continue;
            };
            total += 1;
            if vega_minicc::regression_test(name, f, reference, &target.spec).passed() {
                pass += 1;
            }
        }
        t.row([
            ev.target.clone(),
            total.to_string(),
            pass.to_string(),
            pct(pass as f64 / total.max(1) as f64),
        ]);
    }
    let mut out = format!(
        "§4.3 robustness — corrected VEGA compilers vs regression tests\n{}",
        t.render()
    );
    for e in missing {
        let _ = writeln!(out, "{e}");
    }
    out
}

/// §4.1.2 verification — exact match on the held-out 25% split.
pub fn verification(wb: &mut Workbench) -> String {
    let em = wb.vega.verification_exact_match();
    format!(
        "§4.1.2 verification set — exact match: {} over {} samples (paper: 99.03%)\n",
        pct(em),
        wb.vega.verify_samples.len()
    )
}

/// §6 extension — the software update mechanism: after developers correct
/// the RISC-V backend, VEGA incorporates it and regenerates RI5CY (which
/// shares the RISC-V base), measuring the accuracy change.
pub fn update_mechanism(wb: &mut Workbench) -> String {
    let before = wb.evals[1].function_accuracy(); // RI5CY
    let (backend, desc) = {
        let rv = match wb.vega.corpus.try_target("RISCV") {
            Ok(t) => t,
            Err(e) => return format!("§6 extension — skipped: {e}\n"),
        };
        // The corrected backend: generated-and-accurate functions plus
        // reference replacements — what developers would upstream.
        let corrected = corrected_backend(&wb.vega.corpus, &wb.evals[0], &wb.backends[0]);
        let _ = &rv.backend;
        (corrected, rv.descriptions.clone())
    };
    wb.vega.learn_target("RISCV", &backend, &desc, 2);
    let gen = wb.vega.generate_backend("RI5CY");
    let after = eval_generated_backend(&wb.vega.corpus, &gen).function_accuracy();
    let mut t = TextTable::new(["RI5CY pass@1", "value"]);
    t.row([
        "before incorporating corrected RISC-V".to_string(),
        pct(before),
    ]);
    t.row([
        "after incorporating corrected RISC-V".to_string(),
        pct(after),
    ]);
    format!(
        "§6 extension — software update mechanism (learn corrected RISC-V, regenerate RI5CY)\n{}",
        t.render()
    )
}

/// Summary line used by several experiments: per-target function accuracy
/// for VEGA and ForkFlow (the headline 71.5/73.2/62.2 vs <8%).
pub fn headline(wb: &Workbench) -> String {
    let mut t = TextTable::new(["Target", "VEGA pass@1", "ForkFlow pass@1"]);
    for (ev, ff) in wb.evals.iter().zip(&wb.ff_evals) {
        t.row([
            ev.target.clone(),
            pct(ev.function_accuracy()),
            pct(ff.function_accuracy()),
        ]);
    }
    format!(
        "Headline — function-level accuracy (paper: 71.5/73.2/62.2% vs <8%)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workbench_runs_tiny_and_reports_render() {
        let mut wb = Workbench::run(VegaConfig::tiny());
        assert_eq!(wb.backends.len(), 3);
        assert_eq!(wb.evals.len(), 3);
        for text in [
            fig6(&wb),
            fig7(&wb),
            fig8(&wb),
            table2(&wb),
            fig9(&wb),
            table3(&wb),
            table4(&wb),
            headline(&wb),
            robustness(&wb),
        ] {
            assert!(text.len() > 50, "report too short:\n{text}");
            assert!(text.contains('|'), "no table rendered:\n{text}");
        }
        let v = verification(&mut wb);
        assert!(v.contains("exact match"));
        // Fig10 is slower (kernel runs) but must render too.
        let f10 = fig10(&wb);
        assert!(f10.contains("speedup"));
        // Robustness: the corrected compiler always passes everything.
        let rb = robustness(&wb);
        assert!(rb.contains("100.0%"), "{rb}");
    }
}
