//! Chaos end-to-end test: under a deterministic `VEGA_FAULT_PLAN`-style
//! plan injecting connection drops, stalls and corrupt frames, a retrying
//! load completes with zero hangs, every successful response is
//! byte-identical to direct in-process generation, and the obs trace shows
//! matching injected/recovered fault counts — at pool sizes 1 and 4.
//!
//! A second pass runs the same sequential workload twice under the same
//! seed and asserts the *fault sequence itself* is identical: same per-site
//! fired counts, same response bytes. Fire decisions are a pure function of
//! (seed, site, hit index), so chaos runs are replayable.
//!
//! One `#[test]`: the fault plan, thread override and obs counters are all
//! process-global.

use std::collections::BTreeMap;
use vega::{Vega, VegaConfig};
use vega_fault::{sites, FaultPlan};
use vega_model::CodeBe;
use vega_obs::json::Json;
use vega_obs::TraceIdGen;
use vega_serve::{protocol, Client, Engine, RetryPolicy, ServeConfig, Server};

const PLAN: &str = "seed=7;serve.conn.drop=0.2;serve.conn.stall=0.15:15;serve.conn.corrupt=0.2";

fn engine_from(checkpoint: &str) -> Engine {
    let model = CodeBe::load_json(checkpoint).expect("checkpoint parses");
    let vega = Vega::with_model(VegaConfig::tiny(), model).expect("checkpoint fits the corpus");
    Engine::new(vega)
}

fn counter(name: &str) -> u64 {
    vega_obs::global().counter(name)
}

fn result_render(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(true),
        "chaos must only delay successes, never turn them into errors: {}",
        resp.render()
    );
    resp.field("result").unwrap().render()
}

struct Counters {
    drop: u64,
    stall: u64,
    corrupt: u64,
    conn_recovered: u64,
    stall_recovered: u64,
}

fn snapshot() -> Counters {
    Counters {
        drop: counter(&format!("fault.injected.{}", sites::SERVE_CONN_DROP)),
        stall: counter(&format!("fault.injected.{}", sites::SERVE_CONN_STALL)),
        corrupt: counter(&format!("fault.injected.{}", sites::SERVE_CONN_CORRUPT)),
        conn_recovered: counter(&format!("fault.recovered.{}", sites::SERVE_CONN)),
        stall_recovered: counter(&format!("fault.recovered.{}", sites::SERVE_CONN_STALL)),
    }
}

/// Runs `conns` concurrent retrying clients against a chaos server and
/// checks byte-identity plus injected/recovered bookkeeping.
fn chaos_pool_run(
    checkpoint: &str,
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), String>,
    pool: usize,
    conns: usize,
    reps: usize,
) {
    vega_par::set_threads(pool);
    vega_fault::set_plan(Some(FaultPlan::parse(PLAN).unwrap()));
    let before = snapshot();

    let cfg = ServeConfig {
        batch: pool,
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            let pairs = pairs.to_vec();
            std::thread::spawn(move || {
                let policy = RetryPolicy {
                    max_attempts: 16,
                    base_ms: 2,
                    cap_ms: 40,
                    seed: c as u64,
                };
                let mut client = Client::connect_with_retry(&addr, &policy).expect("chaos connect");
                let mut out = Vec::new();
                for rep in 0..reps {
                    let (t, g) = &pairs[(c + rep) % pairs.len()];
                    let resp = client
                        .generate_with_retry(t, g, None, &policy)
                        .expect("request must complete under chaos");
                    out.push(((t.clone(), g.clone()), result_render(&resp)));
                }
                out
            })
        })
        .collect();
    for w in workers {
        // Joining every worker is the zero-hangs check: a stuck request
        // would wedge the test instead of silently passing.
        for (pair, render) in w.join().expect("chaos client thread") {
            assert_eq!(
                &render, &expected[&pair],
                "pool={pool}: successful response not byte-identical to direct generation"
            );
        }
    }

    server.shutdown();
    let stats = server.join_with_stats();

    let after = snapshot();
    let (dropped, corrupted) = (after.drop - before.drop, after.corrupt - before.corrupt);
    // Every drop and every corrupt frame costs the client exactly one
    // resend. Dropped lines die before the request counter; corrupted ones
    // are counted, then their response is replaced with garbage.
    assert_eq!(
        stats.requests,
        (conns * reps) as u64 + corrupted,
        "pool={pool}: request count = clean requests + corrupt-frame resends"
    );
    assert!(
        dropped + corrupted > 0,
        "the chaos plan should actually fire at pool={pool}"
    );
    assert_eq!(
        dropped + corrupted,
        after.conn_recovered - before.conn_recovered,
        "pool={pool}: every injected drop/corrupt must be recovered by the client"
    );
    assert_eq!(
        after.stall - before.stall,
        after.stall_recovered - before.stall_recovered,
        "pool={pool}: every injected stall must be survived"
    );
    vega_fault::set_plan(None);
}

/// One sequential client under the chaos plan; returns the per-site fired
/// log and every response body, in order.
fn chaos_sequential_run(
    checkpoint: &str,
    pairs: &[(String, String)],
    reps: usize,
) -> (Vec<(String, u64)>, Vec<String>) {
    vega_par::set_threads(1);
    vega_fault::set_plan(Some(FaultPlan::parse(PLAN).unwrap()));
    let server =
        Server::start(engine_from(checkpoint), ServeConfig::default()).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let policy = RetryPolicy {
        max_attempts: 16,
        base_ms: 1,
        cap_ms: 10,
        seed: 99,
    };
    let mut client = Client::connect_with_retry(&addr, &policy).expect("chaos connect");
    let mut renders = Vec::new();
    for rep in 0..reps {
        let (t, g) = &pairs[rep % pairs.len()];
        let resp = client
            .generate_with_retry(t, g, None, &policy)
            .expect("sequential chaos request");
        renders.push(result_render(&resp));
    }
    drop(client);
    server.shutdown();
    server.join_with_stats();

    let plan = vega_fault::active_plan().expect("plan still installed");
    let log = plan.fired_log();
    vega_fault::set_plan(None);
    (log, renders)
}

/// One traced sequential client under the chaos plan with the flight
/// recorder on; returns the echoed trace ids (in request order) and the
/// stable flight-dump render.
fn chaos_traced_run(
    checkpoint: &str,
    pairs: &[(String, String)],
    pool: usize,
    reps: usize,
    trace_seed: u64,
) -> (Vec<String>, String) {
    vega_par::set_threads(pool);
    vega_fault::set_plan(Some(FaultPlan::parse(PLAN).unwrap()));
    // Fresh recorder per run so the dump holds exactly this workload.
    vega_obs::flight::configure(512);
    let cfg = ServeConfig {
        batch: pool,
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let policy = RetryPolicy {
        max_attempts: 16,
        base_ms: 1,
        cap_ms: 10,
        seed: 99,
    };
    let mut client = Client::connect_with_retry(&addr, &policy).expect("chaos connect");
    client.set_tracer(trace_seed);
    let mut traces = Vec::new();
    for rep in 0..reps {
        let (t, g) = &pairs[rep % pairs.len()];
        let resp = client
            .generate_with_retry(t, g, None, &policy)
            .expect("traced chaos request");
        result_render(&resp);
        traces.push(
            resp.field("trace")
                .expect("traced request must echo its trace")
                .as_str()
                .unwrap()
                .to_string(),
        );
    }
    drop(client);
    server.shutdown();
    server.join_with_stats();
    vega_fault::set_plan(None);

    let stable = vega_obs::flight::dump_stable_json().render();
    vega_obs::flight::configure(0);
    (traces, stable)
}

#[test]
fn chaos_serve_end_to_end() {
    vega_par::set_threads(4);
    let trained = Vega::train(VegaConfig::tiny());
    let checkpoint = trained.model().save_json();

    // Byte-identity reference: direct in-process generation, no faults.
    let reference = Engine::new(trained);
    let groups = reference.group_names();
    let targets = reference.target_names();
    let pairs: Vec<(String, String)> = targets
        .iter()
        .take(2)
        .flat_map(|t| groups.iter().take(2).map(move |g| (t.clone(), g.clone())))
        .collect();
    assert_eq!(pairs.len(), 4);
    let expected: BTreeMap<(String, String), String> = pairs
        .iter()
        .map(|(t, g)| {
            let (module, gf) = reference.generate(t, g).expect("direct generation");
            (
                (t.clone(), g.clone()),
                protocol::render_generated(t, g, module, &gf).render(),
            )
        })
        .collect();

    // Concurrent retrying load under chaos, at both pool sizes.
    chaos_pool_run(&checkpoint, &pairs, &expected, 1, 4, 6);
    chaos_pool_run(&checkpoint, &pairs, &expected, 4, 4, 6);

    // Replayability: the same seed injects the identical fault sequence and
    // yields byte-identical responses across two separate runs.
    let (log_a, renders_a) = chaos_sequential_run(&checkpoint, &pairs, 8);
    let (log_b, renders_b) = chaos_sequential_run(&checkpoint, &pairs, 8);
    assert!(
        log_a.iter().any(|(_, n)| *n > 0),
        "the replay runs should inject at least one fault: {log_a:?}"
    );
    assert_eq!(
        log_a, log_b,
        "same seed must inject the identical fault sequence"
    );
    assert_eq!(
        renders_a, renders_b,
        "same seed must yield byte-identical responses"
    );
    for (i, r) in renders_a.iter().enumerate() {
        assert_eq!(r, &expected[&pairs[i % pairs.len()]]);
    }

    // Trace determinism: the same seeded sequential workload at pool sizes
    // 1 and 4 mints the identical trace-id sequence (predictable by a twin
    // generator) and leaves byte-identical stable flight dumps — retries
    // reuse their request's trace, and the stable form strips wall-clock.
    let trace_seed = 0x51DE;
    let (traces_1, dump_1) = chaos_traced_run(&checkpoint, &pairs, 1, 8, trace_seed);
    let (traces_4, dump_4) = chaos_traced_run(&checkpoint, &pairs, 4, 8, trace_seed);
    let mut twin = TraceIdGen::new(trace_seed);
    let predicted: Vec<String> = (0..8).map(|_| twin.mint().render()).collect();
    assert_eq!(
        traces_1, predicted,
        "echoed traces must follow the seeded mint sequence"
    );
    assert_eq!(
        traces_1, traces_4,
        "trace-id sequence must not depend on pool size"
    );
    assert!(
        dump_1.contains("serve.generate"),
        "the stable dump should retain traced generate spans: {dump_1}"
    );
    assert!(
        dump_1.contains(&predicted[0]),
        "the stable dump should carry the first request's trace: {dump_1}"
    );
    assert_eq!(
        dump_1, dump_4,
        "same-seed stable flight dumps must be byte-identical across pool sizes"
    );

    vega_par::set_threads(0);
}
