//! Hot model swap end-to-end: a live server flips from checkpoint A to
//! checkpoint B without a restart, without losing a single request, and
//! without ever mixing one model's weights with another's cache key —
//! at replica-pool sizes 1 and 4, with failed and chaos-injected swaps
//! leaving the old model serving.
//!
//! Everything lives in a single `#[test]` because `vega_par::set_threads`
//! and the fault plan are process-global.

use std::collections::BTreeMap;
use std::path::Path;
use vega::{Vega, VegaConfig};
use vega_fault::FaultPlan;
use vega_obs::json::Json;
use vega_serve::{load_checkpoint, protocol, Client, Engine, ServeConfig, Server};

fn engine_from_file(path: &Path) -> Engine {
    let ckpt = load_checkpoint(path).expect("checkpoint loads");
    assert_eq!(ckpt.meta.format, "vega-ckpt/v2");
    let (_meta, engine) = ckpt
        .into_engine(VegaConfig::tiny())
        .expect("checkpoint fits the corpus");
    engine
}

fn start(path: &Path, cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(engine_from_file(path), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn result_render(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(true),
        "expected success: {}",
        resp.render()
    );
    resp.field("result").unwrap().render()
}

fn error_code(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(false),
        "expected failure: {}",
        resp.render()
    );
    resp.field("error").unwrap().as_str().unwrap().to_string()
}

fn bool_field(resp: &Json, name: &str) -> bool {
    resp.field(name).unwrap() == &Json::Bool(true)
}

#[test]
fn hot_swap_loses_nothing_and_never_mixes_models() {
    vega_par::set_threads(4);
    let dir = std::env::temp_dir().join("vega-serve-swap-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path_a = dir.join("model-a.ckpt");
    let path_b = dir.join("model-b.ckpt");

    // Model A is the trained pipeline; model B is A perturbed by a few
    // deterministic pretraining steps — same vocabulary and shape (so it
    // fits the same corpus), different weights and digest.
    let trained = Vega::train(VegaConfig::tiny());
    trained.model().save_file_v2(&path_a).unwrap();
    let mut model_b = trained.model().clone();
    let probe: Vec<usize> = (2..10).collect();
    model_b.pretrain(&[probe], 200, 1e-2, 7);
    model_b.save_file_v2(&path_b).unwrap();

    // Reference generations for both models, straight from the v2 files the
    // server will serve — the byte-identity oracle for every scenario.
    let ref_a = engine_from_file(&path_a);
    let ref_b = engine_from_file(&path_b);
    assert_ne!(
        ref_a.model_digest(),
        ref_b.model_digest(),
        "perturbed model must have a different digest"
    );
    let targets = ref_a.target_names();
    let groups = ref_a.group_names();
    let mut pairs: Vec<(String, String)> = Vec::new();
    for t in &targets {
        for g in &groups {
            pairs.push((t.clone(), g.clone()));
        }
    }
    let mut expected: BTreeMap<(String, String), (String, String)> = BTreeMap::new();
    for (t, g) in &pairs {
        let render = |engine: &Engine| {
            let (module, gf) = engine.generate(t, g).expect("direct generation");
            protocol::render_generated(t, g, module, &gf).render()
        };
        expected.insert((t.clone(), g.clone()), (render(&ref_a), render(&ref_b)));
    }
    // At least one pair must decode differently under B, or the swap
    // assertions below would be vacuous; use it as the probe pair.
    let probe_pair = pairs
        .iter()
        .find(|p| expected[*p].0 != expected[*p].1)
        .expect("perturbed model must change at least one generation")
        .clone();

    swap_sequential(&path_a, &path_b, &probe_pair, &expected);
    swap_under_concurrent_load(&path_a, &path_b, &probe_pair, &pairs, &expected);
}

/// Pool size 1: swap A→B changes responses and clears the cache, re-swapping
/// the identical checkpoint keeps the cache, and failed/chaos swaps leave
/// the current model serving.
fn swap_sequential(
    path_a: &Path,
    path_b: &Path,
    probe_pair: &(String, String),
    expected: &BTreeMap<(String, String), (String, String)>,
) {
    vega_par::set_threads(1);
    let cfg = ServeConfig {
        batch: 1,
        ..ServeConfig::default()
    };
    let (server, addr) = start(path_a, cfg);
    let mut c = Client::connect(&addr).unwrap();
    let (t0, g0) = probe_pair.clone();
    let (exp_a, exp_b) = expected[probe_pair].clone();

    // Serving A.
    let first = c.generate(&t0, &g0, None).unwrap();
    assert_eq!(result_render(&first), exp_a);

    // Swap A→B: acknowledged with metadata, drained, cache cleared.
    let swap = c.swap(&path_b.display().to_string()).unwrap();
    assert!(bool_field(&swap, "swapped"), "{}", swap.render());
    assert!(bool_field(&swap, "digest_changed"));
    assert!(bool_field(&swap, "cache_cleared"));
    assert!(bool_field(&swap, "drained"));
    assert_eq!(
        swap.field("format").unwrap().as_str().unwrap(),
        "vega-ckpt/v2"
    );

    // Serving B now; the A-keyed cache entry is gone (fresh generation).
    let after = c.generate(&t0, &g0, None).unwrap();
    assert_eq!(after.field("cached").unwrap(), &Json::Bool(false));
    assert_eq!(
        result_render(&after),
        exp_b,
        "post-swap response must be byte-identical to direct generation on B"
    );

    // Re-swapping the *same* checkpoint: digest unchanged, cache kept — the
    // next request is a byte-identical cache hit.
    let same = c.swap(&path_b.display().to_string()).unwrap();
    assert!(bool_field(&same, "swapped"));
    assert!(!bool_field(&same, "digest_changed"));
    assert!(!bool_field(&same, "cache_cleared"));
    let hit = c.generate(&t0, &g0, None).unwrap();
    assert_eq!(hit.field("cached").unwrap(), &Json::Bool(true));
    assert_eq!(result_render(&hit), exp_b);

    // A swap to a missing file fails by name and changes nothing.
    let missing = c.swap("/nonexistent/model.ckpt").unwrap();
    assert_eq!(error_code(&missing), "swap_failed");
    assert!(missing
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("/nonexistent/model.ckpt"));

    // Chaos: an injected `serve.swap` fault aborts the swap before any state
    // change; the old model keeps serving byte-identically.
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=@0", vega_fault::sites::SERVE_SWAP)).unwrap(),
    ));
    let chaos = c.swap(&path_a.display().to_string()).unwrap();
    vega_fault::set_plan(None);
    assert_eq!(error_code(&chaos), "swap_failed");
    assert!(chaos
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains(vega_fault::sites::SERVE_SWAP));
    assert!(
        vega_obs::global().counter(&format!("fault.injected.{}", vega_fault::sites::SERVE_SWAP))
            >= 1
    );
    let still_b = c.generate(&t0, &g0, None).unwrap();
    assert_eq!(result_render(&still_b), exp_b);

    server.shutdown();
    let stats = server.join_with_stats();
    assert_eq!(stats.generated, 2, "A once, B once; the rest were hits");
}

/// Pool size 4: clients hammer the server while a chaos-failed then a real
/// swap land mid-stream. Three synced workers prove every pre-swap response
/// is model A and every post-swap response is model B; a free-running
/// streamer overlaps the swap itself and proves no response is ever a
/// mixture. Every request is answered.
fn swap_under_concurrent_load(
    path_a: &Path,
    path_b: &Path,
    probe_pair: &(String, String),
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), (String, String)>,
) {
    vega_par::set_threads(4);
    let cfg = ServeConfig {
        cache_cap: 0, // every response is a fresh generation on live weights
        batch: 4,
        slow_ms: 20,
        ..ServeConfig::default()
    };
    let (server, addr) = start(path_a, cfg);

    // Barriers gate 3 synced workers + the main thread: phase 1 requests all
    // complete before the swap starts, phase 2 requests all start after it
    // succeeds.
    let before_swap = std::sync::Arc::new(std::sync::Barrier::new(4));
    let after_swap = std::sync::Arc::new(std::sync::Barrier::new(4));
    let synced: Vec<_> = (0..3)
        .map(|w| {
            let addr = addr.clone();
            let pairs = pairs.to_vec();
            let expected = expected.clone();
            let before_swap = std::sync::Arc::clone(&before_swap);
            let after_swap = std::sync::Arc::clone(&after_swap);
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let mut answered = 0usize;
                for i in 0..4 {
                    let (t, g) = &pairs[(w * 3 + i) % pairs.len()];
                    let resp = c.generate(t, g, Some(60_000)).unwrap();
                    assert_eq!(
                        result_render(&resp),
                        expected[&(t.clone(), g.clone())].0,
                        "pre-swap response for {t}/{g} must be model A"
                    );
                    answered += 1;
                }
                before_swap.wait();
                after_swap.wait();
                for i in 0..4 {
                    let (t, g) = &pairs[(w * 5 + i) % pairs.len()];
                    let resp = c.generate(t, g, Some(60_000)).unwrap();
                    assert_eq!(
                        result_render(&resp),
                        expected[&(t.clone(), g.clone())].1,
                        "post-swap response for {t}/{g} must be model B"
                    );
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    // The streamer free-runs across the swap window: each response must be
    // byte-identical to model A or model B for its pair — never a blend of
    // fresh weights with a stale engine or cache entry.
    let streamer = {
        let addr = addr.clone();
        let pairs = pairs.to_vec();
        let expected = expected.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut answered = 0usize;
            for i in 0..12 {
                let (t, g) = &pairs[i % pairs.len()];
                let resp = c.generate(t, g, Some(60_000)).unwrap();
                let body = result_render(&resp);
                let (exp_a, exp_b) = &expected[&(t.clone(), g.clone())];
                assert!(
                    &body == exp_a || &body == exp_b,
                    "response for {t}/{g} matches neither model A nor model B"
                );
                answered += 1;
            }
            answered
        })
    };

    // The swap window: first a chaos-injected swap that must fail harmlessly
    // (streamer traffic may be in flight), then the real swap.
    before_swap.wait();
    let mut c = Client::connect(&addr).unwrap();
    vega_fault::set_plan(Some(
        FaultPlan::parse(&format!("{}=@0", vega_fault::sites::SERVE_SWAP)).unwrap(),
    ));
    let chaos = c.swap(&path_b.display().to_string()).unwrap();
    vega_fault::set_plan(None);
    assert_eq!(error_code(&chaos), "swap_failed");
    let swap = c.swap(&path_b.display().to_string()).unwrap();
    assert!(bool_field(&swap, "swapped"), "{}", swap.render());
    assert!(
        bool_field(&swap, "drained"),
        "in-flight work on model A must drain"
    );
    after_swap.wait();

    let mut answered = 0usize;
    for w in synced {
        answered += w.join().expect("synced worker (no lost requests)");
    }
    answered += streamer.join().expect("streamer (no lost requests)");
    assert_eq!(answered, 3 * 8 + 12, "all requests answered");

    // After the dust settles, a fresh request is pure model B.
    let (t0, g0) = probe_pair.clone();
    let settle = c.generate(&t0, &g0, None).unwrap();
    assert_eq!(result_render(&settle), expected[probe_pair].1);

    server.shutdown();
    server.join_with_stats();
    std::fs::remove_dir_all(std::env::temp_dir().join("vega-serve-swap-e2e")).ok();
}
