//! Continuous-batching end-to-end tests: the `batch` engine mode must be an
//! invisible substitution for the replica pool — byte-identical response
//! bytes and identical per-request token attribution at thread counts 1 and
//! 4 — while actually batching (nonzero step/join counters), honoring
//! deadlines at token boundaries without poisoning the cache, surviving
//! `serve.batch` chaos by replaying sessions, and draining a live batch on
//! shutdown without losing a single queued request. The `score` op must be
//! bit-identical across engines and against direct scoring, with malformed
//! candidates rejected explicitly.
//!
//! One `#[test]`: `vega_par::set_threads`, the fault plan and the obs
//! counters are all process-global.

use std::collections::BTreeMap;
use std::time::Duration;
use vega::{Vega, VegaConfig};
use vega_fault::{sites, FaultPlan};
use vega_model::CodeBe;
use vega_obs::json::Json;
use vega_serve::{protocol, Client, Engine, EngineMode, ServeConfig, Server};

fn engine_from(checkpoint: &str) -> Engine {
    let model = CodeBe::load_json(checkpoint).expect("checkpoint parses");
    let vega = Vega::with_model(VegaConfig::tiny(), model).expect("checkpoint fits the corpus");
    Engine::new(vega)
}

fn counter(name: &str) -> u64 {
    vega_obs::global().counter(name)
}

fn result_render(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(true),
        "expected success: {}",
        resp.render()
    );
    resp.field("result").unwrap().render()
}

fn error_code(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(false),
        "expected failure: {}",
        resp.render()
    );
    resp.field("error").unwrap().as_str().unwrap().to_string()
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats
        .field("stats")
        .and_then(|s| s.field(key))
        .and_then(Json::as_u64)
        .unwrap_or_else(|e| panic!("stats.{key}: {e}"))
}

/// Runs one server in `mode`: a concurrent round of fresh distinct requests
/// (every decode in flight at once), then a sequential cached round. Checks
/// byte-identity against `expected` in both rounds and returns each pair's
/// fresh-generation `timing.tokens` — the cross-mode attribution fingerprint.
fn identity_run(
    checkpoint: &str,
    mode: EngineMode,
    threads: usize,
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), String>,
) -> BTreeMap<(String, String), u64> {
    vega_par::set_threads(threads);
    let cfg = ServeConfig {
        engine: mode,
        batch: pairs.len(),
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    // Concurrent fresh round: distinct pairs, so nothing coalesces and (in
    // batch mode) the broker holds several generations' sessions at once.
    let workers: Vec<_> = pairs
        .iter()
        .cloned()
        .map(|(t, g)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                let resp = c.generate(&t, &g, None).unwrap();
                ((t, g), resp)
            })
        })
        .collect();
    let mut tokens = BTreeMap::new();
    for w in workers {
        let (pair, resp) = w.join().expect("client thread");
        assert_eq!(
            result_render(&resp),
            expected[&pair],
            "mode={mode:?} threads={threads}: fresh response differs from direct generation"
        );
        assert_eq!(resp.field("cached").unwrap(), &Json::Bool(false));
        let t = resp
            .field("timing")
            .unwrap()
            .field("tokens")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(t > 0, "a fresh generation must attribute decoded tokens");
        tokens.insert(pair, t);
    }

    // Sequential cached round: byte-identical hits.
    let mut c = Client::connect(&addr).unwrap();
    for (t, g) in pairs {
        let resp = c.generate(t, g, None).unwrap();
        assert_eq!(resp.field("cached").unwrap(), &Json::Bool(true));
        assert_eq!(result_render(&resp), expected[&(t.clone(), g.clone())]);
    }

    // The stats view names the live engine mode, reports replica residency,
    // and — in batch mode — proves the broker actually ran.
    let stats = c.op("stats").unwrap();
    let engine_name = stats
        .field("stats")
        .unwrap()
        .field("engine")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(engine_name, mode.as_str());
    assert!(
        stat_u64(&stats, "resident_bytes_per_replica") > 0,
        "v1 checkpoints decode into owned weights, so replicas have resident bytes"
    );
    match mode {
        EngineMode::Batch => {
            assert!(stat_u64(&stats, "batch_steps") > 0, "broker must step");
            assert!(stat_u64(&stats, "batch_joins") > 0, "sessions must join");
        }
        EngineMode::Replica => {}
    }

    server.shutdown();
    let st = server.join_with_stats();
    assert_eq!(st.generated, pairs.len() as u64);
    tokens
}

/// A deadline that elapses *mid-generation* (after dispatch, at a token
/// boundary inside the broker) fails with `deadline_exceeded` — and the
/// aborted generation never reaches the cache: the next request for the
/// same pair generates fresh, correct bytes.
fn deadline_mid_generation_never_caches(checkpoint: &str, pair: &(String, String), expected: &str) {
    vega_par::set_threads(1);
    let cfg = ServeConfig {
        engine: EngineMode::Batch,
        batch: 1,
        slow_ms: 120, // dispatch happens, then the deadline passes in-flight
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    let (t, g) = pair;
    let late = c.generate(t, g, Some(30)).unwrap();
    assert_eq!(error_code(&late), "deadline_exceeded");
    assert!(
        late.field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("mid-generation"),
        "the abort must come from the broker's token-boundary check: {}",
        late.render()
    );

    let retry = c.generate(t, g, None).unwrap();
    assert_eq!(
        retry.field("cached").unwrap(),
        &Json::Bool(false),
        "an expired generation must never have populated the cache"
    );
    assert_eq!(result_render(&retry), expected);

    server.shutdown();
    let st = server.join_with_stats();
    assert_eq!(st.deadline_exceeded, 1);
    assert_eq!(st.generated, 1);
}

/// Under a `serve.batch` chaos plan the broker kills live slots
/// mid-generation; every request must still complete byte-identically (the
/// session replays from scratch), and every injected fault must be matched
/// by a replay and a recovery — no request is lost or cross-contaminated.
fn chaos_replays_are_invisible(
    checkpoint: &str,
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), String>,
) {
    vega_par::set_threads(4);
    vega_fault::set_plan(Some(FaultPlan::parse("seed=11;serve.batch=0.2").unwrap()));
    let injected_before = counter(&format!("fault.injected.{}", sites::SERVE_BATCH));
    let recovered_before = counter(&format!("fault.recovered.{}", sites::SERVE_BATCH));
    let replays_before = counter("serve.batch.replays");

    let cfg = ServeConfig {
        engine: EngineMode::Batch,
        batch: 4,
        cache_cap: 0, // every request decodes through the broker
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let pairs = pairs.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).unwrap();
                let mut out = Vec::new();
                for rep in 0..4 {
                    let (t, g) = &pairs[(c + rep) % pairs.len()];
                    let resp = client.generate(t, g, None).unwrap();
                    out.push(((t.clone(), g.clone()), result_render(&resp)));
                }
                out
            })
        })
        .collect();
    for w in workers {
        // Joining every worker is the no-lost-requests check.
        for (pair, render) in w.join().expect("chaos client thread") {
            assert_eq!(
                &render, &expected[&pair],
                "a replayed session must produce byte-identical output"
            );
        }
    }

    server.shutdown();
    server.join_with_stats();
    vega_fault::set_plan(None);

    let injected = counter(&format!("fault.injected.{}", sites::SERVE_BATCH)) - injected_before;
    let recovered = counter(&format!("fault.recovered.{}", sites::SERVE_BATCH)) - recovered_before;
    let replays = counter("serve.batch.replays") - replays_before;
    assert!(injected > 0, "the serve.batch plan should actually fire");
    assert_eq!(
        injected, replays,
        "every injected slot kill must be answered by exactly one replay"
    );
    assert_eq!(
        injected, recovered,
        "every injected slot kill must be recovered"
    );
}

/// Shutdown with a live batch: requests accepted before the shutdown drain
/// to completion (byte-identical), later ones are refused explicitly, and
/// the server (dispatcher workers + broker thread) joins cleanly.
fn drain_answers_everything_queued(
    checkpoint: &str,
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), String>,
) {
    vega_par::set_threads(1);
    let cfg = ServeConfig {
        engine: EngineMode::Batch,
        batch: 2,
        cache_cap: 0,
        slow_ms: 60, // keep the batch busy long enough for shutdown to land
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();

    let workers: Vec<_> = (0..6)
        .map(|i| {
            let addr = addr.clone();
            let (t, g) = pairs[i % pairs.len()].clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                ((t.clone(), g.clone()), c.generate(&t, &g, None).unwrap())
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    let stopping = Client::connect(&addr).unwrap().op("shutdown").unwrap();
    assert_eq!(stopping.field("stopping").unwrap(), &Json::Bool(true));

    let mut completed = 0usize;
    for w in workers {
        // Every request gets an answer — a drain that drops a queued job
        // would hang this join.
        let (pair, resp) = w.join().expect("request answered during drain");
        if resp.field("ok").unwrap() == &Json::Bool(true) {
            assert_eq!(
                result_render(&resp),
                expected[&pair],
                "drained response must stay byte-identical"
            );
            completed += 1;
        } else {
            assert_eq!(
                error_code(&resp),
                "shutting_down",
                "losers must be refused explicitly, never dropped"
            );
        }
    }
    assert!(
        completed >= 1,
        "at least the in-flight request must drain to completion"
    );
    server.join_with_stats();
}

/// A hot swap under the batch engine builds a fresh broker for the incoming
/// model set and joins the old one (its senders die with the old replicas).
/// Requests keep generating byte-identically across the flip, and a v2
/// mmap-backed swap drops per-replica residency to zero.
fn swap_rebuilds_broker(
    checkpoint: &str,
    pairs: &[(String, String)],
    expected: &BTreeMap<(String, String), String>,
) {
    vega_par::set_threads(1);
    let dir = std::env::temp_dir().join("vega-serve-batch-swap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.v2.ckpt");
    CodeBe::load_json(checkpoint)
        .expect("checkpoint parses")
        .save_file_v2(&path)
        .unwrap();

    let cfg = ServeConfig {
        engine: EngineMode::Batch,
        batch: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();
    let (t, g) = &pairs[0];

    let before = c.generate(t, g, None).unwrap();
    assert_eq!(result_render(&before), expected[&pairs[0]]);

    // Same weights in v2 form: digest unchanged, cache kept — but the model
    // set (replicas + broker) is rebuilt around the mapped checkpoint.
    let swap = c.swap(&path.display().to_string()).unwrap();
    assert_eq!(
        swap.field("ok").unwrap(),
        &Json::Bool(true),
        "{}",
        swap.render()
    );
    assert_eq!(
        swap.field("digest_changed").unwrap(),
        &Json::Bool(false),
        "same weights must keep the digest: {}",
        swap.render()
    );

    let hit = c.generate(t, g, None).unwrap();
    assert_eq!(hit.field("cached").unwrap(), &Json::Bool(true));
    assert_eq!(result_render(&hit), expected[&pairs[0]]);

    let stats = c.op("stats").unwrap();
    assert_eq!(
        stat_u64(&stats, "resident_bytes_per_replica"),
        0,
        "v2 mmap replicas borrow the mapping and own no weight bytes"
    );

    // A pair not yet cached decodes fresh through the *new* broker, and the
    // bits still match direct generation.
    let (t1, g1) = &pairs[1];
    let fresh = c.generate(t1, g1, None).unwrap();
    assert_eq!(fresh.field("cached").unwrap(), &Json::Bool(false));
    assert_eq!(result_render(&fresh), expected[&pairs[1]]);

    server.shutdown();
    server.join_with_stats();
    std::fs::remove_dir_all(&dir).ok();
}

/// The `score` op across both engines: served scores must be bit-identical
/// to direct in-process scoring on a backend-free replica (and therefore to
/// each other), concurrent requests included — scoring takes the
/// multi-position prefill path in both engine modes (it never routes
/// through the broker), so the batch engine must be a pure pass-through
/// here. Malformed candidates (out-of-vocabulary ids, over-long sequences,
/// empty lists) are rejected explicitly, never decoded.
fn score_matches_across_engines(checkpoint: &str, pairs: &[(String, String)]) {
    vega_par::set_threads(1);
    let (t, g) = &pairs[0];
    let candidates: Vec<Vec<usize>> = vec![vec![5, 9, 2], vec![5, 9], vec![7, 7, 7, 7]];
    let cand_tokens: u64 = candidates.iter().map(|c| c.len() as u64).sum();

    // Byte-identity reference: direct scoring, no server, no backend.
    let reference = engine_from(checkpoint);
    let mut replica = reference.replica();
    let direct = reference
        .try_score_with(&mut replica, t, g, &candidates, None)
        .expect("direct scoring");
    let direct_render = Json::Arr(direct.into_iter().map(Json::num_f32).collect()).render();

    for mode in [EngineMode::Replica, EngineMode::Batch] {
        let cfg = ServeConfig {
            engine: mode,
            batch: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
        let addr = server.local_addr().to_string();

        // Two concurrent score connections: each scores its candidates in
        // multi-position prefill passes on its own connection thread.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                let (t, g) = (t.clone(), g.clone());
                let cands = candidates.clone();
                std::thread::spawn(move || {
                    let mut c = Client::connect(&addr).unwrap();
                    c.score(&t, &g, &cands, None).unwrap()
                })
            })
            .collect();
        for w in workers {
            let resp = w.join().expect("score client thread");
            assert_eq!(
                resp.field("ok").unwrap(),
                &Json::Bool(true),
                "mode={mode:?}: {}",
                resp.render()
            );
            assert_eq!(
                resp.field("scores").unwrap().render(),
                direct_render,
                "mode={mode:?}: served scores differ from direct scoring"
            );
            let tokens = resp
                .field("timing")
                .unwrap()
                .field("tokens")
                .unwrap()
                .as_u64()
                .unwrap();
            assert_eq!(
                tokens, cand_tokens,
                "score attributes the summed candidate length"
            );
        }

        let mut c = Client::connect(&addr).unwrap();
        // Out-of-vocabulary token id: rejected before any decode.
        let bad = c.score(t, g, &[vec![1_000_000]], None).unwrap();
        assert_eq!(error_code(&bad), "bad_request");
        // Candidate longer than the model can score (max_len - 2).
        let bad = c.score(t, g, &[vec![5; 500]], None).unwrap();
        assert_eq!(error_code(&bad), "bad_request");
        // Unknown group.
        let bad = c.score(t, "no-such-group", &candidates, None).unwrap();
        assert_eq!(error_code(&bad), "unknown_group");
        // Protocol-level rejection: an empty candidate list never parses.
        let raw = c
            .request_raw(&format!(
                r#"{{"op":"score","target":"{t}","group":"{g}","candidates":[]}}"#
            ))
            .unwrap();
        assert_eq!(error_code(&Json::parse(&raw).unwrap()), "bad_request");

        // Every handled score request (errors included) is counted; the
        // unparseable line is not.
        let stats = c.op("stats").unwrap();
        assert_eq!(stat_u64(&stats, "score_requests"), 5);

        server.shutdown();
        server.join_with_stats();
    }
}

#[test]
fn batch_engine_end_to_end() {
    vega_par::set_threads(4);
    let trained = Vega::train(VegaConfig::tiny());
    let checkpoint = trained.model().save_json();

    // Byte-identity reference: direct in-process generation.
    let reference = Engine::new(trained);
    let groups = reference.group_names();
    let targets = reference.target_names();
    let pairs: Vec<(String, String)> = targets
        .iter()
        .take(2)
        .flat_map(|t| groups.iter().take(2).map(move |g| (t.clone(), g.clone())))
        .collect();
    assert_eq!(pairs.len(), 4);
    let expected: BTreeMap<(String, String), String> = pairs
        .iter()
        .map(|(t, g)| {
            let (module, gf) = reference.generate(t, g).expect("direct generation");
            (
                (t.clone(), g.clone()),
                protocol::render_generated(t, g, module, &gf).render(),
            )
        })
        .collect();

    // The replica pool is the attribution baseline; batch mode must match
    // its response bytes *and* its per-request token counts, at both thread
    // settings (`ci.sh` runs the nn-level twin of this at VEGA_THREADS=1/4).
    let baseline = identity_run(&checkpoint, EngineMode::Replica, 4, &pairs, &expected);
    for threads in [1usize, 4] {
        let batched = identity_run(&checkpoint, EngineMode::Batch, threads, &pairs, &expected);
        assert_eq!(
            batched, baseline,
            "threads={threads}: batch-mode token attribution diverged from the replica pool"
        );
    }

    deadline_mid_generation_never_caches(&checkpoint, &pairs[0], &expected[&pairs[0]]);
    chaos_replays_are_invisible(&checkpoint, &pairs, &expected);
    drain_answers_everything_queued(&checkpoint, &pairs, &expected);
    swap_rebuilds_broker(&checkpoint, &pairs, &expected);
    score_matches_across_engines(&checkpoint, &pairs);

    vega_par::set_threads(0);
}
