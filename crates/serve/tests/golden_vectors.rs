//! Golden vectors pinning the serve hash and cache-key formats.
//!
//! The cache key and the target/model digests are part of the trace
//! contract: loadgen, the JSONL trace, and cross-run determinism checks all
//! compare them textually. These constants were computed once from the
//! two-lane FNV-1a definition in `serve::hash`; if any of them changes, the
//! on-the-wire key format changed and every cached/traced digest in the
//! wild is invalidated — that must be a deliberate, versioned decision
//! (bump the `vega-serve/v2` domain string), never an accident. One such
//! decision has happened: v1 → v2 appended the kernel mode (`scalar` |
//! `avx2`) as the final field, so cached payloads can never be served
//! across kernel modes whose low bits differ.

use vega_serve::hash::{digest_str, StableHasher};

#[test]
fn digest_str_golden_vectors() {
    assert_eq!(digest_str(""), "559814a3c99499dfa8c7f832281a39c5");
    assert_eq!(digest_str("abc"), "529ecc3a0fdfe6eac11ab6d2519bc2b2");
    assert_eq!(
        digest_str("vega-serve/v1"),
        "ddeb43d8fefe8eb5172ac9838de85c7d"
    );
    assert_eq!(
        digest_str("vega-serve/v2"),
        "ddeb40d8fefe899c172ac6838de85764"
    );
    assert_eq!(
        digest_str("getRelocType"),
        "691c4651214229c2d2216287e01a8e94"
    );
    assert_eq!(digest_str("RISCV"), "ddfa6a5971f390c7c3645c37b6362717");
}

#[test]
fn cache_key_format_golden_vector() {
    // The exact field sequence Engine::cache_key feeds: domain string, model
    // digest, target name, target-description digest, function group, the
    // signature feature ids, then the kernel-mode name. Synthetic stand-ins
    // keep the vector independent of any trained model; both mode suffixes
    // are pinned so a mode-string change cannot slip by unnoticed.
    let key = |mode: &str| {
        let mut h = StableHasher::new();
        h.write_str("vega-serve/v2");
        h.write_str("0123456789abcdef0123456789abcdef");
        h.write_str("RISCV");
        h.write_str("fedcba9876543210fedcba9876543210");
        h.write_str("getRelocType");
        h.write_ids(&[1, 2, 3, 40, 500]);
        h.write_str(mode);
        h.finish_hex()
    };
    assert_eq!(key("scalar"), "4200a8506c07a50b485b60e57a162b6d");
    assert_eq!(key("avx2"), "f784463ba55cda781f6b9c4316b1a91a");
}

#[test]
fn key_shape_is_stable() {
    // 32 lowercase hex chars, pure function of input, order-sensitive.
    let k = digest_str("anything");
    assert_eq!(k.len(), 32);
    assert!(k
        .chars()
        .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    assert_eq!(digest_str("anything"), k);

    let mut a = StableHasher::new();
    a.write_str("x");
    a.write_str("y");
    let mut b = StableHasher::new();
    b.write_str("y");
    b.write_str("x");
    assert_ne!(a.finish_hex(), b.finish_hex(), "field order must matter");
}

#[test]
fn fault_layer_fnv_golden_vectors() {
    // The checkpoint envelope digest and the fault-plan site hashing share
    // this single-lane FNV-1a; pin the canonical test vectors.
    assert_eq!(vega_fault::fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
    assert_eq!(vega_fault::fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
    assert_eq!(vega_fault::fnv1a_64_hex(b"abc"), "e71fa2190541574b");
}
