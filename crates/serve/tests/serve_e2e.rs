//! End-to-end tests for the vega-serve service: one tiny pipeline is trained
//! once, then reused as a checkpoint across several server instances to cover
//! caching, coalescing, byte-identity across thread counts, backpressure,
//! deadlines, error paths and graceful shutdown.
//!
//! Everything lives in a single `#[test]` because `vega_par::set_threads` is
//! process-global and the scenarios deliberately flip it between 1 and 4.

use std::time::Duration;
use vega::{Vega, VegaConfig};
use vega_model::CodeBe;
use vega_obs::json::Json;
use vega_obs::TraceIdGen;
use vega_serve::{protocol, Client, Engine, ServeConfig, Server};

/// Rebuilds a serving engine from the checkpoint, exactly as the daemon does.
fn engine_from(checkpoint: &str) -> Engine {
    let model = CodeBe::load_json(checkpoint).expect("checkpoint parses");
    let vega = Vega::with_model(VegaConfig::tiny(), model).expect("checkpoint fits the corpus");
    Engine::new(vega)
}

fn start(checkpoint: &str, cfg: ServeConfig) -> (Server, String) {
    let server = Server::start(engine_from(checkpoint), cfg).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn result_render(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(true),
        "expected success: {}",
        resp.render()
    );
    resp.field("result").unwrap().render()
}

fn error_code(resp: &Json) -> String {
    assert_eq!(
        resp.field("ok").unwrap(),
        &Json::Bool(false),
        "expected failure: {}",
        resp.render()
    );
    resp.field("error").unwrap().as_str().unwrap().to_string()
}

#[test]
fn serve_end_to_end() {
    vega_par::set_threads(4);
    let trained = Vega::train(VegaConfig::tiny());
    let checkpoint = trained.model().save_json();

    // Direct in-process generations are the byte-identity reference.
    let reference = Engine::new(trained);
    let groups = reference.group_names();
    let targets = reference.target_names();
    assert!(groups.len() >= 2 && targets.len() >= 2);
    let (t0, g0) = (targets[0].clone(), groups[0].clone());
    let expect = |target: &str, group: &str| -> String {
        let (module, gf) = reference
            .generate(target, group)
            .expect("direct generation");
        protocol::render_generated(target, group, module, &gf).render()
    };
    let expected_t0g0 = expect(&t0, &g0);

    sequential_cache_and_errors(&checkpoint, &t0, &targets[1], &g0, &expected_t0g0);
    concurrent_coalescing(&checkpoint, &t0, &g0, &expected_t0g0);
    backpressure_and_deadlines(&checkpoint, &targets, &groups);
    telemetry_and_flight(&checkpoint, &t0, &g0, &expected_t0g0);
    // Last: speculation bumps the process-global spec.* counters, which the
    // telemetry scenario asserts are still zero.
    speculative_serving(&checkpoint, &t0, &g0, &expected_t0g0);
}

/// threads=1: cache hits, byte-identity against direct generation, error
/// responses, and shutdown-refuses-new-work.
fn sequential_cache_and_errors(checkpoint: &str, t0: &str, t1: &str, g0: &str, expected: &str) {
    vega_par::set_threads(1);
    let (server, addr) = start(checkpoint, ServeConfig::default());
    let mut c = Client::connect(&addr).unwrap();

    let pong = c.op("ping").unwrap();
    assert_eq!(pong.field("pong").unwrap(), &Json::Bool(true));

    // First request is a miss, second a hit; both byte-identical to the
    // direct generate_function call.
    let first = c.generate(t0, g0, None).unwrap();
    assert_eq!(first.field("cached").unwrap(), &Json::Bool(false));
    assert_eq!(
        result_render(&first),
        expected,
        "server response differs from direct generation"
    );
    let second = c.generate(t0, g0, None).unwrap();
    assert_eq!(second.field("cached").unwrap(), &Json::Bool(true));
    assert_eq!(
        result_render(&second),
        expected,
        "cache hit is not byte-identical"
    );

    // Error paths name what exists.
    let bad_target = c.generate("NoSuchTarget", g0, None).unwrap();
    assert_eq!(error_code(&bad_target), "unknown_target");
    let msg = bad_target
        .field("message")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(msg.contains("NoSuchTarget") && msg.contains(t0), "{msg}");
    let bad_group = c.generate(t0, "noSuchGroup", None).unwrap();
    assert_eq!(error_code(&bad_group), "unknown_group");
    assert!(
        bad_group
            .field("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains(g0),
        "unknown-group message should list available groups"
    );
    let garbage = c.request_raw("this is not json").unwrap();
    assert_eq!(error_code(&Json::parse(&garbage).unwrap()), "bad_request");

    // Shutdown refuses fresh generate work (but the cache still answers
    // during the drain), then the server joins cleanly with accurate
    // counters.
    let stopping = c.op("shutdown").unwrap();
    assert_eq!(stopping.field("stopping").unwrap(), &Json::Bool(true));
    let refused = c.generate(t1, g0, None).unwrap();
    assert_eq!(error_code(&refused), "shutting_down");
    let drained = c.generate(t0, g0, None).unwrap();
    assert_eq!(drained.field("cached").unwrap(), &Json::Bool(true));
    assert_eq!(result_render(&drained), expected);
    let stats = server.join_with_stats();
    assert_eq!(stats.cache_hits, 2, "exactly two cache hits expected");
    assert_eq!(stats.generated, 1, "exactly one fresh generation expected");
    assert!(stats.requests >= 4);
}

/// threads=4: concurrent identical requests are answered byte-identically to
/// the sequential (threads=1) run, and the key is generated exactly once —
/// every other request either coalesced onto it or hit the cache.
fn concurrent_coalescing(checkpoint: &str, t0: &str, g0: &str, expected: &str) {
    vega_par::set_threads(4);
    let (server, addr) = start(checkpoint, ServeConfig::default());
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let (t0, g0) = (t0.to_string(), g0.to_string());
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr).unwrap();
                c.generate(&t0, &g0, None).unwrap()
            })
        })
        .collect();
    for w in workers {
        let resp = w.join().expect("client thread");
        assert_eq!(
            result_render(&resp),
            expected,
            "concurrent response differs from the threads=1 sequential generation"
        );
    }
    server.shutdown();
    let stats = server.join_with_stats();
    assert_eq!(stats.requests, 8);
    assert_eq!(
        stats.generated, 1,
        "8 identical concurrent requests must generate exactly once \
         (coalesced={} cache_hits={})",
        stats.coalesced, stats.cache_hits
    );
    assert_eq!(stats.coalesced + stats.cache_hits, 7);
}

/// A deliberately slow single-replica server with a one-slot queue: excess
/// concurrent work is shed with `overloaded` (never hung), and a job whose
/// deadline elapses while queued is answered with `deadline_exceeded`.
fn backpressure_and_deadlines(checkpoint: &str, targets: &[String], groups: &[String]) {
    vega_par::set_threads(1);
    let cfg = ServeConfig {
        cache_cap: 0, // every request is fresh work
        queue_cap: 1,
        batch: 1,
        slow_ms: 400,
        ..ServeConfig::default()
    };
    let (server, addr) = start(checkpoint, cfg);

    // Deadline: occupy the single replica, then queue a job that cannot be
    // dispatched before its 1 ms deadline.
    let slow = {
        let addr = addr.clone();
        let (t, g) = (targets[0].clone(), groups[0].clone());
        std::thread::spawn(move || {
            Client::connect(&addr)
                .unwrap()
                .generate(&t, &g, None)
                .unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(150));
    let mut c = Client::connect(&addr).unwrap();
    let late = c.generate(&targets[1], &groups[0], Some(1)).unwrap();
    assert_eq!(error_code(&late), "deadline_exceeded");
    assert_eq!(slow.join().unwrap().field("ok").unwrap(), &Json::Bool(true));

    // Overload: burst six distinct fresh jobs at a server that can hold at
    // most one running plus one queued. At least one must be shed, every
    // probe must get an answer, and successes still verify.
    let mut pairs = Vec::new();
    'outer: for g in groups.iter().rev() {
        for t in targets.iter().rev() {
            pairs.push((t.clone(), g.clone()));
            if pairs.len() == 6 {
                break 'outer;
            }
        }
    }
    let probes: Vec<_> = pairs
        .into_iter()
        .map(|(t, g)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                Client::connect(&addr)
                    .unwrap()
                    .generate(&t, &g, Some(30_000))
                    .unwrap()
            })
        })
        .collect();
    let mut shed = 0;
    let mut answered = 0;
    for p in probes {
        let resp = p.join().expect("probe answered (never hangs)");
        answered += 1;
        if resp.field("ok").unwrap() == &Json::Bool(false) {
            assert_eq!(error_code(&resp), "overloaded");
            let msg = resp.field("message").unwrap().as_str().unwrap().to_string();
            assert!(msg.contains("queue full"), "{msg}");
            shed += 1;
        }
    }
    assert_eq!(answered, 6);
    assert!(shed >= 1, "a 6-request burst at queue_cap=1 must shed");

    server.shutdown();
    let stats = server.join_with_stats();
    assert_eq!(stats.shed, shed);
    assert_eq!(stats.deadline_exceeded, 1);
}

/// Traced requests echo the caller's trace id and a timing breakdown, the
/// `stats`, `metrics` and Prometheus `text` views of the same process agree
/// with each other, and the flight recorder retains trace-stamped spans
/// served by the `flightdump` op — without perturbing the `result` bytes.
fn telemetry_and_flight(checkpoint: &str, t0: &str, g0: &str, expected: &str) {
    vega_par::set_threads(1);
    let cfg = ServeConfig {
        flight_cap: 128,
        ..ServeConfig::default()
    };
    let (server, addr) = start(checkpoint, cfg);
    let mut c = Client::connect(&addr).unwrap();
    c.set_tracer(0xC0FFEE);
    // A twin generator predicts every trace the client will mint.
    let mut twin = TraceIdGen::new(0xC0FFEE);

    // Fresh generation: trace echoed, timing says miss, result bytes
    // untouched by the new envelope fields.
    let miss = c.generate(t0, g0, None).unwrap();
    let miss_trace = twin.mint().render();
    assert_eq!(result_render(&miss), expected);
    assert_eq!(
        miss.field("trace").unwrap().as_str().unwrap(),
        miss_trace,
        "response must echo the caller's trace id"
    );
    let timing = miss.field("timing").unwrap();
    assert_eq!(timing.field("cache").unwrap().as_str().unwrap(), "miss");
    let tokens = timing.field("tokens").unwrap().as_u64().unwrap();
    assert!(tokens > 0, "a fresh generation decodes at least one token");
    assert!(timing.field("decode_ms").unwrap().as_f64().unwrap() >= 0.0);
    timing.field("queue_ms").unwrap().as_u64().unwrap();

    // Cache hit: new trace, timing says hit with zero decode work.
    let hit = c.generate(t0, g0, None).unwrap();
    let hit_trace = twin.mint().render();
    assert_eq!(hit.field("trace").unwrap().as_str().unwrap(), hit_trace);
    let hit_timing = hit.field("timing").unwrap();
    assert_eq!(hit_timing.field("cache").unwrap().as_str().unwrap(), "hit");
    assert_eq!(hit_timing.field("tokens").unwrap().as_u64().unwrap(), 0);

    // The metrics op returns three views of the same instant; they must
    // agree exactly (golden consistency, not approximate).
    let m = c.op("metrics").unwrap();
    assert_eq!(m.field("ok").unwrap(), &Json::Bool(true));
    let stats = m.field("stats").unwrap();
    let metrics = m.field("metrics").unwrap();
    let stat_f64 = |name: &str| stats.field(name).unwrap().as_f64().unwrap();
    let stat_u64 = |name: &str| stats.field(name).unwrap().as_u64().unwrap();

    assert_eq!(stat_u64("cache_hits"), 1);
    assert_eq!(stat_u64("cache_misses"), 1);
    assert_eq!(
        stat_f64("cache_hit_ratio"),
        0.5,
        "one hit + one miss must precompute to exactly 0.5"
    );

    // stats.decode_tokens mirrors the obs counter verbatim, and the
    // decode.step_seconds histogram observed exactly one sample per token.
    let counters = metrics.field("counters").unwrap();
    let decode_tokens = counters.field("decode.tokens").unwrap().as_u64().unwrap();
    assert_eq!(stat_u64("decode_tokens"), decode_tokens);
    let step = metrics
        .field("hists")
        .unwrap()
        .field("decode.step_seconds")
        .unwrap();
    assert_eq!(
        step.field("count").unwrap().as_u64().unwrap(),
        decode_tokens
    );
    for (stat_name, hist_q) in [
        ("decode_step_p50", "p50"),
        ("decode_step_p90", "p90"),
        ("decode_step_p99", "p99"),
    ] {
        let from_stats = stat_f64(stat_name);
        let from_hist = step.field(hist_q).unwrap().as_f64().unwrap();
        assert_eq!(
            from_stats, from_hist,
            "stats.{stat_name} and hists.decode.step_seconds.{hist_q} disagree"
        );
    }

    // Without --speculate/--draft the speculation stats read zero (the
    // speculative scenario below then proves they move): same golden
    // consistency, just for the off state.
    assert_eq!(stat_u64("spec_draft_tokens"), 0);
    assert_eq!(stat_u64("spec_accepted_tokens"), 0);
    assert_eq!(stat_f64("spec_accept_ratio"), 0.0);
    assert_eq!(stat_u64("spec_depth"), 0);
    let spec_depth_gauge = metrics
        .field("gauges")
        .unwrap()
        .field("serve.spec.depth")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(spec_depth_gauge, 0.0, "depth gauge must read 0 when off");

    // The Prometheus exposition is well-formed `name value` text with the
    // same sample count.
    let text = m.field("text").unwrap().as_str().unwrap().to_string();
    let mut prom_count = None;
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let name = parts.next().expect("metric name");
        let value = parts.next().expect("metric value");
        assert_eq!(
            parts.next(),
            None,
            "exposition lines are `name value`: {line}"
        );
        assert!(name.starts_with("vega_"), "{line}");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in {line}"));
        if name == "vega_decode_step_seconds_count" {
            prom_count = Some(value.parse::<f64>().unwrap());
        }
    }
    assert_eq!(
        prom_count,
        Some(decode_tokens as f64),
        "Prometheus _count must match the JSON histogram count"
    );
    assert!(
        text.contains("le=\"+Inf\""),
        "cumulative buckets must end at +Inf:\n{text}"
    );

    // The flight recorder retained trace-stamped spans for both requests.
    let fd = c.op("flightdump").unwrap();
    assert_eq!(fd.field("enabled").unwrap(), &Json::Bool(true));
    let records = fd.field("records").unwrap().as_array().unwrap();
    // `what` is the dotted span path, so match on the leaf name.
    let has = |leaf: &str, trace: &str| {
        records.iter().any(|r| {
            r.field("what")
                .ok()
                .and_then(|w| w.as_str().ok())
                .is_some_and(|w| w.ends_with(leaf))
                && r.field("trace").ok().and_then(|t| t.as_str().ok()) == Some(trace)
        })
    };
    assert!(
        has("serve.generate", &miss_trace),
        "the miss's generate span must be in the flight dump: {}",
        fd.render()
    );
    assert!(
        has("serve.cache_lookup", &hit_trace),
        "the hit's cache-lookup span must be in the flight dump: {}",
        fd.render()
    );

    server.shutdown();
    server.join_with_stats();
    // The recorder is process-global; leave it off for whatever runs next.
    vega_obs::flight::configure(0);
}

/// A replica server with a GRU draft installed (`--speculate 3 --draft …`):
/// the response is byte-identical to plain greedy — speculation is exact by
/// construction — and the `stats` speculation fields mirror the obs
/// counters and the configured depth.
fn speculative_serving(checkpoint: &str, t0: &str, g0: &str, expected: &str) {
    vega_par::set_threads(1);
    let model_vocab = CodeBe::load_json(checkpoint)
        .expect("checkpoint parses")
        .vocab
        .len();
    // An untrained draft: acceptance may be poor, but exactness (and the
    // counter plumbing) is independent of draft quality.
    let draft = vega_nn::GruSeq2Seq::new(vega_nn::GruConfig::tiny(model_vocab));
    let cfg = ServeConfig {
        speculate: 3,
        draft: Some(std::sync::Arc::new(draft)),
        ..ServeConfig::default()
    };
    let (server, addr) = start(checkpoint, cfg);
    let mut c = Client::connect(&addr).unwrap();

    let fresh = c.generate(t0, g0, None).unwrap();
    assert_eq!(fresh.field("cached").unwrap(), &Json::Bool(false));
    assert_eq!(
        result_render(&fresh),
        expected,
        "speculative serving must be byte-identical to plain greedy"
    );

    let m = c.op("metrics").unwrap();
    assert_eq!(m.field("ok").unwrap(), &Json::Bool(true));
    let stats = m.field("stats").unwrap();
    let stat_u64 = |name: &str| stats.field(name).unwrap().as_u64().unwrap();
    assert_eq!(stat_u64("spec_depth"), 3);
    let drafted = stat_u64("spec_draft_tokens");
    let accepted = stat_u64("spec_accepted_tokens");
    assert!(drafted > 0, "the draft must have proposed tokens");
    assert!(accepted <= drafted);
    let ratio = stats.field("spec_accept_ratio").unwrap().as_f64().unwrap();
    assert_eq!(
        ratio,
        accepted as f64 / drafted as f64,
        "spec_accept_ratio must be precomputed from the two counters"
    );

    // The stats fields mirror the obs counters verbatim, and the live depth
    // gauge reads the configured (non-degraded) depth.
    let metrics = m.field("metrics").unwrap();
    let counters = metrics.field("counters").unwrap();
    let counter_u64 = |name: &str| counters.field(name).unwrap().as_u64().unwrap();
    assert_eq!(counter_u64("spec.draft_tokens"), drafted);
    assert_eq!(counter_u64("spec.accepted_tokens"), accepted);
    assert!(counter_u64("spec.rounds") >= 1);
    let depth_gauge = metrics
        .field("gauges")
        .unwrap()
        .field("serve.spec.depth")
        .unwrap()
        .as_f64()
        .unwrap();
    assert_eq!(depth_gauge, 3.0);

    server.shutdown();
    server.join_with_stats();
}
