//! Continuous batching: one forward pass serves many requests.
//!
//! The replica-pool dispatcher gives every in-flight generation its own full
//! weight-matrix traversal. This module amortizes those traversals: a single
//! **broker** thread owns a [`vega_nn::BatchDecode`] batch over one model
//! and steps every in-flight decode *session* in lockstep — each step reads
//! every weight row once and advances all sessions, so weight bandwidth is
//! shared N ways instead of paid N times.
//!
//! Scheduling is *continuous*: sessions join the running batch at any token
//! boundary (no micro-batch barrier to wait for) and leave the moment they
//! finish, freeing their slot for the next queued session. A session is one
//! decode primitive — a greedy generation or a forced-sequence scoring — so
//! a single `generate` request contributes many short sessions over its
//! lifetime, interleaving naturally with other requests.
//!
//! Wiring: dispatcher workers hold model replicas with a [`BatchBackend`]
//! installed (see [`vega_model::DecodeBackend`]). Every decode call the
//! generation pipeline makes on such a replica turns into a message to the
//! broker and a blocking wait for the reply. The broker replicates the
//! single-session `greedy`/`forced_logprob` loops *exactly* — same argmax,
//! same degeneracy exit, same softmax and clamp — over per-slot logits that
//! are themselves bit-identical to the single path (the `vega-nn` batch
//! contract), so installing the backend changes no output bit.
//!
//! Deadlines are honored at token boundaries: before each lockstep pass the
//! broker retires expired sessions with [`DecodeAbort::Expired`]; nothing
//! partial escapes. The `serve.batch` chaos site kills a live slot
//! mid-generation; recovery replays the session from scratch — generation
//! is a pure function of weights and input, so the replay is
//! byte-identical and the caller never observes the fault.

use std::collections::VecDeque;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::time::Instant;
use vega_model::{BackendHandle, CodeBe, DecodeAbort, DecodeBackend, Special};
use vega_nn::decode::softmax_row;
use vega_nn::{argmax, looks_degenerate, BatchDecode};

/// What a session computes.
enum Work {
    /// Greedy generation: emit tokens until EOS / degeneracy / length cap.
    Greedy { input: Vec<usize>, max_len: usize },
    /// Forced-sequence scoring: sum per-step log-probabilities of `output`.
    Logprob {
        input: Vec<usize>,
        output: Vec<usize>,
    },
}

/// A decode request from a dispatcher worker to the broker.
struct SessionReq {
    work: Work,
    deadline: Option<Instant>,
    reply: Sender<SessionReply>,
}

/// The broker's answer: the decode result plus this session's share of the
/// batched step time, which the *worker* thread feeds into the thread-local
/// decode tally so per-request attribution keeps working (the broker thread
/// can't bump a waiter's thread-local).
struct SessionReply {
    result: Result<SessionOut, DecodeAbort>,
    tokens: u64,
    seconds: f64,
}

enum SessionOut {
    Tokens(Vec<usize>),
    Logprob(f32),
}

/// The [`DecodeBackend`] installed on dispatcher replicas in batch mode:
/// forwards both decode primitives to the broker and blocks for the reply.
pub struct BatchBackend {
    tx: Sender<SessionReq>,
}

impl BatchBackend {
    fn call(&self, work: Work, deadline: Option<Instant>) -> Result<SessionOut, DecodeAbort> {
        let (reply_tx, reply_rx) = channel();
        let req = SessionReq {
            work,
            deadline,
            reply: reply_tx,
        };
        if self.tx.send(req).is_err() {
            return Err(DecodeAbort::Broken("batch broker is gone".into()));
        }
        let reply = reply_rx
            .recv()
            .map_err(|_| DecodeAbort::Broken("batch broker dropped the session".into()))?;
        // Attribute this session's decode work to the calling thread, where
        // the dispatcher's tally reset/snapshot protocol expects it.
        vega_nn::decode::tally::bump_n(reply.tokens, reply.seconds);
        reply.result
    }
}

impl DecodeBackend for BatchBackend {
    fn generate(
        &self,
        input: &[usize],
        max_len: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<usize>, DecodeAbort> {
        match self.call(
            Work::Greedy {
                input: input.to_vec(),
                max_len,
            },
            deadline,
        )? {
            SessionOut::Tokens(t) => Ok(t),
            SessionOut::Logprob(_) => Err(DecodeAbort::Broken("broker replied wrong kind".into())),
        }
    }

    fn sequence_logprob(
        &self,
        input: &[usize],
        output: &[usize],
        deadline: Option<Instant>,
    ) -> Result<f32, DecodeAbort> {
        match self.call(
            Work::Logprob {
                input: input.to_vec(),
                output: output.to_vec(),
            },
            deadline,
        )? {
            SessionOut::Logprob(lp) => Ok(lp),
            SessionOut::Tokens(_) => Err(DecodeAbort::Broken("broker replied wrong kind".into())),
        }
    }
}

/// A running broker thread plus the sender used to mint backends.
///
/// Dropping the handle drops its own sender and joins the broker; the
/// broker exits once *every* sender is gone, so the handle must be dropped
/// after the replicas holding [`BackendHandle`] clones (struct field order
/// in `ModelSet` guarantees this).
pub(crate) struct BatcherHandle {
    tx: Option<Sender<SessionReq>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl BatcherHandle {
    /// Spawns a broker over its own replica of `model` (which must have no
    /// backend installed) with `capacity` lockstep slots.
    pub(crate) fn spawn(model: CodeBe, capacity: usize) -> BatcherHandle {
        assert!(
            !model.has_decode_backend(),
            "broker model must decode locally"
        );
        let (tx, rx) = channel();
        let thread = std::thread::Builder::new()
            .name("vega-batch-broker".into())
            .spawn(move || broker_loop(&model, capacity.max(1), &rx))
            .expect("spawn batch broker");
        BatcherHandle {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    /// A backend handle for installation on a dispatcher replica.
    pub(crate) fn backend(&self) -> BackendHandle {
        BackendHandle::new(BatchBackend {
            tx: self.tx.clone().expect("batcher running"),
        })
    }
}

impl Drop for BatcherHandle {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One in-flight session occupying a batch slot.
struct Active {
    slot: usize,
    deadline: Option<Instant>,
    reply: Sender<SessionReply>,
    state: ActiveState,
    /// Attributed decode work: emitted-token count and share of step time.
    tokens: u64,
    seconds: f64,
    /// The original request's work, kept verbatim so a chaos-killed slot
    /// can replay the session from scratch.
    work: Work,
}

enum ActiveState {
    Greedy {
        /// The emitted stream including the leading BOS, exactly as the
        /// single-session greedy loop carries it.
        out: Vec<usize>,
        cap: usize,
    },
    Logprob {
        tgt_in: Vec<usize>,
        tgt_out: Vec<usize>,
        pos: usize,
        n: usize,
        lp: f32,
        probs: Vec<f32>,
    },
}

fn broker_loop(model: &CodeBe, capacity: usize, rx: &Receiver<SessionReq>) {
    let obs = vega_obs::global();
    let bos = model.vocab.special(Special::Bos);
    let eos = model.vocab.special(Special::Eos);
    let model_max = model.max_len();
    let vocab_len = model.vocab.len();
    let mut batch = model.begin_batch_decode(capacity);
    let mut pending: VecDeque<(SessionReq, Instant)> = VecDeque::new();
    let mut active: Vec<Active> = Vec::new();
    let mut disconnected = false;
    loop {
        // --- Token-boundary join: drain queued requests without blocking;
        // block only when the batch is idle and nothing is pending.
        if active.is_empty() && pending.is_empty() {
            if disconnected {
                return;
            }
            match rx.recv() {
                Ok(req) => pending.push_back((req, Instant::now())),
                Err(_) => return,
            }
        }
        loop {
            match rx.try_recv() {
                Ok(req) => pending.push_back((req, Instant::now())),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        // --- Admit pending sessions into free slots.
        while active.len() < capacity {
            let Some((req, received)) = pending.pop_front() else {
                break;
            };
            obs.observe(
                "serve.batch.join_wait_ms",
                received.elapsed().as_secs_f64() * 1e3,
            );
            if let Some(a) = admit(req, &mut *batch, bos, eos, model_max, vocab_len) {
                obs.counter_add("serve.batch.joins", 1);
                active.push(a);
            }
        }
        obs.gauge_set("serve.batch.active", active.len() as f64);
        // --- Chaos site: a live slot dies mid-generation. Recovery: retire
        // the slot and replay its session from scratch — generation is a
        // pure function of weights + input, so the caller's bytes are
        // unchanged and only latency (and the replay counter) show it.
        if !active.is_empty() && vega_fault::check(vega_fault::sites::SERVE_BATCH).is_some() {
            let victim = active.remove(0);
            batch.retire(victim.slot);
            pending.push_front((
                SessionReq {
                    work: victim.work,
                    deadline: victim.deadline,
                    reply: victim.reply,
                },
                Instant::now(),
            ));
            obs.counter_add("serve.batch.replays", 1);
            vega_fault::recovered(vega_fault::sites::SERVE_BATCH);
            continue;
        }
        // --- Deadline checks at the token boundary, before paying for the
        // next lockstep pass. Expired sessions abort whole: no partial
        // token stream or score ever reaches a caller.
        let now = Instant::now();
        let mut i = 0;
        while i < active.len() {
            if active[i].deadline.is_some_and(|d| now > d) {
                let a = active.swap_remove(i);
                batch.retire(a.slot);
                let _ = a.reply.send(SessionReply {
                    result: Err(DecodeAbort::Expired),
                    tokens: a.tokens,
                    seconds: a.seconds,
                });
            } else {
                i += 1;
            }
        }
        if active.is_empty() {
            continue;
        }
        // --- One lockstep pass: every session advances one token through a
        // single shared traversal of the weights.
        let feeds: Vec<(usize, usize)> = active
            .iter()
            .map(|a| {
                let token = match &a.state {
                    ActiveState::Greedy { out, .. } => *out.last().expect("greedy carries bos"),
                    ActiveState::Logprob { tgt_in, pos, .. } => tgt_in[*pos],
                };
                (a.slot, token)
            })
            .collect();
        let t0 = Instant::now();
        batch.step(&feeds);
        let dt = t0.elapsed().as_secs_f64();
        let share = dt / feeds.len() as f64;
        obs.counter_add("serve.batch.steps", 1);
        obs.observe("serve.batch.occupancy", feeds.len() as f64);
        // --- Advance every fed session; retire the finished.
        let mut i = 0;
        while i < active.len() {
            let a = &mut active[i];
            let done = match &mut a.state {
                ActiveState::Greedy { out, cap } => {
                    // Exact single-path greedy step: argmax → EOS exit →
                    // emit → degeneracy exit → length cap. Tokens and step
                    // time are attributed per step, mirroring the single
                    // path's per-token `decode.tokens`/`step_seconds`.
                    let next = argmax(batch.logits(a.slot)).unwrap_or(eos);
                    obs.observe("decode.step_seconds", share);
                    obs.counter_add("decode.tokens", 1);
                    a.tokens += 1;
                    a.seconds += share;
                    if next == eos {
                        true
                    } else {
                        out.push(next);
                        looks_degenerate(out) || out.len() >= *cap
                    }
                }
                ActiveState::Logprob {
                    tgt_out,
                    pos,
                    n,
                    lp,
                    probs,
                    ..
                } => {
                    probs.copy_from_slice(batch.logits(a.slot));
                    softmax_row(probs);
                    *lp += probs[tgt_out[*pos]].max(1e-12).ln();
                    *pos += 1;
                    *pos >= *n
                }
            };
            if !done {
                i += 1;
                continue;
            }
            let a = active.swap_remove(i);
            batch.retire(a.slot);
            let (result, tokens, seconds) = match a.state {
                ActiveState::Greedy { mut out, .. } => {
                    out.remove(0); // strip BOS, as the single path does
                    (SessionOut::Tokens(out), a.tokens, a.seconds)
                }
                ActiveState::Logprob { n, lp, .. } => {
                    obs.counter_add("decode.scored_tokens", n as u64);
                    // Scoring never bumps the decode tally on the single
                    // path (only `greedy` does), so the attribution a
                    // logprob session hands back is zero too.
                    (SessionOut::Logprob(lp), 0, 0.0)
                }
            };
            let _ = a.reply.send(SessionReply {
                result: Ok(result),
                tokens,
                seconds,
            });
        }
    }
}

/// Turns a request into an active session, or answers it immediately when
/// it needs no decode step (zero-length caps/targets — the single path
/// returns without stepping for those too).
fn admit(
    req: SessionReq,
    batch: &mut dyn BatchDecode,
    bos: usize,
    eos: usize,
    model_max: usize,
    vocab_len: usize,
) -> Option<Active> {
    let deadline = req.deadline;
    match &req.work {
        Work::Greedy { input, max_len } => {
            let cap = (*max_len).min(model_max);
            if cap <= 1 {
                // `greedy` never enters its loop: the BOS-only stream
                // strips to an empty output.
                let _ = req.reply.send(SessionReply {
                    result: Ok(SessionOut::Tokens(Vec::new())),
                    tokens: 0,
                    seconds: 0.0,
                });
                return None;
            }
            let slot = batch.join(input).expect("admit into a full batch");
            Some(Active {
                slot,
                deadline,
                reply: req.reply,
                state: ActiveState::Greedy {
                    out: vec![bos],
                    cap,
                },
                tokens: 0,
                seconds: 0.0,
                work: req.work,
            })
        }
        Work::Logprob { input, output } => {
            // Replicate the `Seq2Seq::sequence_logprob` default: teacher
            // forcing over `[bos] + output` scoring `output + [eos]`.
            let mut tgt_in = Vec::with_capacity(output.len() + 1);
            tgt_in.push(bos);
            tgt_in.extend_from_slice(output);
            let mut tgt_out = output.clone();
            tgt_out.push(eos);
            let n = tgt_in.len().min(tgt_out.len()).min(model_max);
            if n == 0 {
                let _ = req.reply.send(SessionReply {
                    result: Ok(SessionOut::Logprob(0.0)),
                    tokens: 0,
                    seconds: 0.0,
                });
                return None;
            }
            let slot = batch.join(input).expect("admit into a full batch");
            Some(Active {
                slot,
                deadline,
                reply: req.reply,
                state: ActiveState::Logprob {
                    tgt_in,
                    tgt_out,
                    pos: 0,
                    n,
                    lp: 0.0,
                    probs: vec![0.0; vocab_len],
                },
                tokens: 0,
                seconds: 0.0,
                work: req.work,
            })
        }
    }
}
