//! A content-addressed LRU cache with hit/miss/eviction accounting.
//!
//! Keys are the stable hex digests from [`crate::hash`]; values are the fully
//! rendered response payloads, so a cache hit is byte-identical to the miss
//! that populated it. Recency is tracked with a monotone tick and a
//! `BTreeMap<tick, key>` index — both lookups and evictions are `O(log n)`
//! with no unsafe code and no linked lists.

use std::collections::BTreeMap;

/// An LRU map from `String` keys to clonable values.
#[derive(Debug)]
pub struct LruCache<V> {
    cap: usize,
    tick: u64,
    map: BTreeMap<String, (u64, V)>,
    order: BTreeMap<u64, String>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V: Clone> LruCache<V> {
    /// A cache holding at most `cap` entries (`cap == 0` disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            tick: 0,
            map: BTreeMap::new(),
            order: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up `key`, counting a hit (and refreshing its recency) or a miss.
    pub fn get(&mut self, key: &str) -> Option<V> {
        match self.map.get_mut(key) {
            Some((tick, v)) => {
                self.hits += 1;
                self.order.remove(tick);
                self.tick += 1;
                *tick = self.tick;
                let v = v.clone();
                self.order.insert(self.tick, key.to_string());
                Some(v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: &str, value: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if let Some((old_tick, _)) = self.map.get(key) {
            self.order.remove(old_tick);
        } else if self.map.len() >= self.cap {
            // `order` is non-empty whenever `map` is; the first tick is the
            // least recently used key.
            if let Some((&t, _)) = self.order.iter().next() {
                if let Some(victim) = self.order.remove(&t) {
                    self.map.remove(&victim);
                    self.evictions += 1;
                }
            }
        }
        self.map.insert(key.to_string(), (self.tick, value));
        self.order.insert(self.tick, key.to_string());
    }

    /// Drops every entry (hit/miss/eviction counters are kept — they count
    /// lifetime traffic, not current contents). Used when a model swap
    /// invalidates everything the cache could hold.
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_in_least_recently_used_order() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Touch `a` so `b` becomes the LRU entry.
        assert_eq!(c.get("a"), Some(1));
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("b"), None, "b was least recently used");
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.evictions(), 1);

        // Now `a` is LRU (b's miss did not refresh anything).
        c.insert("d", 4);
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.get("d"), Some(4));
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn hit_and_miss_counters_are_exact() {
        let mut c: LruCache<i32> = LruCache::new(4);
        assert_eq!(c.get("x"), None);
        assert_eq!(c.get("x"), None);
        c.insert("x", 7);
        assert_eq!(c.get("x"), Some(7));
        assert_eq!(c.get("y"), None);
        assert_eq!(c.get("x"), Some(7));
        assert_eq!((c.hits(), c.misses(), c.evictions()), (2, 3, 0));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn reinsert_refreshes_without_growth_and_zero_cap_disables() {
        let mut c: LruCache<i32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh, not eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get("a"), Some(10));
        c.insert("c", 3); // now b is LRU
        assert_eq!(c.get("b"), None);

        let mut off: LruCache<i32> = LruCache::new(0);
        off.insert("a", 1);
        assert_eq!(off.get("a"), None);
        assert!(off.is_empty());
        assert_eq!((off.hits(), off.misses()), (0, 1));
    }
}
