//! Checkpoint loading with explicit validation.
//!
//! A checkpoint file is the JSON produced by `vega-experiments --save-model`
//! (`CodeBe::save_json`). The registry separates the three ways loading can
//! fail — unreadable file, unparseable JSON, model/corpus mismatch — and
//! reports each with the offending path, instead of panicking half-way
//! through startup.

use std::path::{Path, PathBuf};
use vega::{Vega, VegaConfig};
use vega_model::CodeBe;

use crate::engine::Engine;

/// What the registry learned about a checkpoint at load time.
#[derive(Debug, Clone)]
pub struct CheckpointMeta {
    /// Where the checkpoint was read from.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: usize,
    /// Model architecture (`transformer` / `gru`).
    pub arch: String,
    /// Vocabulary size in pieces.
    pub vocab_pieces: usize,
    /// Maximum sequence length the model was built for.
    pub max_len: usize,
    /// On-disk format the file was detected as (`vega-ckpt/v1` /
    /// `vega-ckpt/v2`).
    pub format: String,
}

/// A checkpoint that could not be loaded or does not fit the corpus.
#[derive(Debug, Clone)]
pub struct RegistryError {
    /// Description naming the path and the failure.
    pub msg: String,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "checkpoint registry: {}", self.msg)
    }
}

impl std::error::Error for RegistryError {}

/// A parsed-but-not-yet-validated checkpoint.
#[derive(Debug)]
pub struct Checkpoint {
    /// Load-time metadata.
    pub meta: CheckpointMeta,
    model: CodeBe,
}

/// Reads, verifies, and parses a checkpoint file.
///
/// Auto-detects the format: the `vega-ckpt/v2` binary layout (memory-mapped,
/// so the model borrows the file and replicas share its weights), the
/// crash-safe `vega-ckpt/v1` envelope (digest-verified, so truncated or
/// bit-flipped files are rejected before any weight decodes), and legacy
/// bare `CodeBe::save_json` files.
///
/// # Errors
/// [`RegistryError`] naming the path and the named [`vega_model::CkptError`]
/// when the file cannot be read, fails its digest, or does not parse.
pub fn load_checkpoint(path: &Path) -> Result<Checkpoint, RegistryError> {
    load_checkpoint_prefault(path, false)
}

/// As [`load_checkpoint`], optionally prefaulting the checkpoint region
/// (`MADV_WILLNEED` + a page-walk touch) so mapped weights are resident
/// before the first request instead of being demand-paged mid-generation.
///
/// # Errors
/// See [`load_checkpoint`].
pub fn load_checkpoint_prefault(path: &Path, prefault: bool) -> Result<Checkpoint, RegistryError> {
    let bytes = std::fs::metadata(path)
        .map(|m| m.len() as usize)
        .unwrap_or(0);
    let (model, format) =
        CodeBe::load_file_detect_opts(path, prefault).map_err(|e| RegistryError {
            msg: format!("{}: {e}", path.display()),
        })?;
    Ok(Checkpoint {
        meta: CheckpointMeta {
            path: path.to_path_buf(),
            bytes,
            arch: model.arch_name().to_string(),
            vocab_pieces: model.vocab.len(),
            max_len: model.max_len(),
            format: format.tag().to_string(),
        },
        model,
    })
}

impl Checkpoint {
    /// Converts a GRU checkpoint into a speculative-decoding draft model
    /// (`ServeConfig::draft`). Drafts are consulted only for token
    /// *proposals* — a mismatched draft degrades throughput, never output —
    /// so no corpus validation applies; only the architecture is checked.
    ///
    /// # Errors
    /// [`RegistryError`] when the checkpoint is not GRU-backed.
    pub fn into_draft(self) -> Result<std::sync::Arc<vega_nn::GruSeq2Seq>, RegistryError> {
        let path = self.meta.path.clone();
        let arch = self.meta.arch.clone();
        self.model
            .into_gru()
            .map(std::sync::Arc::new)
            .ok_or_else(|| RegistryError {
                msg: format!(
                    "{}: a speculation draft must be a GRU checkpoint (arch is `{arch}`)",
                    path.display()
                ),
            })
    }

    /// Validates the checkpoint against `config`'s corpus and scale (Stage 1
    /// runs, Stage 2 is the loaded model) and builds the serving engine.
    ///
    /// # Errors
    /// [`RegistryError`] when the checkpoint's vocabulary or sequence length
    /// does not match what `config` derives — the mismatch `Vega::with_model`
    /// detects, annotated with the checkpoint path.
    pub fn into_engine(
        self,
        config: VegaConfig,
    ) -> Result<(CheckpointMeta, Engine), RegistryError> {
        let vega = Vega::with_model(config, self.model).map_err(|e| RegistryError {
            msg: format!("{} rejected: {e}", self.meta.path.display()),
        })?;
        Ok((self.meta, Engine::new(vega)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn missing_and_garbage_files_are_reported_with_their_path() {
        let err = load_checkpoint(Path::new("/nonexistent/ckpt.json")).unwrap_err();
        assert!(err.msg.contains("/nonexistent/ckpt.json"), "{}", err.msg);
        assert!(err.to_string().starts_with("checkpoint registry:"));

        let dir = std::env::temp_dir().join("vega-serve-registry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "{\"vocab\": 12").unwrap();
        let err = load_checkpoint(&garbage).unwrap_err();
        assert!(err.msg.contains("garbage.json"), "{}", err.msg);
        assert!(err.msg.contains("checkpoint corrupt"), "{}", err.msg);
    }
}
