//! The TCP service: bounded request queue, coalescing, batched dispatch.
//!
//! One thread accepts connections, one thread per connection parses requests,
//! and a single dispatcher thread drains the bounded queue in micro-batches,
//! fanning each batch across a fixed pool of model replicas via `vega-par`.
//! The control rules, in order, for a `generate` request:
//!
//! 1. **Cache** — if the content address is cached, answer immediately.
//! 2. **Coalesce** — if the same key is already queued or generating, attach
//!    to it; coalesced requests consume no queue slot and all attached
//!    requests receive the identical payload.
//! 3. **Backpressure** — if the queue holds `queue_cap` jobs, shed with an
//!    explicit `overloaded` response. The server never blocks an enqueue.
//! 4. **Deadline** — a job dequeued after its deadline is answered with
//!    `deadline_exceeded` instead of being generated.
//! 5. **Shutdown** — after shutdown begins, new work is refused with
//!    `shutting_down`, but everything already queued is generated and
//!    answered before the dispatcher exits.

use crate::engine::Engine;
use crate::lru::LruCache;
use crate::protocol::{self, ErrorKind, Request};
use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vega_model::CodeBe;
use vega_obs::json::Json;
use vega_obs::TraceCtx;

/// How the dispatcher turns queued jobs into decoded tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Replica fanout: micro-batches of jobs fan across a pool of model
    /// replicas via `vega-par`; every job pays a full weight traversal.
    #[default]
    Replica,
    /// Continuous batching: persistent workers route every decode call to
    /// a single broker that steps all in-flight generations in lockstep
    /// through shared weights (see the [`crate::batcher`] module docs).
    /// Outputs are bit-identical to replica mode.
    Batch,
}

impl EngineMode {
    /// Stable lowercase name, as reported by the `stats` op and accepted by
    /// the daemon's `--engine` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            EngineMode::Replica => "replica",
            EngineMode::Batch => "batch",
        }
    }

    /// Parses a mode name.
    ///
    /// # Errors
    /// Returns the unrecognized input.
    pub fn parse(s: &str) -> Result<EngineMode, String> {
        match s {
            "replica" => Ok(EngineMode::Replica),
            "batch" => Ok(EngineMode::Batch),
            other => Err(format!(
                "unknown engine mode `{other}` (expected `replica` or `batch`)"
            )),
        }
    }
}

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Generation-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Bounded queue capacity; a full queue sheds with `overloaded`.
    pub queue_cap: usize,
    /// Micro-batch size == model replica pool size (0 → `vega_par::threads()`).
    pub batch: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline_ms: u64,
    /// Fault injection: sleep this long inside every fresh generation (used
    /// by tests and CI to provoke queue overflow deterministically).
    pub slow_ms: u64,
    /// Per-connection idle read timeout: a connection that completes no
    /// request line for this long is closed (0 disables). Protects the
    /// server from half-open or stalled peers.
    pub conn_idle_timeout_ms: u64,
    /// Flight-recorder capacity in records; `Server::start` configures the
    /// process-wide recorder with it. 0 leaves the recorder untouched
    /// (disabled unless something else enabled it) — the default, so
    /// embedded servers in tests don't clobber each other's recorders. The
    /// `vega-serve` daemon enables it (default 256, `--flight-cap`).
    pub flight_cap: usize,
    /// Dispatch strategy (replica fanout vs continuous batching).
    pub engine: EngineMode,
    /// Continuous-batching broker capacity in lockstep slots (0 →
    /// `max(batch, 8)`); ignored by the replica engine. Each dispatch
    /// worker drives at most one generation through the broker at a time,
    /// so the default headroom only matters if the pool is resized.
    pub batch_slots: usize,
    /// Warm-touch (`madvise` + page-touch) checkpoint mappings on swap, so
    /// the first post-swap generations don't pay major-fault latency. Only
    /// affects v2 binary checkpoints loaded through the `swap` op; the
    /// daemon's initial load has its own `--prefault` flag.
    pub prefault: bool,
    /// Speculative-decoding depth: how many tokens the draft model proposes
    /// per verifier pass (`--speculate`). 0 disables speculation. Depth
    /// without a [`ServeConfig::draft`] degrades to plain greedy with a
    /// logged warning (output is bit-identical either way — speculation is
    /// exact, see `vega_nn::speculate`).
    pub speculate: usize,
    /// The GRU draft model speculation proposes tokens with, shared by all
    /// replicas (`--draft`). Only consulted for proposals: a weak or
    /// mismatched draft costs throughput, never changes output bytes.
    pub draft: Option<Arc<vega_nn::GruSeq2Seq>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            cache_cap: 512,
            queue_cap: 64,
            batch: 0,
            default_deadline_ms: 120_000,
            slow_ms: 0,
            conn_idle_timeout_ms: 300_000,
            flight_cap: 0,
            engine: EngineMode::Replica,
            batch_slots: 0,
            prefault: false,
            speculate: 0,
            draft: None,
        }
    }
}

/// A queued generation job.
struct Job {
    key: String,
    target: String,
    group: String,
    deadline: Instant,
    /// The submitting request's trace context; the dispatch worker adopts
    /// it so generation spans and flight records carry the caller's trace.
    trace: Option<TraceCtx>,
    /// When the job entered the queue (`timing.queue_ms` measures from
    /// here to dispatch).
    enqueued: Instant,
    /// The model set this job was keyed against, pinned at submit time. A
    /// hot swap flips the registry for *new* submissions; jobs already
    /// queued generate on the engine their cache key came from, so a swap
    /// never mixes keys and weights and never loses in-flight work.
    models: Arc<ModelSet>,
}

/// What a waiter receives when its job resolves.
#[derive(Debug, Clone)]
enum Outcome {
    Done {
        payload: Json,
        /// Queue wait of the job that produced the payload, in ms.
        queue_ms: u64,
        /// Decode time attributed to the generation, in ms.
        decode_ms: f64,
        /// Tokens the greedy decoder emitted for the generation.
        tokens: u64,
    },
    Failed {
        kind: ErrorKind,
        msg: String,
    },
}

/// Mutable server state, all under one lock (requests touch it for
/// microseconds; generation happens outside it).
struct State {
    queue: VecDeque<Job>,
    inflight: BTreeMap<String, Vec<Sender<Outcome>>>,
    cache: LruCache<Json>,
    shutting_down: bool,
    requests: u64,
    coalesced: u64,
    shed: u64,
    deadline_exceeded: u64,
    generated: u64,
    score_requests: u64,
}

/// A point-in-time statistics snapshot (also the `stats` op payload).
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Generate submissions seen (including cache hits and shed requests).
    pub requests: u64,
    /// Cache lookups that answered immediately.
    pub cache_hits: u64,
    /// Cache lookups that found nothing.
    pub cache_misses: u64,
    /// Entries evicted to make room.
    pub cache_evictions: u64,
    /// Entries currently cached.
    pub cache_len: u64,
    /// Requests attached to an already-pending identical job.
    pub coalesced: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Jobs answered with `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Fresh (non-cached) generations performed.
    pub generated: u64,
    /// `score` requests handled (they bypass cache, coalescing, and queue).
    pub score_requests: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
    /// Tokens emitted by the incremental greedy decoder (process-wide
    /// `decode.tokens` obs counter) — with wall-clock deltas this yields the
    /// serving-level tokens/sec that `vega-loadgen` reports.
    pub decode_tokens: u64,
    /// Tokens scored through the incremental `forced_logprob` path
    /// (process-wide `decode.scored_tokens` obs counter).
    pub decode_scored_tokens: u64,
    /// Cache hits as a fraction of all lookups (`0.0` before any lookup) —
    /// the same ratio the `metrics` op's counters imply, precomputed so
    /// `stats` and dashboards agree without client-side arithmetic.
    pub cache_hit_ratio: f64,
    /// p50 of the `decode.step_seconds` obs histogram (NaN when empty).
    pub decode_step_p50: f64,
    /// p90 of the `decode.step_seconds` obs histogram (NaN when empty).
    pub decode_step_p90: f64,
    /// p99 of the `decode.step_seconds` obs histogram (NaN when empty).
    pub decode_step_p99: f64,
    /// Dispatch strategy of the live model set (`"replica"` or `"batch"`).
    pub engine: &'static str,
    /// Active SIMD kernel (`"scalar"` or `"avx2"`, from `VEGA_KERNEL` — see
    /// `vega_nn::kernel`). Cache keys embed it, so operators can tell which
    /// mode a node's cached payloads belong to.
    pub kernel: &'static str,
    /// Heap bytes each replica of the live set owns privately (weights not
    /// borrowed from a shared checkpoint mapping). Zero after a v2 mmap
    /// load — the ROADMAP's resident-bytes-per-replica telemetry.
    pub resident_bytes_per_replica: u64,
    /// Lockstep passes the continuous-batching broker has run (0 in
    /// replica mode).
    pub batch_steps: u64,
    /// Sessions that joined the running batch (0 in replica mode).
    pub batch_joins: u64,
    /// Chaos-killed batch slots replayed from scratch (0 without faults).
    pub batch_replays: u64,
    /// Tokens the speculative draft model proposed (process-wide
    /// `spec.draft_tokens` obs counter; 0 with speculation off).
    pub spec_draft_tokens: u64,
    /// Drafted tokens the verifier accepted (`spec.accepted_tokens`).
    pub spec_accepted_tokens: u64,
    /// `spec_accepted_tokens / spec_draft_tokens` (`0.0` before any draft) —
    /// how often the draft predicted the verifier, precomputed like
    /// [`ServeStats::cache_hit_ratio`].
    pub spec_accept_ratio: f64,
    /// Active speculation depth of the live model set (0 = plain greedy,
    /// including every degraded configuration).
    pub spec_depth: u64,
}

impl ServeStats {
    /// Renders the snapshot as the `stats` payload.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("requests", Json::num_u64(self.requests)),
            ("cache_hits", Json::num_u64(self.cache_hits)),
            ("cache_misses", Json::num_u64(self.cache_misses)),
            ("cache_evictions", Json::num_u64(self.cache_evictions)),
            ("cache_len", Json::num_u64(self.cache_len)),
            ("coalesced", Json::num_u64(self.coalesced)),
            ("shed", Json::num_u64(self.shed)),
            ("deadline_exceeded", Json::num_u64(self.deadline_exceeded)),
            ("generated", Json::num_u64(self.generated)),
            ("score_requests", Json::num_u64(self.score_requests)),
            ("queue_depth", Json::num_u64(self.queue_depth)),
            ("decode_tokens", Json::num_u64(self.decode_tokens)),
            (
                "decode_scored_tokens",
                Json::num_u64(self.decode_scored_tokens),
            ),
            ("cache_hit_ratio", Json::num_f64(self.cache_hit_ratio)),
            ("decode_step_p50", Json::num_f64(self.decode_step_p50)),
            ("decode_step_p90", Json::num_f64(self.decode_step_p90)),
            ("decode_step_p99", Json::num_f64(self.decode_step_p99)),
            ("engine", Json::str(self.engine)),
            ("kernel", Json::str(self.kernel)),
            (
                "resident_bytes_per_replica",
                Json::num_u64(self.resident_bytes_per_replica),
            ),
            ("batch_steps", Json::num_u64(self.batch_steps)),
            ("batch_joins", Json::num_u64(self.batch_joins)),
            ("batch_replays", Json::num_u64(self.batch_replays)),
            ("spec_draft_tokens", Json::num_u64(self.spec_draft_tokens)),
            (
                "spec_accepted_tokens",
                Json::num_u64(self.spec_accepted_tokens),
            ),
            ("spec_accept_ratio", Json::num_f64(self.spec_accept_ratio)),
            ("spec_depth", Json::num_u64(self.spec_depth)),
        ])
    }
}

/// An engine and its replica pool, swapped as one unit. Replicas share the
/// engine's weights (checkpoint mapping or heap) — spawning one copies
/// tensor descriptors, not weight data — so a pool costs O(pool size), not
/// O(pool size × model size).
///
/// In [`EngineMode::Batch`] the set also owns a continuous-batching broker;
/// every pool replica carries a backend handle routing its decode calls to
/// it. Field order matters for `Drop`: `replicas` (holding backend senders)
/// must drop before `batcher` (whose drop joins the broker, which exits
/// only once every sender is gone).
struct ModelSet {
    engine: Engine,
    mode: EngineMode,
    /// Heap bytes a single replica owns privately (tensor data not borrowed
    /// from a shared checkpoint mapping) — `owned_scalars × 4`. Zero right
    /// after a v2 mmap load: replicas then cost descriptors only.
    resident_bytes_per_replica: u64,
    replicas: Vec<Mutex<CodeBe>>,
    /// The continuous-batching broker. Generation replicas route their
    /// decode calls through it (`score` runs the multi-position prefill
    /// path instead — see `handle_score`). Held only so its `Drop` joins
    /// the broker thread when the set retires.
    #[allow(dead_code)]
    batcher: Option<crate::batcher::BatcherHandle>,
    /// Effective speculation depth after the degrade checks in
    /// [`ModelSet::new`] (0 = plain greedy) — what the `stats` op reports.
    spec_depth: usize,
}

impl ModelSet {
    fn new(engine: Engine, cfg: &ServeConfig) -> Self {
        let (pool, mode, batch_slots) = (cfg.batch, cfg.engine, cfg.batch_slots);
        let mut replicas: Vec<Mutex<CodeBe>> =
            (0..pool).map(|_| Mutex::new(engine.replica())).collect();
        let resident_bytes_per_replica = replicas
            .first()
            .map_or(0, |r| r.lock().unwrap().owned_scalars() as u64 * 4);
        let batcher = match mode {
            EngineMode::Replica => None,
            EngineMode::Batch => {
                // The broker decodes on its own backend-free replica; the
                // pool replicas forward to it. Capacity covers at least the
                // pool (each dispatch worker has at most one decode call in
                // flight) plus headroom so a resized pool never starves.
                let slots = if batch_slots == 0 {
                    pool.max(8)
                } else {
                    batch_slots
                };
                let handle = crate::batcher::BatcherHandle::spawn(engine.replica(), slots);
                for r in &mut replicas {
                    r.get_mut()
                        .unwrap()
                        .set_decode_backend(Some(handle.backend()));
                }
                Some(handle)
            }
        };
        // Speculation degrades gracefully (plain greedy, logged warning) when
        // the configuration can't support it — mirroring how
        // `VEGA_KERNEL=avx2` falls back on a non-AVX2 CPU. Output bytes are
        // identical either way; speculation is exact.
        let spec_depth = match (&cfg.draft, cfg.speculate, mode) {
            (_, 0, _) => 0,
            (None, k, _) => {
                vega_obs::warn!(
                    "[vega-serve] --speculate {k} requested but no draft model \
                     loaded (--draft); serving plain greedy"
                );
                0
            }
            (Some(_), k, EngineMode::Batch) => {
                vega_obs::warn!(
                    "[vega-serve] speculation (--speculate {k}) is per-session; \
                     the batch engine amortizes across sessions instead — \
                     serving plain greedy"
                );
                0
            }
            (Some(draft), k, EngineMode::Replica) => {
                let model_vocab = replicas
                    .first()
                    .map_or(0, |r| r.lock().unwrap().vocab.len());
                if draft.cfg.vocab < model_vocab {
                    vega_obs::warn!(
                        "[vega-serve] draft vocab ({}) smaller than model vocab \
                         ({model_vocab}); serving plain greedy",
                        draft.cfg.vocab
                    );
                    0
                } else {
                    for r in &mut replicas {
                        r.get_mut()
                            .unwrap()
                            .set_speculative(Some(Arc::clone(draft)), k);
                    }
                    vega_obs::info!("[vega-serve] speculative decoding on (depth {k})");
                    k
                }
            }
        };
        // Gauge (not counter): a hot swap re-runs the degrade checks, so the
        // live depth can change.
        vega_obs::global().gauge_set("serve.spec.depth", spec_depth as f64);
        ModelSet {
            engine,
            mode,
            resident_bytes_per_replica,
            replicas,
            batcher,
            spec_depth,
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<State>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    local_addr: SocketAddr,
    /// The live model set. Request paths take the read lock for just long
    /// enough to clone the `Arc`; a hot swap takes the write lock for just
    /// long enough to store a new one.
    models: RwLock<Arc<ModelSet>>,
    /// Serializes `swap` operations (loading a checkpoint is slow; two
    /// concurrent swaps must not interleave their load/flip sequences).
    swap_lock: Mutex<()>,
}

/// The current model set (pinning it keeps its engine and replicas alive
/// across any concurrent swap).
fn models(shared: &Shared) -> Arc<ModelSet> {
    Arc::clone(&shared.models.read().unwrap())
}

/// A running vega-serve instance.
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the accept and dispatcher threads, and returns.
    ///
    /// # Errors
    /// Propagates socket bind errors.
    pub fn start(engine: Engine, mut cfg: ServeConfig) -> std::io::Result<Server> {
        if cfg.batch == 0 {
            cfg.batch = vega_par::threads().max(1);
        }
        if cfg.flight_cap > 0 {
            vega_obs::flight::configure(cfg.flight_cap);
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        vega_obs::info!(
            "[vega-serve] listening on {local_addr} (kernel={})",
            vega_nn::kernel::active_name()
        );
        vega_obs::global().gauge_set(
            "serve.kernel.avx2",
            if vega_nn::kernel::active() == vega_nn::Isa::Avx2 {
                1.0
            } else {
                0.0
            },
        );
        let model_set = Arc::new(ModelSet::new(engine, &cfg));
        let cache = LruCache::new(cfg.cache_cap);
        let shared = Arc::new(Shared {
            cfg,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: BTreeMap::new(),
                cache,
                shutting_down: false,
                requests: 0,
                coalesced: 0,
                shed: 0,
                deadline_exceeded: 0,
                generated: 0,
                score_requests: 0,
            }),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            local_addr,
            models: RwLock::new(model_set),
            swap_lock: Mutex::new(()),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || accept_loop(&shared, &listener, &conns))
        };
        Ok(Server {
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
            conns,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Begins graceful shutdown (idempotent): queued work is finished, new
    /// work is refused, all threads exit.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// A statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        snapshot(&self.shared)
    }

    /// As [`Server::join`], returning the final statistics snapshot.
    pub fn join_with_stats(self) -> ServeStats {
        let shared = Arc::clone(&self.shared);
        self.join();
        snapshot(&shared)
    }

    /// Blocks until the server has fully stopped (call [`Server::shutdown`]
    /// first, or have a client send the `shutdown` op).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for h in conns {
            let _ = h.join();
        }
    }
}

fn snapshot(shared: &Shared) -> ServeStats {
    let obs = vega_obs::global();
    let step_hist = obs.histogram("decode.step_seconds");
    let step_q = |q: f64| step_hist.as_ref().map_or(f64::NAN, |h| h.quantile(q));
    let set = models(shared);
    let (drafted, accepted) = (
        obs.counter("spec.draft_tokens"),
        obs.counter("spec.accepted_tokens"),
    );
    let st = shared.state.lock().unwrap();
    let (hits, misses) = (st.cache.hits(), st.cache.misses());
    ServeStats {
        requests: st.requests,
        cache_hits: hits,
        cache_misses: misses,
        cache_evictions: st.cache.evictions(),
        cache_len: st.cache.len() as u64,
        coalesced: st.coalesced,
        shed: st.shed,
        deadline_exceeded: st.deadline_exceeded,
        generated: st.generated,
        score_requests: st.score_requests,
        queue_depth: st.queue.len() as u64,
        decode_tokens: obs.counter("decode.tokens"),
        decode_scored_tokens: obs.counter("decode.scored_tokens"),
        cache_hit_ratio: if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
        decode_step_p50: step_q(0.5),
        decode_step_p90: step_q(0.9),
        decode_step_p99: step_q(0.99),
        engine: set.mode.as_str(),
        kernel: vega_nn::kernel::active_name(),
        resident_bytes_per_replica: set.resident_bytes_per_replica,
        batch_steps: obs.counter("serve.batch.steps"),
        batch_joins: obs.counter("serve.batch.joins"),
        batch_replays: obs.counter("serve.batch.replays"),
        spec_draft_tokens: drafted,
        spec_accepted_tokens: accepted,
        spec_accept_ratio: if drafted == 0 {
            0.0
        } else {
            accepted as f64 / drafted as f64
        },
        spec_depth: set.spec_depth as u64,
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    vega_obs::info!("[vega-serve] shutdown requested; draining queue");
    shared.state.lock().unwrap().shutting_down = true;
    shared.work_cv.notify_all();
    // Unblock the accept loop with a throwaway connection.
    let _ = TcpStream::connect(shared.local_addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener, conns: &Mutex<Vec<JoinHandle<()>>>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || handle_conn(&shared, stream));
        conns.lock().unwrap().push(handle);
    }
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    // Short read timeouts keep the thread responsive to shutdown without
    // busy-waiting; the per-connection idle timeout is tracked on top.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_nodelay(true);
    let obs = vega_obs::global();
    let idle_cap = Duration::from_millis(shared.cfg.conn_idle_timeout_ms);
    let mut last_line = Instant::now();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            last_line = Instant::now();
            // Connection chaos sites. The drain path is excluded: once
            // shutdown has begun the listener no longer accepts, so a
            // dropped client could not reconnect to resend — injecting
            // there would turn a graceful drain into a spurious failure.
            let chaos = !shared.shutdown.load(Ordering::SeqCst);
            // Chaos site: a connection dropped mid-request — the client sees
            // EOF instead of a response and must reconnect and resend.
            if chaos && vega_fault::check(vega_fault::sites::SERVE_CONN_DROP).is_some() {
                return;
            }
            let response = handle_line(shared, line);
            // Chaos site: a stalled response (argument = milliseconds).
            if chaos {
                if let Some(f) = vega_fault::check(vega_fault::sites::SERVE_CONN_STALL) {
                    std::thread::sleep(Duration::from_millis(f.arg));
                    vega_fault::recovered(vega_fault::sites::SERVE_CONN_STALL);
                }
            }
            // Chaos site: a malformed frame written instead of the response;
            // the client must reject it and resend the request. The shutdown
            // op itself is never corrupted (its handling flips the shutdown
            // flag above, so `chaos` was computed before, but a corrupted
            // shutdown ack would strand the client against a dead listener) —
            // re-check the flag here.
            if chaos
                && !shared.shutdown.load(Ordering::SeqCst)
                && vega_fault::check(vega_fault::sites::SERVE_CONN_CORRUPT).is_some()
            {
                if stream.write_all(b"!corrupt-frame!\n").is_err() {
                    return;
                }
                continue;
            }
            if stream.write_all(response.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return;
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !idle_cap.is_zero() && last_line.elapsed() > idle_cap {
                    obs.counter_add("serve.conn.idle_timeouts", 1);
                    vega_obs::debug!("[vega-serve] closing idle connection");
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(shared: &Shared, line: &str) -> String {
    let (id, req) = match protocol::parse_request(line) {
        Ok(parsed) => parsed,
        Err((id, msg)) => return protocol::err_response(&id, ErrorKind::BadRequest, &msg),
    };
    match req {
        Request::Ping => protocol::ok_response(&id, [("pong", Json::Bool(true))]),
        Request::Targets => protocol::ok_response(
            &id,
            [(
                "targets",
                Json::Arr(
                    models(shared)
                        .engine
                        .target_names()
                        .into_iter()
                        .map(Json::str)
                        .collect(),
                ),
            )],
        ),
        Request::Groups => protocol::ok_response(
            &id,
            [(
                "groups",
                Json::Arr(
                    models(shared)
                        .engine
                        .group_names()
                        .into_iter()
                        .map(Json::str)
                        .collect(),
                ),
            )],
        ),
        Request::Stats => protocol::ok_response(&id, [("stats", snapshot(shared).to_json())]),
        Request::Metrics => {
            let obs = vega_obs::global();
            protocol::ok_response(
                &id,
                [
                    ("stats", snapshot(shared).to_json()),
                    ("metrics", obs.metrics_json()),
                    ("text", Json::str(obs.prometheus_text())),
                ],
            )
        }
        Request::FlightDump => protocol::ok_response(
            &id,
            [
                ("enabled", Json::Bool(vega_obs::flight::enabled())),
                ("records", vega_obs::flight::dump_json()),
            ],
        ),
        Request::Swap { path } => handle_swap(shared, &id, &path),
        Request::Shutdown => {
            trigger_shutdown(shared);
            protocol::ok_response(&id, [("stopping", Json::Bool(true))])
        }
        Request::Generate {
            target,
            group,
            deadline_ms,
            trace,
        } => handle_generate(shared, &id, &target, &group, deadline_ms, trace),
        Request::Backend {
            target,
            deadline_ms,
            trace,
        } => handle_backend(shared, &id, &target, deadline_ms, trace),
        Request::Score {
            target,
            group,
            candidates,
            deadline_ms,
            trace,
        } => handle_score(
            shared,
            &id,
            &target,
            &group,
            &candidates,
            deadline_ms,
            trace,
        ),
    }
}

/// The `timing` breakdown of a generate or score response. `cache` is
/// `"hit"`, `"miss"`, or `"coalesced"` (`"none"` for score, which bypasses
/// the cache); `queue_ms`/`decode_ms`/`tokens` describe the work that
/// produced the payload (zero for cache hits; for score, `tokens` is the
/// summed candidate length and `decode_ms` the wall time of the scoring
/// call).
fn timing_json(queue_ms: u64, cache: &str, decode_ms: f64, tokens: u64) -> Json {
    Json::obj([
        ("queue_ms", Json::num_u64(queue_ms)),
        ("cache", Json::str(cache)),
        ("decode_ms", Json::num_f64(decode_ms)),
        ("tokens", Json::num_u64(tokens)),
    ])
}

fn handle_generate(
    shared: &Shared,
    id: &Json,
    target: &str,
    group: &str,
    deadline_ms: Option<u64>,
    trace: Option<TraceCtx>,
) -> String {
    let obs = vega_obs::global();
    // Adopt the caller's trace for everything this request does on this
    // thread — the `serve.request` span below closes carrying it.
    let _trace_guard = obs.adopt_trace(trace);
    let span = obs.span("serve.request");
    let t0 = Instant::now();
    let deadline_ms = deadline_ms.unwrap_or(shared.cfg.default_deadline_ms);
    let deadline = t0 + Duration::from_millis(deadline_ms);
    let response = match submit(shared, target, group, deadline, trace) {
        Submit::Cached(payload) => generate_ok(
            id,
            true,
            false,
            payload,
            trace,
            timing_json(0, "hit", 0.0, 0),
        ),
        Submit::Wait { rx, coalesced } => wait_outcome(&rx, deadline_ms, id, coalesced, trace),
        Submit::Shed => protocol::err_response(
            id,
            ErrorKind::Overloaded,
            &format!(
                "queue full ({} jobs); request shed, retry later",
                shared.cfg.queue_cap
            ),
        ),
        Submit::ShuttingDown => {
            protocol::err_response(id, ErrorKind::ShuttingDown, "server is draining")
        }
        Submit::Reject { kind, msg } => protocol::err_response(id, kind, &msg),
    };
    obs.observe("serve.request_seconds", t0.elapsed().as_secs_f64());
    let _ = span.finish();
    response
}

fn generate_ok(
    id: &Json,
    cached: bool,
    coalesced: bool,
    payload: Json,
    trace: Option<TraceCtx>,
    timing: Json,
) -> String {
    let mut fields = vec![
        ("cached", Json::Bool(cached)),
        ("coalesced", Json::Bool(coalesced)),
        ("result", payload),
    ];
    if let Some(t) = trace {
        fields.push(("trace", Json::str(t.render())));
    }
    fields.push(("timing", timing));
    protocol::ok_response(id, fields)
}

/// Waits for a queued job's outcome. The wait is bounded (deadline plus a
/// wide dispatch margin) so a lost job can never hang the connection.
fn wait_outcome(
    rx: &Receiver<Outcome>,
    deadline_ms: u64,
    id: &Json,
    coalesced: bool,
    trace: Option<TraceCtx>,
) -> String {
    let margin = Duration::from_millis(deadline_ms) + Duration::from_secs(300);
    match rx.recv_timeout(margin) {
        Ok(Outcome::Done {
            payload,
            queue_ms,
            decode_ms,
            tokens,
        }) => generate_ok(
            id,
            false,
            coalesced,
            payload,
            trace,
            timing_json(
                queue_ms,
                if coalesced { "coalesced" } else { "miss" },
                decode_ms,
                tokens,
            ),
        ),
        Ok(Outcome::Failed { kind, msg }) => protocol::err_response(id, kind, &msg),
        Err(_) => protocol::err_response(
            id,
            ErrorKind::Internal,
            "generation worker did not answer within the dispatch margin",
        ),
    }
}

fn handle_backend(
    shared: &Shared,
    id: &Json,
    target: &str,
    deadline_ms: Option<u64>,
    trace: Option<TraceCtx>,
) -> String {
    let obs = vega_obs::global();
    let _trace_guard = obs.adopt_trace(trace);
    let span = obs.span("serve.request");
    let t0 = Instant::now();
    // Pin one model set for the whole backend: the group list and every
    // sub-request stay mutually consistent even if a swap lands mid-way.
    let set = models(shared);
    if let Err(e) = set.engine.validate_target(target) {
        let _ = span.finish();
        return protocol::err_response(id, e.kind, &e.msg);
    }
    // Sub-requests run sequentially through the same cache/queue path, so a
    // backend request holds at most one queue slot at a time and repeated
    // backends are served from cache. The deadline spans the whole backend.
    let overall_ms = deadline_ms
        .unwrap_or(shared.cfg.default_deadline_ms * set.engine.group_names().len().max(1) as u64);
    let deadline = t0 + Duration::from_millis(overall_ms);
    let mut functions = Vec::new();
    let mut errors = Vec::new();
    for group in set.engine.group_names() {
        let outcome = match submit(shared, target, &group, deadline, trace) {
            Submit::Cached(payload) => Ok(payload),
            Submit::Wait { rx, .. } => match rx.recv_timeout(
                deadline.saturating_duration_since(Instant::now()) + Duration::from_secs(300),
            ) {
                Ok(Outcome::Done { payload, .. }) => Ok(payload),
                Ok(Outcome::Failed { kind, msg }) => Err((kind, msg)),
                Err(_) => Err((
                    ErrorKind::Internal,
                    "generation worker did not answer".to_string(),
                )),
            },
            Submit::Shed => Err((ErrorKind::Overloaded, "queue full".to_string())),
            Submit::ShuttingDown => {
                Err((ErrorKind::ShuttingDown, "server is draining".to_string()))
            }
            Submit::Reject { kind, msg } => Err((kind, msg)),
        };
        match outcome {
            Ok(payload) => functions.push(payload),
            Err((kind, msg)) => errors.push(Json::obj([
                ("group", Json::str(group.clone())),
                ("error", Json::str(kind.code())),
                ("message", Json::str(msg)),
            ])),
        }
    }
    let mut fields = vec![
        ("target", Json::str(target)),
        ("functions", Json::Arr(functions)),
        ("errors", Json::Arr(errors)),
    ];
    if let Some(t) = trace {
        fields.push(("trace", Json::str(t.render())));
    }
    let response = protocol::ok_response(id, fields);
    obs.observe("serve.request_seconds", t0.elapsed().as_secs_f64());
    let _ = span.finish();
    response
}

/// Handles the `score` op: ranks candidate token-id sequences against one
/// `(target, group)` signature. Scoring bypasses the cache, coalescing, and
/// the job queue — the response is a pure function of the request, there is
/// nothing to coalesce, and the work runs right here on the connection
/// thread against a fresh replica of the pinned model set (replicas share
/// weights, so the clone copies tensor descriptors, not weight data).
///
/// Scoring never routes through the batch broker, even under the batch
/// engine: every candidate token is known up front, so `forced_logprob`
/// scores the whole sequence in one multi-position `step_many` pass that
/// amortizes weight reads *within* the request — feeding the broker's
/// lockstep batch one token at a time instead measures ~1.5x slower on the
/// deploy-shaped bench (see `benches/serve.rs`). The broker earns its keep
/// on *generation*, where each next token is unknown until the previous one
/// is decoded.
#[allow(clippy::too_many_arguments)]
fn handle_score(
    shared: &Shared,
    id: &Json,
    target: &str,
    group: &str,
    candidates: &[Vec<usize>],
    deadline_ms: Option<u64>,
    trace: Option<TraceCtx>,
) -> String {
    let obs = vega_obs::global();
    let _trace_guard = obs.adopt_trace(trace);
    let span = obs.span("serve.request");
    let t0 = Instant::now();
    // Pin one model set for the whole request (a concurrent swap must not
    // change the weights mid-scoring).
    let set = models(shared);
    {
        let mut st = shared.state.lock().unwrap();
        st.requests += 1;
        st.score_requests += 1;
        if st.shutting_down {
            drop(st);
            let _ = span.finish();
            return protocol::err_response(id, ErrorKind::ShuttingDown, "server is draining");
        }
    }
    obs.counter_add("serve.requests", 1);
    obs.counter_add("serve.score.requests", 1);
    obs.counter_add("serve.score.candidates", candidates.len() as u64);
    let deadline =
        t0 + Duration::from_millis(deadline_ms.unwrap_or(shared.cfg.default_deadline_ms));
    let mut replica = set.engine.replica();
    let result = set
        .engine
        .try_score_with(&mut replica, target, group, candidates, Some(deadline));
    let response = match result {
        Ok(scores) => {
            let tokens: u64 = candidates.iter().map(|c| c.len() as u64).sum();
            let mut fields = vec![
                ("target", Json::str(target)),
                ("group", Json::str(group)),
                (
                    "scores",
                    Json::Arr(scores.into_iter().map(Json::num_f32).collect()),
                ),
            ];
            if let Some(t) = trace {
                fields.push(("trace", Json::str(t.render())));
            }
            fields.push((
                "timing",
                timing_json(0, "none", t0.elapsed().as_secs_f64() * 1e3, tokens),
            ));
            protocol::ok_response(id, fields)
        }
        Err(e) => {
            if e.kind == ErrorKind::DeadlineExceeded {
                shared.state.lock().unwrap().deadline_exceeded += 1;
                obs.counter_add("serve.deadline_exceeded", 1);
            }
            protocol::err_response(id, e.kind, &e.msg)
        }
    };
    obs.observe("serve.request_seconds", t0.elapsed().as_secs_f64());
    let _ = span.finish();
    response
}

/// Handles the `swap` op: loads and validates the checkpoint at `path` off
/// to the side, flips the live registry atomically, then waits (bounded)
/// for requests pinned to the old model to drain. Any failure — unreadable
/// file, digest mismatch, corpus mismatch, injected chaos — leaves the old
/// model serving untouched.
fn handle_swap(shared: &Shared, id: &Json, path: &str) -> String {
    let obs = vega_obs::global();
    let span = obs.span("serve.swap");
    // One swap at a time; requests keep flowing under the read lock.
    let _swap_guard = shared.swap_lock.lock().unwrap();
    let fail = |msg: &str| {
        vega_obs::global().counter_add("serve.swap.failed", 1);
        protocol::err_response(id, ErrorKind::SwapFailed, msg)
    };
    // Chaos site: the swap dies after being accepted but before any state
    // change — exactly the window a crashy checkpoint load would hit.
    if vega_fault::check(vega_fault::sites::SERVE_SWAP).is_some() {
        let _ = span.finish();
        return fail(&format!(
            "injected swap failure for `{path}` (fault site `{}`); old model still serving",
            vega_fault::sites::SERVE_SWAP
        ));
    }
    let old = models(shared);
    let config = old.engine.vega().config.clone();
    let loaded =
        crate::registry::load_checkpoint_prefault(std::path::Path::new(path), shared.cfg.prefault)
            .and_then(|c| c.into_engine(config));
    let (meta, engine) = match loaded {
        Ok(v) => v,
        Err(e) => {
            let _ = span.finish();
            return fail(&e.to_string());
        }
    };
    let digest_changed = engine.model_digest() != old.engine.model_digest();
    let new_set = Arc::new(ModelSet::new(engine, &shared.cfg));
    *shared.models.write().unwrap() = Arc::clone(&new_set);
    // Cache keys embed the model digest, so stale entries can never alias
    // the new model's; clearing on a digest change only frees memory. An
    // unchanged model keeps its cache — and its byte-identical hits.
    if digest_changed {
        shared.state.lock().unwrap().cache.clear();
    }
    // Jobs pin their model set, so in-flight work on the old model finishes
    // on the old model. Wait (bounded) until every pin is gone: a successful
    // swap response means the old weights are fully retired.
    let drain_deadline = Instant::now() + Duration::from_secs(60);
    let drained = loop {
        if Arc::strong_count(&old) == 1 {
            break true;
        }
        if Instant::now() > drain_deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(2));
    };
    obs.counter_add("serve.swaps", 1);
    vega_obs::info!(
        "[vega-serve] swapped model to {} ({}, {}, digest_changed={digest_changed}, drained={drained})",
        meta.path.display(),
        meta.format,
        meta.arch
    );
    let _ = span.finish();
    protocol::ok_response(
        id,
        [
            ("swapped", Json::Bool(true)),
            ("path", Json::str(meta.path.display().to_string())),
            ("format", Json::str(meta.format)),
            ("arch", Json::str(meta.arch)),
            ("vocab_pieces", Json::num_usize(meta.vocab_pieces)),
            ("max_len", Json::num_usize(meta.max_len)),
            ("digest_changed", Json::Bool(digest_changed)),
            ("cache_cleared", Json::Bool(digest_changed)),
            ("drained", Json::Bool(drained)),
        ],
    )
}

enum Submit {
    Cached(Json),
    Wait {
        rx: Receiver<Outcome>,
        coalesced: bool,
    },
    Shed,
    ShuttingDown,
    Reject {
        kind: ErrorKind,
        msg: String,
    },
}

fn submit(
    shared: &Shared,
    target: &str,
    group: &str,
    deadline: Instant,
    trace: Option<TraceCtx>,
) -> Submit {
    // Pin the model set first: the cache key and the engine that will
    // eventually generate must come from the same set, or a swap landing
    // between the two would cache one model's output under another's key.
    let set = models(shared);
    let key = match set.engine.cache_key(target, group) {
        Ok(k) => k,
        Err(e) => {
            return Submit::Reject {
                kind: e.kind,
                msg: e.msg,
            }
        }
    };
    let obs = vega_obs::global();
    // The cache-lookup span covers the cache/coalesce/enqueue decision; it
    // runs on the connection thread, where the request's trace (if any) is
    // already adopted, so its close record carries the caller's trace id.
    let lookup_span = obs.span("serve.cache_lookup");
    let mut st = shared.state.lock().unwrap();
    st.requests += 1;
    obs.counter_add("serve.requests", 1);
    if let Some(payload) = st.cache.get(&key) {
        obs.counter_add("serve.cache.hits", 1);
        drop(st);
        let _ = lookup_span.finish();
        return Submit::Cached(payload);
    }
    let (tx, rx) = channel();
    if let Some(waiters) = st.inflight.get_mut(&key) {
        waiters.push(tx);
        st.coalesced += 1;
        obs.counter_add("serve.coalesced", 1);
        drop(st);
        let _ = lookup_span.finish();
        return Submit::Wait {
            rx,
            coalesced: true,
        };
    }
    obs.counter_add("serve.cache.misses", 1);
    if st.shutting_down {
        drop(st);
        let _ = lookup_span.finish();
        return Submit::ShuttingDown;
    }
    if st.queue.len() >= shared.cfg.queue_cap {
        st.shed += 1;
        obs.counter_add("serve.shed", 1);
        drop(st);
        let _ = lookup_span.finish();
        return Submit::Shed;
    }
    st.inflight.insert(key.clone(), vec![tx]);
    obs.gauge_set("serve.inflight", st.inflight.len() as f64);
    st.queue.push_back(Job {
        key,
        target: target.to_string(),
        group: group.to_string(),
        deadline,
        trace,
        enqueued: Instant::now(),
        models: set,
    });
    obs.gauge_set("serve.queue_depth", st.queue.len() as f64);
    drop(st);
    let _ = lookup_span.finish();
    shared.work_cv.notify_all();
    Submit::Wait {
        rx,
        coalesced: false,
    }
}

fn finish(shared: &Shared, key: &str, outcome: &Outcome) {
    let waiters = {
        let mut st = shared.state.lock().unwrap();
        let waiters = st.inflight.remove(key).unwrap_or_default();
        vega_obs::global().gauge_set("serve.inflight", st.inflight.len() as f64);
        waiters
    };
    for tx in waiters {
        let _ = tx.send(outcome.clone());
    }
}

/// Answers a job whose deadline passed before it reached a model.
fn fail_predispatch(shared: &Shared, job: &Job) {
    shared.state.lock().unwrap().deadline_exceeded += 1;
    vega_obs::global().counter_add("serve.deadline_exceeded", 1);
    finish(
        shared,
        &job.key,
        &Outcome::Failed {
            kind: ErrorKind::DeadlineExceeded,
            msg: format!(
                "deadline elapsed before `{}`/`{}` was dispatched",
                job.target, job.group
            ),
        },
    );
}

/// Runs one job on replica slot `i` of its pinned model set. Shared by both
/// dispatch modes: in replica mode the replica decodes locally; in batch
/// mode it forwards every decode call to the broker (same call shape, same
/// bits). Returns `(job, result, queue_ms, tokens, decode_ms)`.
type JobRun = (
    Job,
    Result<(vega_corpus::Module, vega::GeneratedFunction), crate::engine::EngineError>,
    u64,
    u64,
    f64,
);

fn run_job(shared: &Shared, i: usize, job: Job) -> JobRun {
    let worker_obs = vega_obs::global();
    let _trace_guard = worker_obs.adopt_trace(job.trace);
    let gen_span = worker_obs.span("serve.generate");
    let queue_ms = job.enqueued.elapsed().as_millis() as u64;
    if shared.cfg.slow_ms > 0 {
        std::thread::sleep(Duration::from_millis(shared.cfg.slow_ms));
    }
    // Generation runs single-threaded on this worker, so the thread-local
    // tally is an exact per-job decode attribution. In batch mode the
    // broker hands each session's token count and step-time share back to
    // this thread, which bumps the same tally — the attribution protocol is
    // identical in both modes.
    vega_nn::decode::tally::reset();
    // The job's pinned set (not the live registry): key, engine and replica
    // must all describe the same model even mid-swap. Slot `i` is this
    // worker's own (replica mode: batch size == pool size; batch mode: one
    // persistent worker per slot), so the lock never contends.
    let mut replica = job.models.replicas[i].lock().unwrap();
    // The deadline reaches the decode path only through a batching backend,
    // which aborts at token boundaries; the local path ignores it (replica
    // mode enforces deadlines before dispatch instead).
    let result = job.models.engine.try_generate_with(
        &mut replica,
        &job.target,
        &job.group,
        Some(job.deadline),
    );
    drop(replica);
    let (tokens, decode_s) = vega_nn::decode::tally::snapshot();
    let _ = gen_span.finish();
    (job, result, queue_ms, tokens, decode_s * 1e3)
}

/// Publishes a finished job: cache + counters on success (a failed or
/// expired generation is never cached — no partial output can poison the
/// content-addressed cache), waiter notification either way.
fn settle_job(shared: &Shared, run: JobRun) {
    let obs = vega_obs::global();
    let (job, result, queue_ms, tokens, decode_ms) = run;
    match result {
        Ok((module, gf)) => {
            let payload = protocol::render_generated(&job.target, &job.group, module, &gf);
            {
                let mut st = shared.state.lock().unwrap();
                st.cache.insert(&job.key, payload.clone());
                st.generated += 1;
            }
            obs.counter_add("serve.generated", 1);
            finish(
                shared,
                &job.key,
                &Outcome::Done {
                    payload,
                    queue_ms,
                    decode_ms,
                    tokens,
                },
            );
        }
        Err(e) => {
            if e.kind == ErrorKind::DeadlineExceeded {
                shared.state.lock().unwrap().deadline_exceeded += 1;
                obs.counter_add("serve.deadline_exceeded", 1);
            }
            finish(
                shared,
                &job.key,
                &Outcome::Failed {
                    kind: e.kind,
                    msg: e.msg,
                },
            );
        }
    }
}

fn dispatcher_loop(shared: &Shared) {
    match shared.cfg.engine {
        EngineMode::Replica => replica_dispatch_loop(shared),
        EngineMode::Batch => {
            // One persistent worker per replica slot; each claims one job
            // at a time, so queued requests flow into the broker's running
            // batch continuously instead of waiting for micro-batch
            // barriers. The scope joins all workers before returning, so
            // drain semantics match replica mode: everything queued before
            // shutdown is answered.
            std::thread::scope(|scope| {
                for i in 0..shared.cfg.batch {
                    scope.spawn(move || batch_worker_loop(shared, i));
                }
            });
        }
    }
}

/// Continuous dispatch: pop one job, run it (decode interleaves with every
/// other worker's inside the broker), settle, repeat. Exits once the queue
/// is empty after shutdown began.
fn batch_worker_loop(shared: &Shared, i: usize) {
    let obs = vega_obs::global();
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    obs.gauge_set("serve.queue_depth", st.queue.len() as f64);
                    break job;
                }
                if st.shutting_down {
                    return;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        if Instant::now() > job.deadline {
            fail_predispatch(shared, &job);
            continue;
        }
        let run = run_job(shared, i, job);
        settle_job(shared, run);
    }
}

fn replica_dispatch_loop(shared: &Shared) {
    let obs = vega_obs::global();
    loop {
        let jobs: Vec<Job> = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutting_down {
                    return;
                }
                st = shared.work_cv.wait(st).unwrap();
            }
            let n = st.queue.len().min(shared.cfg.batch);
            let jobs = st.queue.drain(..n).collect();
            obs.gauge_set("serve.queue_depth", st.queue.len() as f64);
            jobs
        };
        let now = Instant::now();
        let mut live = Vec::new();
        for job in jobs {
            if now > job.deadline {
                fail_predispatch(shared, &job);
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let span = obs.span("serve.batch");
        // Each job in the batch gets its own replica slot (batch size ==
        // pool size), so the replica locks never contend; `par_map` returns
        // results in job order, and jobs settle in that order — cache
        // insertion order (hence LRU eviction order) is independent of
        // which worker finishes first. Each worker adopts its job's trace
        // (the batch as a whole has no single trace) so the
        // `serve.generate` span and decode attribution carry the caller's
        // id.
        let results = vega_par::par_map(live, |i, job| run_job(shared, i, job));
        for run in results {
            settle_job(shared, run);
        }
        let _ = span.finish();
    }
}
