//! The vega-serve daemon.
//!
//! ```text
//! vega-serve --checkpoint PATH [--scale tiny|small] [--synthetic N] [--seed S]
//!            [--addr HOST:PORT] [--port-file PATH]
//!            [--cache-cap N] [--queue-cap N] [--batch N] [--threads N]
//!            [--engine replica|batch] [--batch-slots N] [--prefault 0|1]
//!            [--speculate K] [--draft PATH]
//!            [--deadline-ms MS] [--slow-ms MS] [--trace-out PATH]
//!            [--flight-cap N]
//! ```
//!
//! Loads the checkpoint, rebuilds Stage-1 artifacts for the configured corpus
//! (must match the checkpoint's training configuration), binds, and serves
//! until a client sends `{"op":"shutdown"}` (or the process is killed).
//! `--port-file` writes the resolved port for scripts binding port 0;
//! `--slow-ms` injects per-generation latency so tests can provoke overload;
//! `--flight-cap` sizes the flight recorder (default 256 records, 0
//! disables). The recorder's retained records are served by the
//! `{"op":"flightdump"}` protocol op and dumped to stderr on panic.
//! `--speculate K --draft PATH` turns on exact speculative decoding: the GRU
//! checkpoint at PATH drafts K tokens per transformer verifier pass (output
//! bytes are identical to plain greedy; only throughput changes). An
//! incomplete speculation setup degrades to plain greedy with a warning.

use std::path::PathBuf;
use vega::{Scale, VegaConfig};
use vega_serve::{load_checkpoint_prefault, ServeConfig, Server};

struct Args {
    checkpoint: PathBuf,
    scale: Scale,
    synthetic: Option<usize>,
    seed: u64,
    port_file: Option<PathBuf>,
    threads: Option<usize>,
    deadline_ms: Option<u64>,
    trace_out: Option<PathBuf>,
    draft: Option<PathBuf>,
    serve: ServeConfig,
}

fn parse_args() -> Args {
    let mut args = Args {
        checkpoint: PathBuf::new(),
        scale: Scale::Tiny,
        synthetic: None,
        seed: 0,
        port_file: None,
        threads: None,
        deadline_ms: None,
        trace_out: None,
        draft: None,
        serve: ServeConfig {
            // The daemon keeps a black box by default; embedded test servers
            // (ServeConfig::default) leave the process-global recorder alone.
            flight_cap: 256,
            ..ServeConfig::default()
        },
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).cloned().unwrap_or_default();
        match argv[i].as_str() {
            "--checkpoint" => args.checkpoint = PathBuf::from(take(i)),
            "--scale" => {
                args.scale = match take(i).as_str() {
                    "small" => Scale::Small,
                    _ => Scale::Tiny,
                }
            }
            "--synthetic" => args.synthetic = take(i).parse().ok(),
            "--seed" => args.seed = take(i).parse().unwrap_or(0),
            "--addr" => args.serve.addr = take(i),
            "--port-file" => args.port_file = Some(PathBuf::from(take(i))),
            "--cache-cap" => args.serve.cache_cap = take(i).parse().unwrap_or(512),
            "--queue-cap" => args.serve.queue_cap = take(i).parse().unwrap_or(64),
            "--batch" => args.serve.batch = take(i).parse().unwrap_or(0),
            "--engine" => {
                args.serve.engine = match vega_serve::EngineMode::parse(&take(i)) {
                    Ok(m) => m,
                    Err(e) => {
                        vega_obs::error!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--batch-slots" => args.serve.batch_slots = take(i).parse().unwrap_or(0),
            "--prefault" => args.serve.prefault = matches!(take(i).as_str(), "1" | "true" | "on"),
            "--speculate" => args.serve.speculate = take(i).parse().unwrap_or(0),
            "--draft" => args.draft = Some(PathBuf::from(take(i))),
            "--threads" => args.threads = take(i).parse().ok(),
            "--deadline-ms" => args.deadline_ms = take(i).parse().ok(),
            "--slow-ms" => args.serve.slow_ms = take(i).parse().unwrap_or(0),
            "--trace-out" => args.trace_out = Some(PathBuf::from(take(i))),
            "--flight-cap" => args.serve.flight_cap = take(i).parse().unwrap_or(256),
            other => {
                vega_obs::error!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    if args.checkpoint.as_os_str().is_empty() {
        vega_obs::error!(
            "usage: vega-serve --checkpoint PATH [--scale tiny|small] [--addr HOST:PORT] …"
        );
        std::process::exit(2);
    }
    args
}

fn config_from(args: &Args) -> VegaConfig {
    let mut cfg = match args.scale {
        Scale::Tiny => VegaConfig::tiny(),
        Scale::Small => VegaConfig::default(),
    };
    if let Some(n) = args.synthetic {
        cfg.corpus.synthetic_targets = n;
    }
    cfg.seed = args.seed;
    cfg.train.seed = args.seed ^ 1;
    cfg
}

fn main() {
    let mut args = parse_args();
    // A panicking daemon leaves its flight-recorder black box on stderr.
    vega_obs::flight::install_panic_hook();
    if let Some(n) = args.threads {
        vega_par::set_threads(n);
    }
    if let Some(d) = args.deadline_ms {
        args.serve.default_deadline_ms = d;
    }

    let checkpoint = match load_checkpoint_prefault(&args.checkpoint, args.serve.prefault) {
        Ok(c) => c,
        Err(e) => {
            vega_obs::error!("{e}");
            std::process::exit(2);
        }
    };
    vega_obs::info!(
        "[vega-serve] checkpoint {} ({}, {} pieces, max_len {}, {} bytes)",
        checkpoint.meta.path.display(),
        checkpoint.meta.arch,
        checkpoint.meta.vocab_pieces,
        checkpoint.meta.max_len,
        checkpoint.meta.bytes
    );
    let (_meta, engine) = match checkpoint.into_engine(config_from(&args)) {
        Ok(v) => v,
        Err(e) => {
            vega_obs::error!("{e}");
            std::process::exit(2);
        }
    };
    // A bad draft path is a hard startup error (the operator asked for a
    // specific file); an incomplete combination (--speculate without --draft,
    // or vice versa) degrades inside the server with a warning.
    if let Some(path) = &args.draft {
        let draft = load_checkpoint_prefault(path, false).and_then(|c| c.into_draft());
        match draft {
            Ok(d) => {
                vega_obs::info!(
                    "[vega-serve] speculation draft {} (vocab {}, depth {})",
                    path.display(),
                    d.cfg.vocab,
                    args.serve.speculate
                );
                args.serve.draft = Some(d);
            }
            Err(e) => {
                vega_obs::error!("{e}");
                std::process::exit(2);
            }
        }
    }
    vega_obs::info!(
        "[vega-serve] engine ready: {} targets, {} groups",
        engine.target_names().len(),
        engine.group_names().len()
    );

    let server = match Server::start(engine, args.serve.clone()) {
        Ok(s) => s,
        Err(e) => {
            vega_obs::error!("cannot bind {}: {e}", args.serve.addr);
            std::process::exit(2);
        }
    };
    let addr = server.local_addr();
    // The listening line goes to stdout (scripts wait for it); everything
    // else is on the obs event log.
    println!("listening on {addr}");
    if let Some(pf) = &args.port_file {
        if let Err(e) = std::fs::write(pf, addr.port().to_string()) {
            vega_obs::error!("cannot write port file {}: {e}", pf.display());
            server.shutdown();
            server.join();
            std::process::exit(2);
        }
    }

    let stats = server.join_with_stats();
    println!(
        "served requests={} cache_hits={} cache_misses={} coalesced={} shed={} \
         deadline_exceeded={} generated={}",
        stats.requests,
        stats.cache_hits,
        stats.cache_misses,
        stats.coalesced,
        stats.shed,
        stats.deadline_exceeded,
        stats.generated
    );
    if let Some(path) = &args.trace_out {
        match vega_obs::global().write_trace(path) {
            Ok(()) => vega_obs::info!("trace written to {}", path.display()),
            Err(e) => vega_obs::error!("failed to write trace {}: {e}", path.display()),
        }
    }
}
