//! Concurrent load generator and verifier for vega-serve.
//!
//! ```text
//! vega-loadgen --addr HOST:PORT [--requests N] [--conns C] [--distinct D]
//!              [--deadline-ms MS] [--op generate|score] [--cands K] [--cand-len L]
//!              [--verify-checkpoint PATH [--scale tiny|small] [--synthetic N] [--seed S]]
//!              [--overload-burst B] [--shutdown]
//! vega-loadgen --addr HOST:PORT --top TICKS [--top-interval-ms MS]
//! ```
//!
//! `--op score` switches the workload from `generate` to `score` requests:
//! each request carries `--cands` deterministic candidate token-id sequences
//! of `--cand-len` tokens (a pure function of the pair index, so repeats are
//! byte-checkable and `--verify-checkpoint` can recompute them locally).
//! Scoring bypasses the server cache, so the cache check is skipped in this
//! mode.
//!
//! Fires `--requests` generate requests over `--conns` connections, cycling
//! through `--distinct` (target, group) pairs so repeats exercise the cache,
//! and reports throughput and p50/p99 latency plus the server's cache
//! statistics. When the server runs with `--speculate`/`--draft`, the main
//! `loadgen:` line also reports the draft acceptance over the measured
//! window (`accept_rate=`, `spec_drafted=`, `spec_accepted=`, computed as
//! stats-counter deltas); without speculation all three read zero. Every request is traced: each worker mints deterministic
//! trace ids (seeded from `--seed` and the worker index), and the server
//! must echo each one back with a `timing` breakdown, which is aggregated
//! into a `loadgen: timing …` line. Four checks, each printed as a greppable
//! `loadgen:` line and reflected in the exit code:
//!
//! * **byte-identity** — every response for a pair must be byte-identical,
//!   and with `--verify-checkpoint` also byte-identical to a direct
//!   in-process `generate_function` call on the same checkpoint;
//! * **trace** — every generate response must echo the minted trace id;
//! * **cache** — repeated requests must produce a nonzero hit rate;
//! * **overload** (with `--overload-burst`) — a burst of distinct requests
//!   must receive explicit `overloaded` responses, not hang.
//!
//! `--top` is a different mode entirely (vega-top): instead of generating
//! load it polls `{"op":"metrics"}` every `--top-interval-ms` and renders a
//! live one-line dashboard (rps, tokens/s, cache hit rate, request p50/p99,
//! inflight, queued, shed, speculation depth and acceptance rate) for
//! `TICKS` ticks, then exits.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use vega::{Scale, VegaConfig};
use vega_obs::json::Json;
use vega_obs::TraceIdGen;
use vega_serve::{load_checkpoint, protocol, Client, RetryPolicy};

struct Args {
    addr: String,
    requests: usize,
    conns: usize,
    distinct: usize,
    deadline_ms: Option<u64>,
    verify_checkpoint: Option<PathBuf>,
    scale: Scale,
    synthetic: Option<usize>,
    seed: u64,
    overload_burst: usize,
    shutdown: bool,
    top: usize,
    top_interval_ms: u64,
    score: bool,
    cands: usize,
    cand_len: usize,
}

/// splitmix64 — the workspace's stock deterministic mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The candidate sequences for one pair index: a pure function of
/// `(pair_ix, cands, cand_len)`, drawn from low token ids (4..20) that every
/// vocabulary contains, so the server and a local verifier recompute the
/// identical request without a side channel.
fn score_candidates(pair_ix: usize, cands: usize, cand_len: usize) -> Vec<Vec<usize>> {
    (0..cands)
        .map(|c| {
            (0..cand_len)
                .map(|t| {
                    4 + (splitmix((pair_ix as u64) << 32 | (c as u64) << 16 | t as u64) % 16)
                        as usize
                })
                .collect()
        })
        .collect()
}

/// Per-worker aggregation of the `timing`/`trace` response fields.
#[derive(Default)]
struct TimingTally {
    queue_ms: u64,
    decode_ms: f64,
    tokens: u64,
    cache_hit: u64,
    cache_miss: u64,
    coalesced: u64,
    trace_ok: u64,
    trace_bad: u64,
}

impl TimingTally {
    fn absorb(&mut self, resp: &Json, expected_trace: &str) {
        match resp.field("trace").ok().and_then(|t| t.as_str().ok()) {
            Some(echoed) if echoed == expected_trace => self.trace_ok += 1,
            _ => self.trace_bad += 1,
        }
        let Ok(timing) = resp.field("timing") else {
            return;
        };
        let num = |k: &str| -> f64 { timing.field(k).and_then(|v| v.as_f64()).unwrap_or(0.0) };
        self.queue_ms += num("queue_ms") as u64;
        self.decode_ms += num("decode_ms");
        self.tokens += num("tokens") as u64;
        match timing.field("cache").ok().and_then(|c| c.as_str().ok()) {
            Some("hit") => self.cache_hit += 1,
            Some("coalesced") => self.coalesced += 1,
            _ => self.cache_miss += 1,
        }
    }

    fn merge(&mut self, other: &TimingTally) {
        self.queue_ms += other.queue_ms;
        self.decode_ms += other.decode_ms;
        self.tokens += other.tokens;
        self.cache_hit += other.cache_hit;
        self.cache_miss += other.cache_miss;
        self.coalesced += other.coalesced;
        self.trace_ok += other.trace_ok;
        self.trace_bad += other.trace_bad;
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: String::new(),
        requests: 40,
        conns: 4,
        distinct: 5,
        deadline_ms: None,
        verify_checkpoint: None,
        scale: Scale::Tiny,
        synthetic: None,
        seed: 0,
        overload_burst: 0,
        shutdown: false,
        top: 0,
        top_interval_ms: 500,
        score: false,
        cands: 4,
        cand_len: 24,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let take = |i: usize| argv.get(i + 1).cloned().unwrap_or_default();
        let mut used_value = true;
        match argv[i].as_str() {
            "--addr" => args.addr = take(i),
            "--requests" => args.requests = take(i).parse().unwrap_or(40),
            "--conns" => args.conns = take(i).parse().unwrap_or(4),
            "--distinct" => args.distinct = take(i).parse().unwrap_or(5),
            "--deadline-ms" => args.deadline_ms = take(i).parse().ok(),
            "--verify-checkpoint" => args.verify_checkpoint = Some(PathBuf::from(take(i))),
            "--scale" => {
                args.scale = match take(i).as_str() {
                    "small" => Scale::Small,
                    _ => Scale::Tiny,
                }
            }
            "--synthetic" => args.synthetic = take(i).parse().ok(),
            "--seed" => args.seed = take(i).parse().unwrap_or(0),
            "--op" => {
                args.score = match take(i).as_str() {
                    "score" => true,
                    "generate" => false,
                    other => {
                        eprintln!("unknown op `{other}` (expected `generate` or `score`)");
                        std::process::exit(2);
                    }
                }
            }
            "--cands" => args.cands = take(i).parse().unwrap_or(4),
            "--cand-len" => args.cand_len = take(i).parse().unwrap_or(24),
            "--overload-burst" => args.overload_burst = take(i).parse().unwrap_or(0),
            "--top" => args.top = take(i).parse().unwrap_or(0),
            "--top-interval-ms" => args.top_interval_ms = take(i).parse().unwrap_or(500),
            "--shutdown" => {
                args.shutdown = true;
                used_value = false;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += if used_value { 2 } else { 1 };
    }
    if args.addr.is_empty() {
        eprintln!("usage: vega-loadgen --addr HOST:PORT [--requests N] …");
        std::process::exit(2);
    }
    args
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let ix = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[ix.min(sorted.len() - 1)]
}

/// Reads one numeric field out of a `stats` response (0 on any error).
fn stat_u64(resp: &std::io::Result<Json>, key: &str) -> u64 {
    resp.as_ref()
        .ok()
        .and_then(|v| {
            v.field("stats")
                .and_then(|s| s.field(key))
                .and_then(Json::as_u64)
                .ok()
        })
        .unwrap_or(0)
}

/// vega-top: polls `{"op":"metrics"}` and renders a live one-line dashboard
/// per tick. Rates (rps, tokens/s) are deltas between consecutive ticks;
/// percentiles and the hit rate are cumulative over the server's lifetime.
/// Returns false when the server cannot be reached or answers garbage.
fn run_top(addr: &str, ticks: usize, interval_ms: u64, retry: &RetryPolicy) -> bool {
    let mut client = match Client::connect_with_retry(addr, retry) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            return false;
        }
    };
    let mut prev: Option<(Instant, f64, f64)> = None;
    for tick in 0..ticks.max(1) {
        let resp = match client.op_with_retry("metrics", retry) {
            Ok(v) => v,
            Err(e) => {
                println!("vega-top: FAIL (metrics op: {e})");
                return false;
            }
        };
        let counter = |name: &str| -> f64 {
            resp.field("metrics")
                .and_then(|m| m.field("counters"))
                .and_then(|c| c.field(name))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        let gauge = |name: &str| -> f64 {
            resp.field("metrics")
                .and_then(|m| m.field("gauges"))
                .and_then(|g| g.field(name))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
        };
        let hist_q = |name: &str, q: &str| -> f64 {
            resp.field("metrics")
                .and_then(|m| m.field("hists"))
                .and_then(|h| h.field(name))
                .and_then(|h| h.field(q))
                .and_then(|v| v.as_f64())
                .unwrap_or(f64::NAN)
        };
        let hit_ratio = resp
            .field("stats")
            .and_then(|s| s.field("cache_hit_ratio"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0);
        let now = Instant::now();
        let (requests, tokens) = (counter("serve.requests"), counter("decode.tokens"));
        let (rps, tps) = match prev {
            Some((t, r0, k0)) => {
                let dt = now.duration_since(t).as_secs_f64().max(1e-9);
                ((requests - r0) / dt, (tokens - k0) / dt)
            }
            None => (0.0, 0.0),
        };
        // Speculation gauges: cumulative acceptance rate plus the live
        // depth (0 = plain greedy, including degraded configurations).
        let (spec_drafted, spec_accepted) = (
            counter("spec.draft_tokens"),
            counter("spec.accepted_tokens"),
        );
        let accept_rate = if spec_drafted > 0.0 {
            100.0 * spec_accepted / spec_drafted
        } else {
            0.0
        };
        println!(
            "vega-top: rps={rps:.1} tokens/s={tps:.1} cache_hit={:.1}% \
             p50={:.1}ms p99={:.1}ms inflight={:.0} queued={:.0} shed={:.0} \
             batch_active={:.0} batch_occ={:.1} \
             spec_depth={:.0} accept_rate={accept_rate:.1}%",
            hit_ratio * 100.0,
            hist_q("serve.request_seconds", "p50") * 1e3,
            hist_q("serve.request_seconds", "p99") * 1e3,
            gauge("serve.inflight"),
            gauge("serve.queue_depth"),
            counter("serve.shed"),
            gauge("serve.batch.active"),
            {
                let occ = hist_q("serve.batch.occupancy", "mean");
                if occ.is_nan() {
                    0.0
                } else {
                    occ
                }
            },
            gauge("serve.spec.depth"),
        );
        prev = Some((now, requests, tokens));
        if tick + 1 < ticks {
            std::thread::sleep(Duration::from_millis(interval_ms));
        }
    }
    true
}

/// The canonical bytes of a generate response's `result` field (or a score
/// response's `scores` field).
fn result_bytes(response: &Json, field: &str) -> Result<String, String> {
    match response.field("ok") {
        Ok(Json::Bool(true)) => {}
        _ => return Err(format!("server returned an error: {}", response.render())),
    }
    response
        .field(field)
        .map(Json::render)
        .map_err(|e| format!("response has no {field} field: {e}"))
}

fn main() {
    let args = parse_args();
    let mut failed = false;

    // Transport retry policy: absorbs the startup race where the first
    // connect lands before the listener is up (ECONNREFUSED), and recovers
    // dropped/corrupted connections under chaos plans.
    let retry = RetryPolicy::default();

    // vega-top mode: live dashboard instead of load.
    if args.top > 0 {
        let ok = run_top(&args.addr, args.top, args.top_interval_ms, &retry);
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Discover what the server can generate.
    let mut control = match Client::connect_with_retry(&args.addr, &retry) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {}: {e}", args.addr);
            std::process::exit(2);
        }
    };
    let names = |resp: std::io::Result<Json>, field: &str| -> Vec<String> {
        resp.ok()
            .and_then(|v| v.field(field).ok().cloned())
            .and_then(|v| match v {
                Json::Arr(items) => Some(
                    items
                        .iter()
                        .filter_map(|i| i.as_str().ok().map(str::to_string))
                        .collect(),
                ),
                _ => None,
            })
            .unwrap_or_default()
    };
    let targets = names(control.op_with_retry("targets", &retry), "targets");
    let groups = names(control.op_with_retry("groups", &retry), "groups");
    if targets.is_empty() || groups.is_empty() {
        eprintln!("server reported no targets/groups");
        std::process::exit(2);
    }
    let mut pairs: Vec<(String, String)> = Vec::new();
    'outer: for g in &groups {
        for t in &targets {
            pairs.push((t.clone(), g.clone()));
            if pairs.len() >= args.distinct.max(1) {
                break 'outer;
            }
        }
    }

    // Decode-token counter before the measured load, so the wall-clock
    // window yields serving-level tokens/sec for the fast decode path.
    // Speculation counters ride the same stats snapshot: the deltas give
    // the acceptance rate over exactly the measured window.
    let stats_before = control.op_with_retry("stats", &retry);
    let tokens_before = stat_u64(&stats_before, "decode_tokens");
    let drafted_before = stat_u64(&stats_before, "spec_draft_tokens");
    let accepted_before = stat_u64(&stats_before, "spec_accepted_tokens");

    // Fire the measured load across connections.
    let t0 = Instant::now();
    let per_conn = args.requests.div_ceil(args.conns.max(1));
    type WorkerOut = (Vec<(usize, Duration, String)>, TimingTally);
    let workers: Vec<_> = (0..args.conns.max(1))
        .map(|c| {
            let addr = args.addr.clone();
            let pairs = pairs.clone();
            let deadline = args.deadline_ms;
            let (score, n_cands, cand_len) = (args.score, args.cands, args.cand_len);
            let retry = RetryPolicy {
                seed: c as u64,
                ..RetryPolicy::default()
            };
            // Each worker mints deterministic trace ids; a twin generator
            // with the same seed predicts the exact sequence, so the echoed
            // `trace` field is checked without any side channel.
            let trace_seed = args.seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            std::thread::spawn(move || -> Result<WorkerOut, String> {
                let mut client = Client::connect_with_retry(&addr, &retry)
                    .map_err(|e| format!("connect: {e}"))?;
                client.set_tracer(trace_seed);
                let mut expect = TraceIdGen::new(trace_seed);
                let mut out = Vec::new();
                let mut tally = TimingTally::default();
                for r in 0..per_conn {
                    let pair_ix = (c + r * 7) % pairs.len();
                    let (target, group) = &pairs[pair_ix];
                    let expected_trace = expect.mint().render();
                    let q0 = Instant::now();
                    let (resp, field) = if score {
                        let cands = score_candidates(pair_ix, n_cands, cand_len);
                        (
                            client.score_with_retry(target, group, &cands, deadline, &retry),
                            "scores",
                        )
                    } else {
                        (
                            client.generate_with_retry(target, group, deadline, &retry),
                            "result",
                        )
                    };
                    let resp = resp.map_err(|e| format!("request: {e}"))?;
                    let bytes = result_bytes(&resp, field)?;
                    tally.absorb(&resp, &expected_trace);
                    out.push((pair_ix, q0.elapsed(), bytes));
                }
                Ok((out, tally))
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut by_pair: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut timing = TimingTally::default();
    for w in workers {
        match w.join().expect("worker thread panicked") {
            Ok((results, tally)) => {
                timing.merge(&tally);
                for (pair_ix, lat, bytes) in results {
                    latencies.push(lat);
                    by_pair.entry(pair_ix).or_default().push(bytes);
                }
            }
            Err(e) => {
                println!("loadgen: worker=FAIL ({e})");
                failed = true;
            }
        }
    }
    let wall = t0.elapsed();
    let stats_after = control.op_with_retry("stats", &retry);
    let decode_tokens = stat_u64(&stats_after, "decode_tokens").saturating_sub(tokens_before);
    let spec_drafted = stat_u64(&stats_after, "spec_draft_tokens").saturating_sub(drafted_before);
    let spec_accepted =
        stat_u64(&stats_after, "spec_accepted_tokens").saturating_sub(accepted_before);
    let accept_rate = if spec_drafted > 0 {
        100.0 * spec_accepted as f64 / spec_drafted as f64
    } else {
        0.0
    };
    latencies.sort();
    println!(
        "loadgen: requests={} wall={:.2}s throughput={:.1}/s tokens/s={:.1} \
         decode_tokens={decode_tokens} accept_rate={accept_rate:.1}% \
         spec_drafted={spec_drafted} spec_accepted={spec_accepted} \
         p50={:.1}ms p99={:.1}ms",
        latencies.len(),
        wall.as_secs_f64(),
        latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        decode_tokens as f64 / wall.as_secs_f64().max(1e-9),
        percentile(&latencies, 0.50).as_secs_f64() * 1e3,
        percentile(&latencies, 0.99).as_secs_f64() * 1e3,
    );

    // Server-reported per-request timing breakdown, aggregated.
    println!(
        "loadgen: timing queue_ms={} decode_ms={:.1} tokens={} \
         cache_hit={} cache_miss={} coalesced={}",
        timing.queue_ms,
        timing.decode_ms,
        timing.tokens,
        timing.cache_hit,
        timing.cache_miss,
        timing.coalesced,
    );
    // Continuous-batching statistics (all zeros under the replica engine):
    // mean/p99 batch occupancy per decode step and the queue-join wait a
    // request saw before its session got a slot.
    match control.op_with_retry("metrics", &retry) {
        Ok(m) => {
            let counter = |name: &str| -> u64 {
                m.field("metrics")
                    .and_then(|v| v.field("counters"))
                    .and_then(|c| c.field(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            let hist_q = |name: &str, q: &str| -> f64 {
                m.field("metrics")
                    .and_then(|v| v.field("hists"))
                    .and_then(|h| h.field(name))
                    .and_then(|h| h.field(q))
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            };
            println!(
                "loadgen: batch steps={} joins={} replays={} \
                 occupancy_mean={:.2} occupancy_p99={:.1} \
                 join_wait_mean_ms={:.2} join_wait_p99_ms={:.2}",
                counter("serve.batch.steps"),
                counter("serve.batch.joins"),
                counter("serve.batch.replays"),
                hist_q("serve.batch.occupancy", "mean"),
                hist_q("serve.batch.occupancy", "p99"),
                hist_q("serve.batch.join_wait_ms", "mean"),
                hist_q("serve.batch.join_wait_ms", "p99"),
            );
        }
        Err(e) => {
            println!("loadgen: batch=FAIL (metrics op: {e})");
            failed = true;
        }
    }

    // Every response must echo the trace id the worker minted for it.
    if timing.trace_bad == 0 && timing.trace_ok == latencies.len() as u64 {
        println!(
            "loadgen: trace=ok ({} responses echoed their trace)",
            timing.trace_ok
        );
    } else {
        println!(
            "loadgen: trace=FAIL ({} echoed, {} missing/mismatched)",
            timing.trace_ok, timing.trace_bad
        );
        failed = true;
    }

    // Byte-identity across responses for the same pair.
    let mut mismatches = 0usize;
    for (pair_ix, renders) in &by_pair {
        if renders.windows(2).any(|w| w[0] != w[1]) {
            let (t, g) = &pairs[*pair_ix];
            println!("loadgen: identity=FAIL ({t}/{g} responses differ across requests)");
            mismatches += 1;
        }
    }

    // Byte-identity against direct in-process generation.
    if let Some(ckpt) = &args.verify_checkpoint {
        let mut cfg = match args.scale {
            Scale::Tiny => VegaConfig::tiny(),
            Scale::Small => VegaConfig::default(),
        };
        if let Some(n) = args.synthetic {
            cfg.corpus.synthetic_targets = n;
        }
        cfg.seed = args.seed;
        cfg.train.seed = args.seed ^ 1;
        let engine = load_checkpoint(ckpt)
            .and_then(|c| c.into_engine(cfg))
            .map(|(_, e)| e);
        match engine {
            Ok(engine) => {
                for (pair_ix, renders) in &by_pair {
                    let (t, g) = &pairs[*pair_ix];
                    let expect = if args.score {
                        // Recompute the worker's candidates (same pure
                        // function of the pair index) and score them on a
                        // backend-free local replica.
                        let cands = score_candidates(*pair_ix, args.cands, args.cand_len);
                        let mut replica = engine.replica();
                        match engine.try_score_with(&mut replica, t, g, &cands, None) {
                            Ok(scores) => {
                                Json::Arr(scores.into_iter().map(Json::num_f32).collect()).render()
                            }
                            Err(e) => {
                                println!("loadgen: verify=FAIL (local score {t}/{g}: {})", e.msg);
                                mismatches += 1;
                                continue;
                            }
                        }
                    } else {
                        match engine.generate(t, g) {
                            Ok((module, gf)) => {
                                protocol::render_generated(t, g, module, &gf).render()
                            }
                            Err(e) => {
                                println!(
                                    "loadgen: verify=FAIL (local generate {t}/{g}: {})",
                                    e.msg
                                );
                                mismatches += 1;
                                continue;
                            }
                        }
                    };
                    if renders.iter().any(|r| r != &expect) {
                        println!("loadgen: verify=FAIL ({t}/{g} differs from direct generation)");
                        mismatches += 1;
                    }
                }
            }
            Err(e) => {
                println!("loadgen: verify=FAIL ({e})");
                mismatches += 1;
            }
        }
    }
    if mismatches == 0 {
        println!(
            "loadgen: verify=ok ({} pairs byte-identical{})",
            by_pair.len(),
            if args.verify_checkpoint.is_some() {
                ", matched direct generation"
            } else {
                ""
            }
        );
    } else {
        failed = true;
    }

    // Server-side cache statistics.
    match control.op_with_retry("stats", &retry) {
        Ok(v) => {
            let get = |k: &str| -> u64 {
                v.field("stats")
                    .and_then(|s| s.field(k))
                    .and_then(|n| n.as_u64())
                    .unwrap_or(0)
            };
            let hits = get("cache_hits");
            let misses = get("cache_misses");
            let rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
            println!(
                "loadgen: cache_hits={hits} cache_misses={misses} hit_rate={rate:.1}% \
                 coalesced={} shed={} generated={}",
                get("coalesced"),
                get("shed"),
                get("generated"),
            );
            if args.score {
                // Scoring bypasses the cache by design; nothing to check.
                println!("loadgen: cache=skipped (score workload is uncached)");
            } else if args.requests > pairs.len() && hits == 0 {
                println!("loadgen: cache=FAIL (repeats sent but zero cache hits)");
                failed = true;
            } else {
                println!("loadgen: cache=ok");
            }
        }
        Err(e) => {
            println!("loadgen: cache=FAIL (stats op: {e})");
            failed = true;
        }
    }

    // Overload probe: burst distinct uncached pairs; expect explicit sheds.
    if args.overload_burst > 0 {
        let mut burst_pairs: Vec<(String, String)> = Vec::new();
        'fill: for g in groups.iter().rev() {
            for t in targets.iter().rev() {
                burst_pairs.push((t.clone(), g.clone()));
                if burst_pairs.len() >= args.overload_burst {
                    break 'fill;
                }
            }
        }
        let probes: Vec<_> = burst_pairs
            .into_iter()
            .map(|(t, g)| {
                let addr = args.addr.clone();
                std::thread::spawn(move || -> Result<String, String> {
                    let retry = RetryPolicy::default();
                    let mut client = Client::connect_with_retry(&addr, &retry)
                        .map_err(|e| format!("connect: {e}"))?;
                    let resp = client
                        .generate(&t, &g, Some(60_000))
                        .map_err(|e| format!("request: {e}"))?;
                    match resp.field("ok") {
                        Ok(Json::Bool(true)) => Ok("ok".to_string()),
                        _ => Ok(resp
                            .field("error")
                            .ok()
                            .and_then(|e| e.as_str().ok().map(str::to_string))
                            .unwrap_or_else(|| "unknown".to_string())),
                    }
                })
            })
            .collect();
        let mut overloaded = 0usize;
        let mut answered = 0usize;
        for p in probes {
            match p.join().expect("probe thread panicked") {
                Ok(code) => {
                    answered += 1;
                    if code == "overloaded" {
                        overloaded += 1;
                    }
                }
                Err(e) => {
                    println!("loadgen: overload=FAIL (probe error: {e})");
                    failed = true;
                }
            }
        }
        if overloaded > 0 {
            println!(
                "loadgen: overload=ok ({overloaded}/{answered} probes shed with `overloaded`)"
            );
        } else {
            println!("loadgen: overload=FAIL (no probe was shed; {answered} answered)");
            failed = true;
        }
    }

    if args.shutdown {
        match control.op_with_retry("shutdown", &retry) {
            Ok(v) if matches!(v.field("ok"), Ok(Json::Bool(true))) => {
                println!("loadgen: shutdown=ok");
            }
            other => {
                println!("loadgen: shutdown=FAIL ({other:?})");
                failed = true;
            }
        }
    }

    if failed {
        std::process::exit(1);
    }
}
