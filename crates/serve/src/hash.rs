//! Stable content hashing for cache keys.
//!
//! The generation cache is *content-addressed*: its key must be a pure
//! function of everything that determines a generation's bytes, and it must
//! be stable across runs, platforms and thread counts (the JSONL trace and
//! the loadgen verifier both compare keys textually). `std`'s `DefaultHasher`
//! is explicitly not stable across releases, so this module carries a
//! fixed-constant FNV-1a over two independent 64-bit lanes — 128 bits keeps
//! accidental collisions out of reach for any realistic cache size.

/// Incremental 128-bit FNV-1a hasher (two independently-seeded 64-bit lanes).
#[derive(Debug, Clone)]
pub struct StableHasher {
    lo: u64,
    hi: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Second-lane offset: the first lane's offset rehashed with a domain tag, so
/// the lanes never agree by construction.
const FNV_OFFSET_HI: u64 = 0xaf63_bd4c_8601_b7df;

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        StableHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET_HI,
        }
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lo = (self.lo ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            self.hi = (self.hi ^ u64::from(b ^ 0x5a)).wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// Feeds a `usize` as 8 little-endian bytes.
    pub fn write_usize(&mut self, v: usize) {
        self.write(&(v as u64).to_le_bytes());
    }

    /// Feeds a `usize` slice, length-prefixed.
    pub fn write_ids(&mut self, ids: &[usize]) {
        self.write_usize(ids.len());
        for &id in ids {
            self.write_usize(id);
        }
    }

    /// The 128-bit digest as a fixed-width lowercase hex string.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// One-shot digest of a string (used for target-description fingerprints).
pub fn digest_str(s: &str) -> String {
    let mut h = StableHasher::new();
    h.write_str(s);
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable_and_distinct() {
        assert_eq!(digest_str("abc"), digest_str("abc"));
        assert_ne!(digest_str("abc"), digest_str("abd"));
        assert_ne!(digest_str(""), digest_str("\0"));
        // Fixed-width hex: the key format is part of the trace contract.
        assert_eq!(digest_str("x").len(), 32);
        assert!(digest_str("x").chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn framing_prevents_concatenation_collisions() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());

        let mut c = StableHasher::new();
        c.write_ids(&[1, 2]);
        c.write_ids(&[3]);
        let mut d = StableHasher::new();
        d.write_ids(&[1, 2, 3]);
        d.write_ids(&[]);
        assert_ne!(c.finish_hex(), d.finish_hex());
    }
}
