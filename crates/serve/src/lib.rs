//! `vega-serve`: a batching, caching generation service over trained
//! checkpoints.
//!
//! The one-shot `vega-experiments` binary retrains from scratch every run;
//! this crate is the serving half the ROADMAP's north star asks for. It
//! loads a `CodeBe` checkpoint (produced by `vega-experiments --save-model`),
//! rebuilds the deterministic Stage-1 artifacts around it
//! ([`vega::Vega::with_model`]), and serves Stage-3 generation over a
//! line-delimited JSON TCP protocol with:
//!
//! * a checkpoint [`registry`] that validates at load time (unreadable /
//!   unparseable / corpus-mismatched checkpoints are reported, not decoded);
//! * a content-addressed [`lru`] generation cache whose keys
//!   ([`engine::Engine::cache_key`]) cover the model digest, target
//!   descriptions and the exact signature feature vector — cache hits are
//!   byte-identical to the generation that populated them;
//! * a bounded request queue with coalescing, per-request deadlines,
//!   `overloaded` shedding and graceful drain ([`server`]);
//! * full `vega-obs` integration: `serve.request` spans, cache hit/miss
//!   counters and request-latency histograms in the JSONL trace;
//! * deterministic chaos hooks (`vega-fault`): the connection path carries
//!   `serve.conn.drop` / `serve.conn.stall` / `serve.conn.corrupt` fault
//!   sites, the server closes idle connections, and the [`client`] recovers
//!   from drops and malformed frames with deterministic exponential backoff
//!   ([`client::RetryPolicy`]) — so `VEGA_FAULT_PLAN` chaos runs complete
//!   with byte-identical successful responses.
//!
//! Binaries: `vega-serve` (the daemon) and `vega-loadgen` (a concurrent load
//! generator that measures throughput/p50/p99 and verifies responses against
//! direct in-process generation).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batcher;
pub mod client;
pub mod engine;
pub mod hash;
pub mod lru;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{Client, RetryPolicy};
pub use engine::{Engine, EngineError};
pub use lru::LruCache;
pub use protocol::{ErrorKind, Request};
pub use registry::{
    load_checkpoint, load_checkpoint_prefault, Checkpoint, CheckpointMeta, RegistryError,
};
pub use server::{EngineMode, ServeConfig, ServeStats, Server};
