//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, over a plain TCP
//! stream. Every request is a JSON object with an `op` field and an optional
//! `id` the server echoes back verbatim, so clients may pipeline requests.
//!
//! Requests:
//!
//! ```text
//! {"id":1,"op":"generate","target":"RISCV","group":"getRelocType","deadline_ms":2000}
//! {"id":2,"op":"backend","target":"RI5CY"}
//! {"id":4,"op":"score","target":"RISCV","group":"getRelocType","candidates":[[5,9,2],[5,7]]}
//! {"op":"targets"}   {"op":"groups"}   {"op":"stats"}   {"op":"ping"}
//! {"op":"metrics"}   {"op":"flightdump"}   {"op":"shutdown"}
//! {"id":3,"op":"swap","path":"/path/to/model.ckpt"}
//! ```
//!
//! `swap` hot-reloads the model: the checkpoint at `path` is loaded and
//! validated off to the side, the serving registry flips atomically, and
//! requests already in flight finish on the model they were submitted
//! against. A failed swap (`swap_failed`) leaves the old model serving.
//!
//! `score` ranks caller-supplied candidate token-id sequences against one
//! `(target, group)` signature: the response's `scores` array holds the
//! model's log-probability of emitting each candidate from the exact
//! signature frame generation would decode from, in candidate order. At most
//! [`MAX_SCORE_CANDIDATES`] candidates per request, each a non-empty array
//! of token ids. Under the batch engine all of a request's candidates join
//! the running decode batch concurrently, so scoring is where continuous
//! batching pays off hardest.
//!
//! `generate`, `backend`, and `score` additionally accept an optional `trace` field —
//! a [`vega_obs::TraceCtx`] in its `render` form
//! (`<32 hex trace id>/<16 hex span id>`). The server re-establishes the
//! caller's trace context around everything it does for the request
//! (queue wait, cache lookup, dispatch, decode), so server-side spans and
//! flight-recorder records carry the client's trace id. A malformed `trace`
//! is ignored rather than rejected: tracing is observability, and a client
//! bug there must not turn into request failures.
//!
//! Responses are `{"id":…,"ok":true,…}` or
//! `{"id":…,"ok":false,"error":"<kind>","message":"…"}`. Generation
//! responses carry the rendered function in `result` plus `cached` /
//! `coalesced` flags, the echoed `trace` (when one was sent), and a `timing`
//! breakdown (`queue_ms`, `cache`, `decode_ms`, `tokens`); `result` is
//! rendered by [`render_generated`] on both the serving and the verifying
//! side, which is what makes byte-identity checkable — which is exactly why
//! `trace`/`timing` live in the envelope beside `result`, never inside it.
//!
//! `metrics` returns the live obs registry as both a JSON snapshot
//! (`metrics`) and Prometheus text exposition (`text`); `flightdump`
//! returns the flight recorder's retained records.

use vega::{GeneratedFunction, SIG_NODE};
use vega_corpus::Module;
use vega_obs::json::Json;
use vega_obs::TraceCtx;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Generate one interface function for a target.
    Generate {
        /// Target namespace (e.g. `RISCV`).
        target: String,
        /// Interface-function group (e.g. `getRelocType`).
        group: String,
        /// Per-request deadline; the server default applies when absent.
        deadline_ms: Option<u64>,
        /// Caller trace context to adopt (malformed values parse to `None`).
        trace: Option<TraceCtx>,
    },
    /// Generate every interface function for a target.
    Backend {
        /// Target namespace.
        target: String,
        /// Per-request deadline over the whole backend.
        deadline_ms: Option<u64>,
        /// Caller trace context to adopt (malformed values parse to `None`).
        trace: Option<TraceCtx>,
    },
    /// Score candidate token-id sequences against a target/group signature.
    Score {
        /// Target namespace.
        target: String,
        /// Interface-function group.
        group: String,
        /// Candidate output sequences, each a non-empty list of token ids.
        candidates: Vec<Vec<usize>>,
        /// Per-request deadline; the server default applies when absent.
        deadline_ms: Option<u64>,
        /// Caller trace context to adopt (malformed values parse to `None`).
        trace: Option<TraceCtx>,
    },
    /// List the servable targets.
    Targets,
    /// List the interface-function groups.
    Groups,
    /// Server/cache/queue statistics.
    Stats,
    /// Live obs registry: JSON snapshot plus Prometheus text exposition.
    Metrics,
    /// The flight recorder's retained records.
    FlightDump,
    /// Liveness probe.
    Ping,
    /// Hot-swap the serving model to the checkpoint at `path`.
    Swap {
        /// Filesystem path of the replacement checkpoint (v1 or v2).
        path: String,
    },
    /// Begin graceful shutdown.
    Shutdown,
}

/// The most candidates one `score` request may carry. Caps the fan-out a
/// single connection can force on the decode broker (each candidate holds a
/// batch slot for its whole forced decode).
pub const MAX_SCORE_CANDIDATES: usize = 16;

/// Machine-readable error kinds (`error` field of failure responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed request line.
    BadRequest,
    /// Target not in the corpus.
    UnknownTarget,
    /// Interface group not templated.
    UnknownGroup,
    /// Bounded queue full — request shed, retry later.
    Overloaded,
    /// Deadline elapsed before the request was dispatched.
    DeadlineExceeded,
    /// Server is draining; no new work accepted.
    ShuttingDown,
    /// A model hot swap could not be completed; the old model still serves.
    SwapFailed,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire spelling.
    pub fn code(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownTarget => "unknown_target",
            ErrorKind::UnknownGroup => "unknown_group",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::SwapFailed => "swap_failed",
            ErrorKind::Internal => "internal",
        }
    }
}

/// Parses one request line. On failure the caller still gets the request's
/// `id` (when one could be extracted) for the error response.
///
/// # Errors
/// Returns the extracted `id` and a description of what was malformed.
pub fn parse_request(line: &str) -> Result<(Json, Request), (Json, String)> {
    let v = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return Err((Json::Null, format!("unparseable request: {e}"))),
    };
    let id = v.field("id").cloned().unwrap_or(Json::Null);
    let op = match v.field("op").and_then(|o| o.as_str()) {
        Ok(op) => op.to_string(),
        Err(_) => return Err((id, "missing string field `op`".to_string())),
    };
    let str_field = |name: &str| -> Result<String, (Json, String)> {
        v.field(name)
            .and_then(|f| f.as_str())
            .map(str::to_string)
            .map_err(|_| (id.clone(), format!("op `{op}` needs string field `{name}`")))
    };
    let deadline = v.field("deadline_ms").ok().and_then(|d| d.as_u64().ok());
    let trace = v
        .field("trace")
        .ok()
        .and_then(|t| t.as_str().ok())
        .and_then(TraceCtx::parse);
    let req = match op.as_str() {
        "generate" => Request::Generate {
            target: str_field("target")?,
            group: str_field("group")?,
            deadline_ms: deadline,
            trace,
        },
        "backend" => Request::Backend {
            target: str_field("target")?,
            deadline_ms: deadline,
            trace,
        },
        "score" => {
            let outer = v
                .field("candidates")
                .and_then(|c| c.as_array())
                .map_err(|_| {
                    (
                        id.clone(),
                        "op `score` needs array field `candidates`".to_string(),
                    )
                })?;
            if outer.is_empty() || outer.len() > MAX_SCORE_CANDIDATES {
                return Err((
                    id,
                    format!(
                        "op `score` takes 1..={MAX_SCORE_CANDIDATES} candidates, got {}",
                        outer.len()
                    ),
                ));
            }
            let mut candidates = Vec::with_capacity(outer.len());
            for (i, cand) in outer.iter().enumerate() {
                let ids = cand
                    .as_array()
                    .and_then(|a| {
                        a.iter()
                            .map(|t| t.as_usize())
                            .collect::<Result<Vec<_>, _>>()
                    })
                    .map_err(|_| {
                        (
                            id.clone(),
                            format!("candidate {i} must be an array of token ids"),
                        )
                    })?;
                if ids.is_empty() {
                    return Err((id, format!("candidate {i} is empty")));
                }
                candidates.push(ids);
            }
            Request::Score {
                target: str_field("target")?,
                group: str_field("group")?,
                candidates,
                deadline_ms: deadline,
                trace,
            }
        }
        "targets" => Request::Targets,
        "groups" => Request::Groups,
        "stats" => Request::Stats,
        "metrics" => Request::Metrics,
        "flightdump" => Request::FlightDump,
        "ping" => Request::Ping,
        "swap" => Request::Swap {
            path: str_field("path")?,
        },
        "shutdown" => Request::Shutdown,
        other => return Err((id, format!("unknown op `{other}`"))),
    };
    Ok((id, req))
}

/// Renders a generation result as the canonical `result` payload. The server
/// caches this rendering and `vega-loadgen` recomputes it locally from a
/// direct [`vega::generate_function`] call, so its bytes must be a pure
/// function of the generation — no timestamps, no server state.
pub fn render_generated(target: &str, group: &str, module: Module, gf: &GeneratedFunction) -> Json {
    let stmts: Vec<Json> = gf
        .stmts
        .iter()
        .map(|s| {
            Json::obj([
                (
                    "node",
                    if s.node == SIG_NODE {
                        Json::num_i64(-1)
                    } else {
                        Json::num_usize(s.node)
                    },
                ),
                ("score", Json::num_f64(s.score)),
                ("kept", Json::Bool(s.kept)),
                ("line", Json::str(s.line.clone())),
            ])
        })
        .collect();
    Json::obj([
        ("target", Json::str(target)),
        ("group", Json::str(group)),
        ("module", Json::str(module.code())),
        ("confidence", Json::num_f64(gf.confidence)),
        ("multi_source", Json::Bool(gf.multi_source)),
        (
            "function",
            match &gf.function {
                Some(f) => Json::str(vega_cpplite::render_function(f)),
                None => Json::Null,
            },
        ),
        ("stmts", Json::Arr(stmts)),
    ])
}

/// A success envelope around extra fields.
pub fn ok_response(id: &Json, fields: impl IntoIterator<Item = (&'static str, Json)>) -> String {
    let mut all = vec![
        ("id".to_string(), id.clone()),
        ("ok".to_string(), Json::Bool(true)),
    ];
    all.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Json::Obj(all).render()
}

/// A failure envelope.
pub fn err_response(id: &Json, kind: ErrorKind, message: &str) -> String {
    Json::obj([
        ("id", id.clone()),
        ("ok", Json::Bool(false)),
        ("error", Json::str(kind.code())),
        ("message", Json::str(message)),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_generate_and_preserves_id() {
        let (id, req) =
            parse_request(r#"{"id":42,"op":"generate","target":"RISCV","group":"getRelocType"}"#)
                .unwrap();
        assert_eq!(id, Json::Num("42".into()));
        assert_eq!(
            req,
            Request::Generate {
                target: "RISCV".into(),
                group: "getRelocType".into(),
                deadline_ms: None,
                trace: None,
            }
        );
        let (_, req) = parse_request(r#"{"op":"ping"}"#).unwrap();
        assert_eq!(req, Request::Ping);
        let (_, req) = parse_request(r#"{"op":"metrics"}"#).unwrap();
        assert_eq!(req, Request::Metrics);
        let (_, req) = parse_request(r#"{"op":"flightdump"}"#).unwrap();
        assert_eq!(req, Request::FlightDump);
        let (_, req) = parse_request(r#"{"op":"swap","path":"/tmp/m.ckpt"}"#).unwrap();
        assert_eq!(
            req,
            Request::Swap {
                path: "/tmp/m.ckpt".into()
            }
        );
        let (_, msg) = parse_request(r#"{"op":"swap"}"#).unwrap_err();
        assert!(msg.contains("path"), "{msg}");
    }

    #[test]
    fn trace_field_parses_and_malformed_traces_are_ignored() {
        let ctx = vega_obs::TraceIdGen::new(7).mint();
        let line = format!(
            r#"{{"op":"generate","target":"T","group":"G","trace":"{}"}}"#,
            ctx.render()
        );
        let (_, req) = parse_request(&line).unwrap();
        match req {
            Request::Generate { trace, .. } => assert_eq!(trace, Some(ctx)),
            other => panic!("parsed {other:?}"),
        }
        // A malformed trace must not fail the request.
        let (_, req) =
            parse_request(r#"{"op":"generate","target":"T","group":"G","trace":"zzz"}"#).unwrap();
        match req {
            Request::Generate { trace, .. } => assert_eq!(trace, None),
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn parses_score_and_rejects_malformed_candidates() {
        let (id, req) = parse_request(
            r#"{"id":9,"op":"score","target":"RISCV","group":"getRelocType","candidates":[[5,9,2],[5,7]]}"#,
        )
        .unwrap();
        assert_eq!(id, Json::Num("9".into()));
        assert_eq!(
            req,
            Request::Score {
                target: "RISCV".into(),
                group: "getRelocType".into(),
                candidates: vec![vec![5, 9, 2], vec![5, 7]],
                deadline_ms: None,
                trace: None,
            }
        );
        // Missing / empty / oversized candidate lists fail to parse.
        let (_, msg) = parse_request(r#"{"op":"score","target":"T","group":"G"}"#).unwrap_err();
        assert!(msg.contains("candidates"), "{msg}");
        let (_, msg) = parse_request(r#"{"op":"score","target":"T","group":"G","candidates":[]}"#)
            .unwrap_err();
        assert!(msg.contains("1..="), "{msg}");
        let (_, msg) =
            parse_request(r#"{"op":"score","target":"T","group":"G","candidates":[[1],[]]}"#)
                .unwrap_err();
        assert!(msg.contains("candidate 1 is empty"), "{msg}");
        let (_, msg) =
            parse_request(r#"{"op":"score","target":"T","group":"G","candidates":[[1],"x"]}"#)
                .unwrap_err();
        assert!(msg.contains("array of token ids"), "{msg}");
        let too_many = format!(
            r#"{{"op":"score","target":"T","group":"G","candidates":[{}]}}"#,
            vec!["[1]"; MAX_SCORE_CANDIDATES + 1].join(",")
        );
        let (_, msg) = parse_request(&too_many).unwrap_err();
        assert!(msg.contains("1..="), "{msg}");
    }

    #[test]
    fn malformed_requests_keep_the_id_for_the_error() {
        let (id, msg) = parse_request(r#"{"id":"a","op":"generate"}"#).unwrap_err();
        assert_eq!(id, Json::Str("a".into()));
        assert!(msg.contains("target"), "{msg}");
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, Json::Null);
        let (_, msg) = parse_request(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert!(msg.contains("frobnicate"));
    }

    #[test]
    fn envelopes_roundtrip_through_the_parser() {
        let ok = ok_response(&Json::num_i64(7), [("pong", Json::Bool(true))]);
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.field("ok").unwrap(), &Json::Bool(true));
        assert_eq!(v.field("id").unwrap(), &Json::Num("7".into()));
        let err = err_response(&Json::Null, ErrorKind::Overloaded, "queue full");
        let v = Json::parse(&err).unwrap();
        assert_eq!(v.field("error").unwrap().as_str().unwrap(), "overloaded");
    }
}
