//! The generation engine: a trained [`Vega`] pipeline prepared for serving.
//!
//! Stage-1 artifacts (templates, features, the `PropList` catalog) and each
//! target's description index are built once at startup; request handling
//! only reads them. Cache keys are content addresses over everything a
//! generation depends on: the model checkpoint, the target's description
//! files, and the encoded signature feature vector — two requests with equal
//! keys are guaranteed byte-identical generations, so the server may answer
//! the second from cache.

use crate::hash::StableHasher;
use crate::protocol::ErrorKind;
use std::collections::BTreeMap;
use std::time::Instant;
use vega::{signature_feature_input, try_generate_function, GeneratedFunction, TgtIndex, Vega};
use vega_corpus::Module;
use vega_model::{CodeBe, DecodeAbort};

/// A serving-layer failure with its protocol error kind.
#[derive(Debug, Clone)]
pub struct EngineError {
    /// Protocol error classification.
    pub kind: ErrorKind,
    /// Human-readable description (names the unknown target/group and lists
    /// what exists).
    pub msg: String,
}

/// Maps a decode-backend abort to its protocol error.
fn abort_error(abort: DecodeAbort) -> EngineError {
    match abort {
        DecodeAbort::Expired => EngineError {
            kind: ErrorKind::DeadlineExceeded,
            msg: "deadline elapsed mid-generation at a token boundary".into(),
        },
        DecodeAbort::Broken(msg) => EngineError {
            kind: ErrorKind::Internal,
            msg: format!("decode backend failed: {msg}"),
        },
    }
}

/// Per-target serving state.
#[derive(Debug)]
struct TargetCtx {
    /// The description-file index Stage 3 resolves values against.
    ix: TgtIndex,
    /// Content digest of the description files — part of every cache key, so
    /// a corpus rebuilt with different descriptions can never alias an old
    /// cache entry.
    digest: String,
}

/// A trained pipeline plus precomputed per-target serving state.
pub struct Engine {
    vega: Vega,
    targets: BTreeMap<String, TargetCtx>,
    model_digest: String,
}

impl Engine {
    /// Prepares `vega` for serving: indexes every corpus target and
    /// fingerprints the model.
    pub fn new(vega: Vega) -> Self {
        let mut targets = BTreeMap::new();
        for t in vega.corpus.targets() {
            let mut h = StableHasher::new();
            for (path, content) in t.descriptions.iter() {
                h.write_str(path);
                h.write_str(content);
            }
            targets.insert(
                t.spec.name.clone(),
                TargetCtx {
                    ix: TgtIndex::build(&t.descriptions),
                    digest: h.finish_hex(),
                },
            );
        }
        let model_digest = crate::hash::digest_str(&vega.model().save_json());
        Engine {
            vega,
            targets,
            model_digest,
        }
    }

    /// The underlying pipeline.
    pub fn vega(&self) -> &Vega {
        &self.vega
    }

    /// Stable digest of the model weights, as embedded in every cache key.
    /// Two engines with equal digests generate byte-identical responses, so
    /// a hot swap between them may keep the cache.
    pub fn model_digest(&self) -> &str {
        &self.model_digest
    }

    /// Servable target names, in corpus order.
    pub fn target_names(&self) -> Vec<String> {
        self.vega
            .corpus
            .targets()
            .iter()
            .map(|t| t.spec.name.clone())
            .collect()
    }

    /// Interface-function group names, in template order.
    pub fn group_names(&self) -> Vec<String> {
        self.vega.templates.keys().cloned().collect()
    }

    /// A fresh model replica for a dispatcher worker.
    pub fn replica(&self) -> CodeBe {
        self.vega.model().clone()
    }

    /// Checks that `target` is servable.
    ///
    /// # Errors
    /// [`EngineError`] with [`ErrorKind::UnknownTarget`] listing the targets
    /// that exist.
    pub fn validate_target(&self, target: &str) -> Result<(), EngineError> {
        self.target_ctx(target).map(|_| ())
    }

    fn target_ctx(&self, target: &str) -> Result<&TargetCtx, EngineError> {
        match self.vega.corpus.try_target(target) {
            Ok(_) => Ok(&self.targets[target]),
            Err(e) => Err(EngineError {
                kind: ErrorKind::UnknownTarget,
                msg: e.to_string(),
            }),
        }
    }

    fn bundle(&self, group: &str) -> Result<&vega::TemplateBundle, EngineError> {
        self.vega.templates.get(group).ok_or_else(|| EngineError {
            kind: ErrorKind::UnknownGroup,
            msg: format!(
                "unknown function group `{group}`; available groups: {}",
                self.group_names().join(", ")
            ),
        })
    }

    /// The content address of one `(target, group)` generation.
    ///
    /// The key covers the model digest, the target name and its description
    /// digest, the group name, the exact signature feature-vector ids the
    /// model would be fed, and the active kernel mode. Everything downstream
    /// of the signature input (body feature vectors, candidate ranking) is a
    /// deterministic function of the same description index *within a kernel
    /// mode* — scalar and AVX2 kernels differ in reduction order, so the
    /// mode must be part of the address or a cache hit could cross modes and
    /// break the equal-keys-imply-byte-identical-payloads contract.
    ///
    /// # Errors
    /// [`EngineError`] with [`ErrorKind::UnknownTarget`] or
    /// [`ErrorKind::UnknownGroup`].
    pub fn cache_key(&self, target: &str, group: &str) -> Result<String, EngineError> {
        let ctx = self.target_ctx(target)?;
        let bundle = self.bundle(group)?;
        let sig_input = signature_feature_input(
            &self.vega.model().vocab,
            target,
            &bundle.template,
            &bundle.features,
            &ctx.ix,
            &self.vega.catalog,
            self.vega.max_input_len(),
        );
        let mut h = StableHasher::new();
        h.write_str("vega-serve/v2");
        h.write_str(&self.model_digest);
        h.write_str(target);
        h.write_str(&ctx.digest);
        h.write_str(group);
        h.write_ids(&sig_input);
        h.write_str(vega_nn::kernel::active_name());
        Ok(h.finish_hex())
    }

    /// Generates one function on the given model replica.
    ///
    /// # Errors
    /// [`EngineError`] with [`ErrorKind::UnknownTarget`] or
    /// [`ErrorKind::UnknownGroup`].
    pub fn generate_with(
        &self,
        model: &mut CodeBe,
        target: &str,
        group: &str,
    ) -> Result<(Module, GeneratedFunction), EngineError> {
        self.try_generate_with(model, target, group, None)
    }

    /// Generates one function on the given model replica, honoring
    /// `deadline` at token boundaries when the replica routes decode through
    /// a batching backend. Without a backend the deadline is ignored and
    /// generation runs to completion (replica mode enforces deadlines before
    /// dispatch instead).
    ///
    /// # Errors
    /// [`ErrorKind::UnknownTarget`] / [`ErrorKind::UnknownGroup`] as in
    /// [`Engine::generate_with`]; [`ErrorKind::DeadlineExceeded`] when the
    /// backend aborted at the deadline; [`ErrorKind::Internal`] when the
    /// backend itself failed.
    pub fn try_generate_with(
        &self,
        model: &mut CodeBe,
        target: &str,
        group: &str,
        deadline: Option<Instant>,
    ) -> Result<(Module, GeneratedFunction), EngineError> {
        let ctx = self.target_ctx(target)?;
        let bundle = self.bundle(group)?;
        let gf = try_generate_function(
            model,
            target,
            &bundle.template,
            &bundle.features,
            &ctx.ix,
            &self.vega.catalog,
            self.vega.max_input_len(),
            deadline,
        )
        .map_err(abort_error)?;
        Ok((bundle.module, gf))
    }

    /// Scores candidate token-id sequences for one `(target, group)`
    /// signature: the model's log-probability of emitting each candidate
    /// given the exact signature feature vector generation would decode
    /// from (the same frame the cache key covers). Returns one logprob per
    /// candidate, in order.
    ///
    /// When the replica routes decode through a batching backend, all
    /// candidates are scored **concurrently** — each joins the running
    /// batch at a token boundary, so one request's candidates amortize
    /// weight reads against each other and against other requests. Without
    /// a backend, candidates are scored sequentially on the replica with a
    /// deadline check between candidates (matching replica-mode generate,
    /// which enforces deadlines at dispatch boundaries).
    ///
    /// # Errors
    /// [`ErrorKind::UnknownTarget`] / [`ErrorKind::UnknownGroup`] as in
    /// [`Engine::generate_with`]; [`ErrorKind::BadRequest`] for an empty,
    /// over-long, or out-of-vocabulary candidate;
    /// [`ErrorKind::DeadlineExceeded`] / [`ErrorKind::Internal`] as in
    /// [`Engine::try_generate_with`].
    pub fn try_score_with(
        &self,
        model: &mut CodeBe,
        target: &str,
        group: &str,
        candidates: &[Vec<usize>],
        deadline: Option<Instant>,
    ) -> Result<Vec<f32>, EngineError> {
        let ctx = self.target_ctx(target)?;
        let bundle = self.bundle(group)?;
        let vocab_len = self.vega.model().vocab.len();
        let max_out = self.vega.model().max_len().saturating_sub(2);
        for (i, cand) in candidates.iter().enumerate() {
            if cand.is_empty() || cand.len() > max_out {
                return Err(EngineError {
                    kind: ErrorKind::BadRequest,
                    msg: format!(
                        "candidate {i}: length must be 1..={max_out} tokens, got {}",
                        cand.len()
                    ),
                });
            }
            if let Some(&id) = cand.iter().find(|&&id| id >= vocab_len) {
                return Err(EngineError {
                    kind: ErrorKind::BadRequest,
                    msg: format!(
                        "candidate {i}: token id {id} out of vocabulary (size {vocab_len})"
                    ),
                });
            }
        }
        let sig_input = signature_feature_input(
            &self.vega.model().vocab,
            target,
            &bundle.template,
            &bundle.features,
            &ctx.ix,
            &self.vega.catalog,
            self.vega.max_input_len(),
        );
        if let Some(handle) = model.backend_handle() {
            std::thread::scope(|scope| {
                let joins: Vec<_> = candidates
                    .iter()
                    .map(|cand| {
                        let handle = handle.clone();
                        let sig = &sig_input;
                        scope.spawn(move || handle.backend().sequence_logprob(sig, cand, deadline))
                    })
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("score worker panicked"))
                    .collect::<Result<Vec<f32>, DecodeAbort>>()
            })
            .map_err(abort_error)
        } else {
            let mut scores = Vec::with_capacity(candidates.len());
            for cand in candidates {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(abort_error(DecodeAbort::Expired));
                    }
                }
                scores.push(
                    model
                        .try_sequence_logprob(&sig_input, cand, deadline)
                        .map_err(abort_error)?,
                );
            }
            Ok(scores)
        }
    }

    /// Generates one function on a one-off replica (the reference path the
    /// loadgen verifier compares server responses against).
    ///
    /// # Errors
    /// See [`Engine::generate_with`].
    pub fn generate(
        &self,
        target: &str,
        group: &str,
    ) -> Result<(Module, GeneratedFunction), EngineError> {
        let mut replica = self.replica();
        self.generate_with(&mut replica, target, group)
    }
}
