//! A minimal blocking client for the line-delimited JSON protocol, shared by
//! `vega-loadgen` and the integration tests.
//!
//! Transport failures are expected under chaos plans (and on real networks):
//! [`Client::connect_with_retry`] survives a listener that is not up yet
//! (the classic `ECONNREFUSED` startup race), and
//! [`Client::request_with_retry`] survives dropped connections and malformed
//! frames by reconnecting and resending. Backoff between attempts is
//! exponential with *deterministic* capped jitter ([`RetryPolicy`]) — two
//! runs with the same policy wait the same schedule, so chaos tests stay
//! reproducible. Retrying a generate request is safe: generation is
//! deterministic and cached, so a resend can only return the identical
//! bytes.
//!
//! With [`Client::set_tracer`] the client also mints one deterministic
//! [`TraceCtx`] per logical generate request and sends it on the wire; the
//! server adopts it, stamps its spans and flight-recorder records with it,
//! and echoes it back beside a per-stage `timing` breakdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vega_obs::json::Json;
use vega_obs::{TraceCtx, TraceIdGen};

/// Deterministic exponential backoff with capped jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). 0 behaves as 1.
    pub max_attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_ms · 2^(k-1)` plus
    /// jitter, capped at [`RetryPolicy::cap_ms`].
    pub base_ms: u64,
    /// Upper bound on any single backoff (jitter included).
    pub cap_ms: u64,
    /// Jitter seed: the jitter for attempt `k` is a pure function of
    /// `(seed, k)`, so retry schedules are reproducible run to run.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_ms: 10,
            cap_ms: 500,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff to sleep before (1-based) retry `attempt`, in
    /// milliseconds: exponential in the attempt number, plus deterministic
    /// jitter of at most `base_ms`, capped at `cap_ms`.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let jitter = splitmix(self.seed ^ u64::from(attempt)) % (self.base_ms + 1);
        exp.saturating_add(jitter).min(self.cap_ms)
    }
}

/// splitmix64 — the workspace's stock deterministic mixer.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One TCP connection speaking the vega-serve protocol.
pub struct Client {
    stream: TcpStream,
    addr: String,
    buf: Vec<u8>,
    tracer: Option<TraceIdGen>,
}

impl Client {
    /// Connects. Reads are capped at ten minutes so a dead server surfaces
    /// as an error, never a hang.
    ///
    /// # Errors
    /// Propagates connect/configure errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = open(addr)?;
        Ok(Client {
            stream,
            addr: addr.to_string(),
            buf: Vec::new(),
            tracer: None,
        })
    }

    /// Enables end-to-end tracing: every subsequent `generate` request mints
    /// one [`TraceCtx`] from a deterministic splitmix64 stream over `seed`
    /// and sends it in the request's `trace` field. The server adopts it and
    /// echoes it back, so the response's `trace` names the server-side spans
    /// and flight-recorder records this request produced.
    ///
    /// Minting happens once per *logical* request — a transport retry
    /// resends the identical line, trace included — and the stream is a pure
    /// function of `(seed, mint count)`, so same-seed runs (chaos replays
    /// under `VEGA_FAULT_PLAN` included) mint identical trace-id sequences.
    pub fn set_tracer(&mut self, seed: u64) {
        self.tracer = Some(TraceIdGen::new(seed));
    }

    /// Mints the next trace context when tracing is enabled.
    fn mint_trace(&mut self) -> Option<TraceCtx> {
        self.tracer.as_mut().map(TraceIdGen::mint)
    }

    /// As [`Client::connect`], retrying refused/failed connects under
    /// `policy` — the fix for racing a server that has not bound yet.
    ///
    /// # Errors
    /// The last connect error once attempts are exhausted.
    pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> std::io::Result<Client> {
        let mut attempt = 0u32;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    attempt += 1;
                    if attempt >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(policy.backoff_ms(attempt)));
                }
            }
        }
    }

    /// Drops the current socket and dials the same address again.
    ///
    /// # Errors
    /// Propagates connect/configure errors.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        self.stream = open(&self.addr)?;
        self.buf.clear();
        Ok(())
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    /// Propagates socket errors; an EOF before a full line arrives is
    /// reported as `UnexpectedEof`.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line_bytes).trim().to_string());
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a response line arrived",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    /// Sends a request value and parses the response.
    ///
    /// # Errors
    /// Socket errors, plus `InvalidData` when the response is not JSON.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&req.render())?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })
    }

    /// As [`Client::request`], retrying transport failures under `policy`:
    /// a dropped connection is redialed and the request resent; a malformed
    /// response frame is discarded and the request resent on the same
    /// connection. Valid *error responses* (`overloaded`, …) are returned,
    /// not retried — only the transport is retried, never server decisions.
    ///
    /// Each failed-then-recovered attempt reports one `serve.conn` recovery
    /// to `vega-fault`, so chaos traces can match injected drop/corrupt
    /// faults against client-side recoveries.
    ///
    /// # Errors
    /// The last transport error once attempts are exhausted.
    pub fn request_with_retry(
        &mut self,
        req: &Json,
        policy: &RetryPolicy,
    ) -> std::io::Result<Json> {
        let mut failures = 0u32;
        loop {
            match self.request(req) {
                Ok(v) => {
                    vega_fault::recovered_n(vega_fault::sites::SERVE_CONN, u64::from(failures));
                    return Ok(v);
                }
                Err(e) => {
                    failures += 1;
                    if failures >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(policy.backoff_ms(failures)));
                    if e.kind() == std::io::ErrorKind::InvalidData {
                        // Malformed frame: the connection itself is fine.
                        continue;
                    }
                    // Dropped/reset connection: redial (with connect retry,
                    // in case the drop raced the accept loop).
                    if let Err(redial) = self.reconnect() {
                        if failures + 1 >= policy.max_attempts.max(1) {
                            return Err(redial);
                        }
                    }
                }
            }
        }
    }

    /// Convenience: a `generate` request (traced when
    /// [`Client::set_tracer`] was called).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn generate(
        &mut self,
        target: &str,
        group: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let trace = self.mint_trace();
        self.request(&generate_request(target, group, deadline_ms, trace))
    }

    /// [`Client::generate`] with transport retry. The trace context is
    /// minted once, before the retry loop: every resend of this logical
    /// request carries the identical trace id.
    ///
    /// # Errors
    /// See [`Client::request_with_retry`].
    pub fn generate_with_retry(
        &mut self,
        target: &str,
        group: &str,
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> std::io::Result<Json> {
        let trace = self.mint_trace();
        self.request_with_retry(&generate_request(target, group, deadline_ms, trace), policy)
    }

    /// Convenience: a `score` request (traced when [`Client::set_tracer`]
    /// was called) — ranks candidate token-id sequences against one
    /// `(target, group)` signature; the response's `scores` array holds one
    /// logprob per candidate, in order.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn score(
        &mut self,
        target: &str,
        group: &str,
        candidates: &[Vec<usize>],
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let trace = self.mint_trace();
        self.request(&score_request(
            target,
            group,
            candidates,
            deadline_ms,
            trace,
        ))
    }

    /// [`Client::score`] with transport retry. Safe to resend: scoring is a
    /// pure function of the request and the serving model.
    ///
    /// # Errors
    /// See [`Client::request_with_retry`].
    pub fn score_with_retry(
        &mut self,
        target: &str,
        group: &str,
        candidates: &[Vec<usize>],
        deadline_ms: Option<u64>,
        policy: &RetryPolicy,
    ) -> std::io::Result<Json> {
        let trace = self.mint_trace();
        self.request_with_retry(
            &score_request(target, group, candidates, deadline_ms, trace),
            policy,
        )
    }

    /// Convenience: a `swap` request — hot-reload the serving model from the
    /// checkpoint at `path` (a path on the *server's* filesystem).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn swap(&mut self, path: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([
            ("op", Json::str("swap")),
            ("path", Json::str(path)),
        ]))
    }

    /// Convenience: a bare-`op` request (`ping`, `stats`, `shutdown`, …).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn op(&mut self, op: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::str(op))]))
    }

    /// [`Client::op`] with transport retry.
    ///
    /// # Errors
    /// See [`Client::request_with_retry`].
    pub fn op_with_retry(&mut self, op: &str, policy: &RetryPolicy) -> std::io::Result<Json> {
        self.request_with_retry(&Json::obj([("op", Json::str(op))]), policy)
    }
}

fn open(addr: &str) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(600)))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

fn generate_request(
    target: &str,
    group: &str,
    deadline_ms: Option<u64>,
    trace: Option<TraceCtx>,
) -> Json {
    let mut fields = vec![
        ("op", Json::str("generate")),
        ("target", Json::str(target)),
        ("group", Json::str(group)),
    ];
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms", Json::num_u64(d)));
    }
    if let Some(t) = trace {
        fields.push(("trace", Json::str(t.render())));
    }
    Json::obj(fields)
}

fn score_request(
    target: &str,
    group: &str,
    candidates: &[Vec<usize>],
    deadline_ms: Option<u64>,
    trace: Option<TraceCtx>,
) -> Json {
    let cands = candidates
        .iter()
        .map(|c| Json::Arr(c.iter().map(|&id| Json::num_usize(id)).collect()))
        .collect();
    let mut fields = vec![
        ("op", Json::str("score")),
        ("target", Json::str(target)),
        ("group", Json::str(group)),
        ("candidates", Json::Arr(cands)),
    ];
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms", Json::num_u64(d)));
    }
    if let Some(t) = trace {
        fields.push(("trace", Json::str(t.render())));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_ms: 10,
            cap_ms: 200,
            seed: 42,
        };
        let a: Vec<u64> = (1..=8).map(|k| p.backoff_ms(k)).collect();
        let b: Vec<u64> = (1..=8).map(|k| p.backoff_ms(k)).collect();
        assert_eq!(a, b, "same policy, same schedule");
        // Exponential shape until the cap, then flat at the cap.
        assert!(a[0] >= 10 && a[0] <= 20);
        assert!(a[1] >= 20 && a[1] <= 30);
        assert!(a.iter().all(|&ms| ms <= 200));
        assert_eq!(a[7], 200, "large attempts saturate at cap_ms");
        // A different seed shifts jitter but stays within bounds.
        let q = RetryPolicy { seed: 43, ..p };
        assert!((1..=4).all(|k| q.backoff_ms(k) <= 200));
    }

    #[test]
    fn connect_retry_gives_up_with_the_connect_error() {
        // Nothing listens on this port (reserved, bound-then-dropped).
        let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = sock.local_addr().unwrap().to_string();
        drop(sock);
        let policy = RetryPolicy {
            max_attempts: 3,
            base_ms: 1,
            cap_ms: 2,
            seed: 0,
        };
        let t0 = std::time::Instant::now();
        assert!(Client::connect_with_retry(&addr, &policy).is_err());
        assert!(t0.elapsed() < Duration::from_secs(5), "bounded retries");
    }
}
