//! A minimal blocking client for the line-delimited JSON protocol, shared by
//! `vega-loadgen` and the integration tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use vega_obs::json::Json;

/// One TCP connection speaking the vega-serve protocol.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects. Reads are capped at ten minutes so a dead server surfaces
    /// as an error, never a hang.
    ///
    /// # Errors
    /// Propagates connect/configure errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one request line and reads one response line.
    ///
    /// # Errors
    /// Propagates socket errors; an EOF before a full line arrives is
    /// reported as `UnexpectedEof`.
    pub fn request_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line_bytes: Vec<u8> = self.buf.drain(..=pos).collect();
                return Ok(String::from_utf8_lossy(&line_bytes).trim().to_string());
            }
            match self.stream.read(&mut chunk)? {
                0 => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "connection closed before a response line arrived",
                    ))
                }
                n => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    /// Sends a request value and parses the response.
    ///
    /// # Errors
    /// Socket errors, plus `InvalidData` when the response is not JSON.
    pub fn request(&mut self, req: &Json) -> std::io::Result<Json> {
        let line = self.request_raw(&req.render())?;
        Json::parse(&line).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response line: {e}"),
            )
        })
    }

    /// Convenience: a `generate` request.
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn generate(
        &mut self,
        target: &str,
        group: &str,
        deadline_ms: Option<u64>,
    ) -> std::io::Result<Json> {
        let mut fields = vec![
            ("op", Json::str("generate")),
            ("target", Json::str(target)),
            ("group", Json::str(group)),
        ];
        if let Some(d) = deadline_ms {
            fields.push(("deadline_ms", Json::num_u64(d)));
        }
        self.request(&Json::obj(fields))
    }

    /// Convenience: a bare-`op` request (`ping`, `stats`, `shutdown`, …).
    ///
    /// # Errors
    /// See [`Client::request`].
    pub fn op(&mut self, op: &str) -> std::io::Result<Json> {
        self.request(&Json::obj([("op", Json::str(op))]))
    }
}
