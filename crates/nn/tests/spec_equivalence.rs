//! Speculative-decoding exactness suite.
//!
//! `speculative_greedy` promises a token stream **bit-identical** to plain
//! `Seq2Seq::greedy` — the draft model only changes how much verifier work is
//! wasted, never what is emitted. These tests pin that promise across
//! speculation depths (k ∈ {1, 2, 4, 8}), trained (accept-heavy) and
//! untrained (mismatch-heavy) model pairs, EOS / degenerate-tail / budget-cap
//! exits, and every kernel mode this CPU can run. They also pin the two
//! primitives speculation is built on: `DecodeState::step_many` must be
//! bit-identical to the same tokens fed through sequential `step` calls, and
//! `DecodeState::truncate` must roll the KV caches back to a state from which
//! re-fed tokens produce the original bits. The dot-form logits projection
//! (`VEGA_DOT_FORM`) is pinned on both sides of its switch.
//!
//! `ci.sh` runs this suite at `VEGA_THREADS=1` and `4` in the kernel matrix.
//! Kernel mode and dot-form policy are process-global, so mode-switching
//! tests serialize through `MODE_LOCK` and restore `Auto` on exit.

use std::sync::Mutex;
use vega_nn::kernel::{self, avx2_available, DotForm, KernelMode};
use vega_nn::{speculative_greedy, GruConfig, GruSeq2Seq, Seq2Seq, Transformer, TransformerConfig};

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn available_modes() -> Vec<KernelMode> {
    if avx2_available() {
        vec![KernelMode::Scalar, KernelMode::Avx2]
    } else {
        eprintln!("spec_equivalence: CPU lacks AVX2; scalar mode only");
        vec![KernelMode::Scalar]
    }
}

/// Deterministic pseudo-random token ids in `[lo, hi)` (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

fn copy_pairs() -> Vec<(Vec<usize>, Vec<usize>)> {
    vec![
        (vec![2, 3, 4], vec![2, 3, 4]),
        (vec![5, 6], vec![5, 6]),
        (vec![7, 8, 2], vec![7, 8, 2]),
        (vec![4, 4, 5], vec![4, 4, 5]),
    ]
}

fn trained_copy_transformer() -> Transformer {
    let mut t = Transformer::new(TransformerConfig::tiny(10));
    let loss = vega_nn::train_until(&mut t, &copy_pairs(), 0, 1, 300, 3e-3, 0.05);
    assert!(loss < 0.3, "copy task did not converge: {loss}");
    t
}

/// A GRU taught the same copy task, so drafts mostly match the verifier.
fn trained_copy_draft() -> GruSeq2Seq {
    let mut g = GruSeq2Seq::new(GruConfig::tiny(10));
    let loss = vega_nn::train_until(&mut g, &copy_pairs(), 0, 1, 500, 5e-3, 0.05);
    assert!(loss < 0.5, "draft copy task did not converge: {loss}");
    g
}

/// Speculative output must equal plain greedy for every k, and the report
/// counters must be internally consistent.
fn assert_spec_matches(t: &mut Transformer, draft: &GruSeq2Seq, src: &[usize], max_len: usize) {
    let plain = t.greedy(src, 0, 1, max_len);
    for k in [1usize, 2, 4, 8] {
        let (spec, report) = speculative_greedy(t, draft, src, 0, 1, max_len, k);
        assert_eq!(
            spec, plain,
            "speculative (k={k}) diverged from plain greedy for src {src:?}"
        );
        assert_eq!(report.tokens as usize, spec.len(), "token count (k={k})");
        assert!(
            report.accepted <= report.drafted,
            "accepted {} > drafted {} (k={k})",
            report.accepted,
            report.drafted
        );
        assert!(report.rounds >= 1 || plain.is_empty());
        // Each round drafts at most k tokens.
        assert!(report.drafted <= report.rounds * k as u64);
    }
}

// ---------------------------------------------------------------------------
// step_many / truncate primitives
// ---------------------------------------------------------------------------

#[test]
fn step_many_matches_single_steps_bitwise() {
    let t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(301, 24, 2, 64);
    let feed = tokens(302, 64, 2, 64);
    // Reference: one token at a time.
    let mut single = t.begin_decode(&src);
    let mut want: Vec<u32> = Vec::new();
    for &tok in &feed {
        want.extend(single.step(tok).iter().map(|v| v.to_bits()));
    }
    // Same tokens through step_many in assorted chunk sizes.
    for chunks in [
        vec![1usize; 64],
        vec![2; 32],
        vec![4; 16],
        vec![8; 8],
        vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 9],
    ] {
        assert_eq!(chunks.iter().sum::<usize>(), feed.len());
        let mut st = t.begin_decode(&src);
        let mut got: Vec<u32> = Vec::new();
        let mut off = 0;
        for &c in &chunks {
            got.extend(
                st.step_many(&feed[off..off + c])
                    .iter()
                    .map(|v| v.to_bits()),
            );
            off += c;
        }
        assert_eq!(st.len(), feed.len());
        assert_eq!(got, want, "step_many diverged for chunking {chunks:?}");
    }
}

#[test]
fn truncate_then_refeed_is_bitwise_identical() {
    let t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(311, 16, 2, 64);
    let feed = tokens(312, 40, 2, 64);
    let mut reference = t.begin_decode(&src);
    let mut want: Vec<u32> = Vec::new();
    for &tok in &feed {
        want.extend(reference.step(tok).iter().map(|v| v.to_bits()));
    }
    // Speculate 8 tokens past position 16, roll back, then replay the real
    // continuation — the replayed rows must carry the original bits.
    let mut st = t.begin_decode(&src);
    for &tok in &feed[..16] {
        st.step(tok);
    }
    let bogus = tokens(999, 8, 2, 64);
    st.step_many(&bogus);
    assert_eq!(st.len(), 24);
    st.truncate(16);
    assert_eq!(st.len(), 16);
    let vocab = 64;
    let rows = st.step_many(&feed[16..]);
    for (r, chunk) in rows.chunks(vocab).enumerate() {
        for (c, &v) in chunk.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                want[(16 + r) * vocab + c],
                "refed row {r} col {c} diverged after truncate"
            );
        }
    }
}

#[test]
fn gru_save_restore_roundtrips_bitwise() {
    let g = GruSeq2Seq::new(GruConfig::small(48));
    let src = tokens(321, 10, 2, 48);
    let feed = tokens(322, 12, 2, 48);
    let mut st = g.begin_decode(&src);
    for &tok in &feed[..6] {
        st.step(tok);
    }
    let snap = st.save();
    let want: Vec<u32> = st.step(feed[6]).iter().map(|v| v.to_bits()).collect();
    // Wander off, restore, and replay: bits must match.
    st.step(feed[7]);
    st.step(feed[8]);
    st.restore(&snap);
    let got: Vec<u32> = st.step(feed[6]).iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, want, "GRU restore did not roll the hidden state back");
}

// ---------------------------------------------------------------------------
// speculative_greedy == greedy
// ---------------------------------------------------------------------------

#[test]
fn speculative_matches_greedy_trained_pair() {
    let mut t = trained_copy_transformer();
    let draft = trained_copy_draft();
    for src in [vec![5usize, 6], vec![2, 3, 4], vec![7, 8, 2], vec![4, 4, 5]] {
        assert_spec_matches(&mut t, &draft, &src, 10);
    }
    // A trained pair should actually accept drafts (the speedup exists).
    let (_, report) = speculative_greedy(&t, &draft, &[2, 3, 4], 0, 1, 10, 4);
    assert!(
        report.accepted > 0,
        "trained draft never matched the verifier: {report:?}"
    );
}

#[test]
fn speculative_matches_greedy_untrained_mismatch_heavy() {
    // Untrained, differently-seeded models: drafts rarely match, so every
    // round exercises the rollback path.
    let mut t = Transformer::new(TransformerConfig::small(64));
    let draft = GruSeq2Seq::new(GruConfig::small(64));
    for seed in 0..4u64 {
        let src = tokens(seed + 330, 17, 2, 64);
        assert_spec_matches(&mut t, &draft, &src, 48);
    }
}

#[test]
fn speculative_matches_greedy_degenerate_exit() {
    // The verifier emits an unbounded run of 3s; looks_degenerate must cut
    // speculation at the same point plain greedy stops.
    let mut t = Transformer::new(TransformerConfig::tiny(10));
    let pairs = vec![(vec![2usize], vec![3usize; 10])];
    let _ = vega_nn::train_until(&mut t, &pairs, 0, 1, 250, 3e-3, 0.05);
    let draft = trained_copy_draft();
    assert_spec_matches(&mut t, &draft, &[2], 20);
}

#[test]
fn speculative_matches_greedy_tight_caps() {
    // max_len at and below the speculation depth: the j = k.min(remaining-1)
    // clamp must keep emissions inside the budget.
    let mut t = Transformer::new(TransformerConfig::small(64));
    let draft = GruSeq2Seq::new(GruConfig::small(64));
    let src = tokens(350, 9, 2, 64);
    for max_len in [1usize, 2, 3, 5, 9] {
        let plain = t.greedy(&src, 0, 1, max_len);
        for k in [1usize, 4, 8] {
            let (spec, report) = speculative_greedy(&t, &draft, &src, 0, 1, max_len, k);
            assert_eq!(spec, plain, "cap {max_len} k={k}");
            assert!(
                spec.len() < max_len.max(1),
                "budget overrun at cap {max_len}"
            );
            assert_eq!(report.tokens as usize, spec.len());
        }
    }
    // max_len beyond cfg.max_len clamps like plain greedy too.
    let plain = t.greedy(&src, 0, 1, 10_000);
    let (spec, _) = speculative_greedy(&t, &draft, &src, 0, 1, 10_000, 4);
    assert_eq!(spec, plain);
}

#[test]
fn speculative_k_zero_acts_like_k_one() {
    let mut t = trained_copy_transformer();
    let draft = trained_copy_draft();
    let plain = t.greedy(&[5, 6], 0, 1, 10);
    let (s0, r0) = speculative_greedy(&t, &draft, &[5, 6], 0, 1, 10, 0);
    let (s1, r1) = speculative_greedy(&t, &draft, &[5, 6], 0, 1, 10, 1);
    assert_eq!(s0, plain);
    assert_eq!(s0, s1);
    assert_eq!(r0, r1);
}

// ---------------------------------------------------------------------------
// kernel modes and the dot-form switch
// ---------------------------------------------------------------------------

#[test]
fn speculative_matches_greedy_in_every_kernel_mode() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in available_modes() {
        kernel::set_mode(mode);
        let mut t = Transformer::new(TransformerConfig::small(48));
        let draft = GruSeq2Seq::new(GruConfig::small(48));
        for seed in 0..2u64 {
            let src = tokens(seed + 360, 12, 2, 48);
            let plain = t.greedy(&src, 0, 1, 32);
            for k in [2usize, 4] {
                let (spec, _) = speculative_greedy(&t, &draft, &src, 0, 1, 32, k);
                assert_eq!(spec, plain, "mode {} k={k} seed {seed}", mode.name());
            }
        }
    }
    kernel::set_mode(KernelMode::Auto);
}

#[test]
fn dot_form_on_and_off_both_match_graph_reference() {
    // Both sides of the dot-form switch must keep fast-path == graph
    // bit-identity: the fast decode and the graph twins branch on the same
    // predicate, whichever way it points.
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for policy in [DotForm::On, DotForm::Off] {
        kernel::set_dot_form(policy);
        let mut t = Transformer::new(TransformerConfig::small(48));
        let src = tokens(371, 14, 2, 48);
        let feed = tokens(372, 24, 2, 48);
        let graph = t.logits_rows_graph(&src, &feed);
        let mut st = t.begin_decode(&src);
        for (r, &tok) in feed.iter().enumerate() {
            for (c, &v) in st.step(tok).iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    graph.at(r, c).to_bits(),
                    "dot-form {policy:?}: logit bits diverged at row {r} col {c}"
                );
            }
        }
        let fast = t.greedy(&src, 0, 1, 24);
        let reference = t.greedy_graph(&src, 0, 1, 24);
        assert_eq!(fast, reference, "dot-form {policy:?}: greedy diverged");

        let mut g = GruSeq2Seq::new(GruConfig::small(48));
        assert_eq!(
            g.greedy(&src, 0, 1, 24),
            g.greedy_graph(&src, 0, 1, 24),
            "dot-form {policy:?}: GRU greedy diverged"
        );
    }
    kernel::set_dot_form(DotForm::Auto);
}

#[test]
fn speculative_is_exact_under_both_dot_forms() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for policy in [DotForm::On, DotForm::Off] {
        kernel::set_dot_form(policy);
        let mut t = Transformer::new(TransformerConfig::small(48));
        let draft = GruSeq2Seq::new(GruConfig::small(48));
        let src = tokens(381, 11, 2, 48);
        let plain = t.greedy(&src, 0, 1, 32);
        let (spec, _) = speculative_greedy(&t, &draft, &src, 0, 1, 32, 4);
        assert_eq!(spec, plain, "dot-form {policy:?}: speculative diverged");
    }
    kernel::set_dot_form(DotForm::Auto);
}

// ---------------------------------------------------------------------------
// forced-scoring prefill (step_many replaces the token-at-a-time loop)
// ---------------------------------------------------------------------------

#[test]
fn forced_logprob_prefill_matches_stepwise_loop_bitwise() {
    let mut t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(391, 18, 2, 64);
    let tgt_in = tokens(392, 30, 2, 64);
    let tgt_out = tokens(393, 30, 2, 64);
    let fast = t.forced_logprob(&src, &tgt_in, &tgt_out);
    // Reference: the pre-prefill implementation, one step per target token.
    let mut st = t.begin_decode(&src);
    let mut lp = 0.0f32;
    let mut probs = vec![0.0f32; 64];
    for (&from, &to) in tgt_in.iter().zip(tgt_out.iter()) {
        probs.copy_from_slice(st.step(from));
        vega_nn::decode::softmax_row(&mut probs);
        lp += probs[to].max(1e-12).ln();
    }
    assert_eq!(
        fast.to_bits(),
        lp.to_bits(),
        "prefilled forced_logprob diverged from the stepwise loop"
    );
}
