//! Per-mode determinism: same seed + same kernel mode → bit-identical
//! outputs, for every mode this CPU can run.
//!
//! The kernel tier's contract (see `crates/nn/src/kernel.rs`) is that each
//! mode is *individually* deterministic — reruns from the same weight seed
//! produce the same token streams and the same logprob **bits** — while
//! different modes may differ in low bits. These tests pin the first half;
//! `kernel_conformance.rs` pins the cross-mode tolerance. They also re-check
//! the decode-vs-graph bit-identity *inside* each mode, which is the
//! invariant AVX2 could most plausibly break (it is why `softmax_row`'s
//! exp-sum stays sequential in every mode).
//!
//! The kernel mode is process-global, so every test here serializes through
//! `MODE_LOCK` and restores `Auto` on exit. On CPUs without AVX2 only the
//! scalar mode runs (with a logged notice).

use std::sync::Mutex;
use vega_nn::kernel::{self, avx2_available, KernelMode};
use vega_nn::{GruConfig, GruSeq2Seq, Seq2Seq, Transformer, TransformerConfig};

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn available_modes() -> Vec<KernelMode> {
    if avx2_available() {
        vec![KernelMode::Scalar, KernelMode::Avx2]
    } else {
        eprintln!("kernel_determinism: CPU lacks AVX2; scalar mode only");
        vec![KernelMode::Scalar]
    }
}

/// Deterministic pseudo-random token ids in `[lo, hi)` (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

/// One full generation under the current mode: greedy stream, teacher-forced
/// logprob bits, and the raw logits bits of a short forced decode.
fn transformer_trace() -> (Vec<usize>, u32, Vec<u32>) {
    let mut t = Transformer::new(TransformerConfig::small(48));
    let src = tokens(21, 12, 2, 48);
    let tgt = tokens(22, 8, 2, 48);
    let stream = t.greedy(&src, 0, 1, 24);
    let lp = t
        .forced_logprob(&src, &tgt[..tgt.len() - 1], &tgt[1..])
        .to_bits();
    let mut st = t.begin_decode(&src);
    let mut logit_bits = Vec::new();
    for &tok in &tgt {
        logit_bits.extend(st.step(tok).iter().map(|v| v.to_bits()));
    }
    (stream, lp, logit_bits)
}

fn gru_trace() -> (Vec<usize>, u32) {
    let mut g = GruSeq2Seq::new(GruConfig::tiny(12));
    let src = tokens(31, 6, 2, 12);
    let tgt = tokens(32, 5, 2, 12);
    let stream = g.greedy(&src, 0, 1, 12);
    let lp = g
        .forced_logprob(&src, &tgt[..tgt.len() - 1], &tgt[1..])
        .to_bits();
    (stream, lp)
}

#[test]
fn reruns_are_bit_identical_within_each_mode() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in available_modes() {
        kernel::set_mode(mode);
        let (s1, lp1, lb1) = transformer_trace();
        let (s2, lp2, lb2) = transformer_trace();
        assert_eq!(s1, s2, "mode {}: greedy stream drifted", mode.name());
        assert_eq!(lp1, lp2, "mode {}: logprob bits drifted", mode.name());
        assert_eq!(lb1, lb2, "mode {}: logits bits drifted", mode.name());
        let (g1, glp1) = gru_trace();
        let (g2, glp2) = gru_trace();
        assert_eq!(g1, g2, "mode {}: GRU stream drifted", mode.name());
        assert_eq!(glp1, glp2, "mode {}: GRU logprob bits drifted", mode.name());
    }
    kernel::set_mode(KernelMode::Auto);
}

#[test]
fn decode_matches_graph_within_each_mode() {
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in available_modes() {
        kernel::set_mode(mode);
        let mut t = Transformer::new(TransformerConfig::small(48));
        for seed in 0..3u64 {
            let src = tokens(seed, 9, 2, 48);
            let fast = t.greedy(&src, 0, 1, 24);
            let graph = t.greedy_graph(&src, 0, 1, 24);
            assert_eq!(
                fast,
                graph,
                "mode {}: decode diverged from graph for seed {seed}",
                mode.name()
            );
        }
    }
    kernel::set_mode(KernelMode::Auto);
}

#[test]
fn batched_decode_matches_single_within_each_mode() {
    use vega_nn::BatchDecode;
    let _guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for mode in available_modes() {
        kernel::set_mode(mode);
        let t = Transformer::new(TransformerConfig::tiny(10));
        let srcs: [&[usize]; 3] = [&[2, 3, 4], &[4, 2], &[3]];
        let mut batch = t.begin_batch_decode(4);
        let mut singles: Vec<_> = srcs.iter().map(|s| t.begin_decode(s)).collect();
        let slots: Vec<usize> = srcs.iter().map(|s| batch.join(s).unwrap()).collect();
        for step in 0..4 {
            let feeds: Vec<(usize, usize)> = slots.iter().map(|&s| (s, step + 1)).collect();
            batch.step(&feeds);
            for (i, st) in singles.iter_mut().enumerate() {
                let want = st.step(step + 1);
                let got = batch.logits(slots[i]);
                for (c, (x, y)) in got.iter().zip(want).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "mode {}: batch/single logits diverged, slot {i} col {c}",
                        mode.name()
                    );
                }
            }
        }
    }
    kernel::set_mode(KernelMode::Auto);
}
