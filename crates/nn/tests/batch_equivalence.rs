//! Batched-vs-single decode equivalence.
//!
//! The continuous-batching engine (`BatchDecodeState` / `GruBatchDecodeState`)
//! must be **bit-identical** per slot to the single-session incremental path
//! (`DecodeState` / `GruDecodeState`), independent of batch size and of which
//! other sessions share the batch: the serve cache keys and the loadgen
//! verifier assume generation is a pure function of (weights, input). Every
//! test here runs a *mirror* single-session decode next to each batch slot
//! and compares full logits rows by `to_bits` after every step — batch sizes
//! 1/2/4/7, staggered join/leave with slot reuse, one-token sessions beside
//! max-length sessions, both model families, plus a greedy lockstep
//! simulation checked against `Seq2Seq::greedy` token streams.
//! `ci.sh` runs this suite at `VEGA_THREADS=1` and `4`.

use vega_nn::{
    argmax, looks_degenerate, BatchDecode, DecodeState, GruConfig, GruDecodeState, GruSeq2Seq,
    Seq2Seq, Transformer, TransformerConfig,
};

/// Deterministic pseudo-random token ids in `[lo, hi)` (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

fn assert_rows_bitwise(batch_row: &[f32], mirror_row: &[f32], what: &str) {
    assert_eq!(batch_row.len(), mirror_row.len(), "{what}: row length");
    for (c, (&b, &m)) in batch_row.iter().zip(mirror_row.iter()).enumerate() {
        assert_eq!(
            b.to_bits(),
            m.to_bits(),
            "{what}: logit bits diverged at col {c} ({b} vs {m})"
        );
    }
}

/// One live session: its batch slot and a mirror single-session decode fed
/// the identical token sequence.
struct TfSession<'m> {
    slot: usize,
    mirror: DecodeState<'m>,
    feed: Vec<usize>,
    pos: usize,
}

struct GruSession<'m> {
    slot: usize,
    mirror: GruDecodeState<'m>,
    feed: Vec<usize>,
    pos: usize,
}

/// Steps every live transformer session once (batch + mirror) and compares
/// each slot's logits row bitwise. Callers retire sessions whose feed ran
/// out before the next round.
fn tf_step_round(batch: &mut dyn BatchDecode, live: &mut [TfSession<'_>], round: usize) {
    if live.is_empty() {
        return;
    }
    let feeds: Vec<(usize, usize)> = live.iter().map(|s| (s.slot, s.feed[s.pos])).collect();
    batch.step(&feeds);
    for s in live.iter_mut() {
        let row = s.mirror.step(s.feed[s.pos]);
        assert_rows_bitwise(
            batch.logits(s.slot),
            row,
            &format!("round {round}, slot {}", s.slot),
        );
        s.pos += 1;
    }
}

fn gru_step_round(batch: &mut dyn BatchDecode, live: &mut [GruSession<'_>], round: usize) {
    if live.is_empty() {
        return;
    }
    let feeds: Vec<(usize, usize)> = live.iter().map(|s| (s.slot, s.feed[s.pos])).collect();
    batch.step(&feeds);
    for s in live.iter_mut() {
        let row = s.mirror.step(s.feed[s.pos]);
        assert_rows_bitwise(
            batch.logits(s.slot),
            row,
            &format!("gru round {round}, slot {}", s.slot),
        );
        s.pos += 1;
    }
}

#[test]
fn transformer_lockstep_matches_single_at_batch_sizes_1_2_4_7() {
    let model = Transformer::new(TransformerConfig::small(64));
    for n in [1usize, 2, 4, 7] {
        let mut batch = model.begin_batch_decode(n);
        let mut live: Vec<TfSession<'_>> = (0..n)
            .map(|i| {
                // Varying source lengths: every slot sees different
                // cross-attention shapes in the same batch.
                let src = tokens(100 + i as u64, 5 + 3 * i, 2, 64);
                let slot = batch.join(&src).expect("capacity holds all sessions");
                TfSession {
                    slot,
                    mirror: model.begin_decode(&src),
                    feed: tokens(200 + i as u64, 20, 2, 64),
                    pos: 0,
                }
            })
            .collect();
        assert_eq!(batch.active(), n);
        assert_eq!(batch.join(&[2, 3]), None, "batch of {n} must be full");
        for round in 0..20 {
            tf_step_round(&mut batch, &mut live, round);
        }
    }
}

#[test]
fn gru_lockstep_matches_single_at_batch_sizes_1_2_4_7() {
    let model = GruSeq2Seq::new(GruConfig::small(64));
    for n in [1usize, 2, 4, 7] {
        let mut batch = model.begin_batch_decode(n);
        let mut live: Vec<GruSession<'_>> = (0..n)
            .map(|i| {
                let src = tokens(300 + i as u64, 4 + 2 * i, 2, 64);
                let slot = batch.join(&src).expect("capacity holds all sessions");
                GruSession {
                    slot,
                    mirror: model.begin_decode(&src),
                    feed: tokens(400 + i as u64, 20, 2, 64),
                    pos: 0,
                }
            })
            .collect();
        for round in 0..20 {
            gru_step_round(&mut batch, &mut live, round);
        }
    }
}

/// Sessions join and leave mid-flight, slots are reused by later sessions,
/// and every row still matches the session's own single-path decode — the
/// bits of one slot must not depend on who else is in the batch.
fn tf_join<'m>(
    model: &'m Transformer,
    batch: &mut dyn BatchDecode,
    live: &mut Vec<TfSession<'m>>,
    seed: u64,
    src_len: usize,
    feed_len: usize,
) {
    let src = tokens(seed, src_len, 2, 64);
    let slot = batch.join(&src).expect("a slot is free");
    live.push(TfSession {
        slot,
        mirror: model.begin_decode(&src),
        feed: tokens(seed ^ 0xFEED, feed_len, 2, 64),
        pos: 0,
    });
}

fn gru_join<'m>(
    model: &'m GruSeq2Seq,
    batch: &mut dyn BatchDecode,
    live: &mut Vec<GruSession<'m>>,
    seed: u64,
    feed_len: usize,
) {
    let src = tokens(seed, 5, 2, 64);
    let slot = batch.join(&src).expect("a slot is free");
    live.push(GruSession {
        slot,
        mirror: model.begin_decode(&src),
        feed: tokens(seed ^ 0xBEEF, feed_len, 2, 64),
        pos: 0,
    });
}

#[test]
fn transformer_staggered_join_leave_reuses_slots_bit_identically() {
    let model = Transformer::new(TransformerConfig::small(64));
    let mut batch = model.begin_batch_decode(3);
    let mut live: Vec<TfSession<'_>> = Vec::new();
    let mut round = 0usize;

    // A and B start; C joins two rounds in; B (short) retires and D takes
    // its slot while A is still mid-stream; E replaces C later.
    tf_join(&model, &mut batch, &mut live, 1, 6, 18);
    tf_join(&model, &mut batch, &mut live, 2, 3, 6);
    for _ in 0..2 {
        tf_step_round(&mut batch, &mut live, round);
        round += 1;
    }
    tf_join(&model, &mut batch, &mut live, 3, 9, 9);
    for _ in 0..4 {
        tf_step_round(&mut batch, &mut live, round);
        round += 1;
    }
    // B's feed (6 tokens) is exhausted: retire it in the batch and reuse
    // its slot for D.
    let b_ix = live
        .iter()
        .position(|s| s.pos >= s.feed.len())
        .expect("B ran out of feed");
    let b_slot = live[b_ix].slot;
    live.remove(b_ix);
    batch.retire(b_slot);
    tf_join(&model, &mut batch, &mut live, 4, 7, 12);
    assert!(
        live.iter().any(|s| s.slot == b_slot),
        "D must reuse B's retired slot"
    );
    for _ in 0..5 {
        tf_step_round(&mut batch, &mut live, round);
        round += 1;
    }
    // C is done; E reuses its slot with a longer source.
    let c_ix = live
        .iter()
        .position(|s| s.pos >= s.feed.len())
        .expect("C ran out of feed");
    let c_slot = live[c_ix].slot;
    live.remove(c_ix);
    batch.retire(c_slot);
    tf_join(&model, &mut batch, &mut live, 5, 11, 8);
    while !live.is_empty() {
        tf_step_round(&mut batch, &mut live, round);
        round += 1;
        live.retain(|s| {
            if s.pos < s.feed.len() {
                true
            } else {
                batch.retire(s.slot);
                false
            }
        });
    }
    assert_eq!(batch.active(), 0);
}

#[test]
fn gru_staggered_join_leave_reuses_slots_bit_identically() {
    let model = GruSeq2Seq::new(GruConfig::small(64));
    let mut batch = model.begin_batch_decode(2);
    let mut live: Vec<GruSession<'_>> = Vec::new();
    gru_join(&model, &mut batch, &mut live, 10, 12);
    gru_join(&model, &mut batch, &mut live, 11, 4);
    let mut round = 0usize;
    for _ in 0..4 {
        gru_step_round(&mut batch, &mut live, round);
        round += 1;
    }
    let done = live
        .iter()
        .position(|s| s.pos >= s.feed.len())
        .expect("short session finished");
    let freed = live[done].slot;
    live.remove(done);
    batch.retire(freed);
    gru_join(&model, &mut batch, &mut live, 12, 9);
    assert!(live.iter().any(|s| s.slot == freed), "slot must be reused");
    while !live.is_empty() {
        gru_step_round(&mut batch, &mut live, round);
        round += 1;
        live.retain(|s| {
            if s.pos < s.feed.len() {
                true
            } else {
                batch.retire(s.slot);
                false
            }
        });
    }
    assert_eq!(batch.active(), 0);
}

/// A one-token session (retired after a single step) shares a batch with a
/// session stepped all the way to the model's max length; both stay
/// bit-identical to their single-path mirrors.
#[test]
fn one_token_and_max_len_sessions_coexist() {
    let cfg = TransformerConfig::tiny(16);
    let max_len = cfg.max_len;
    let model = Transformer::new(cfg);
    let mut batch = model.begin_batch_decode(2);
    let mut live: Vec<TfSession<'_>> = vec![
        {
            let src = tokens(50, 4, 2, 16);
            TfSession {
                slot: batch.join(&src).unwrap(),
                mirror: model.begin_decode(&src),
                // `greedy` feeds at most max_len - 1 tokens (the cap counts
                // the BOS): run the long session to exactly that bound.
                feed: tokens(51, max_len - 1, 2, 16),
                pos: 0,
            }
        },
        {
            let src = tokens(52, 6, 2, 16);
            TfSession {
                slot: batch.join(&src).unwrap(),
                mirror: model.begin_decode(&src),
                feed: tokens(53, 1, 2, 16),
                pos: 0,
            }
        },
    ];
    let mut round = 0usize;
    while !live.is_empty() {
        tf_step_round(&mut batch, &mut live, round);
        round += 1;
        live.retain(|s| {
            if s.pos < s.feed.len() {
                true
            } else {
                batch.retire(s.slot);
                false
            }
        });
    }
    assert_eq!(round, max_len - 1, "long session ran to the length cap");
}

/// Drives greedy generation through a batch — argmax feedback, EOS and
/// degenerate exits, length cap — and checks the token streams against the
/// single-session `Seq2Seq::greedy` references.
fn run_greedy_batch(
    mut batch: Box<dyn BatchDecode + '_>,
    srcs: &[Vec<usize>],
    expect: &[Vec<usize>],
    bos: usize,
    eos: usize,
    cap: usize,
    label: &str,
) {
    // out[i] mirrors `greedy`'s running stream, BOS included.
    let mut outs: Vec<Vec<usize>> = srcs.iter().map(|_| vec![bos]).collect();
    let mut slots: Vec<Option<usize>> = srcs
        .iter()
        .map(|s| Some(batch.join(s).expect("capacity fits all")))
        .collect();
    while slots.iter().any(Option::is_some) {
        let feeds: Vec<(usize, usize)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|slot| (slot, *outs[i].last().unwrap())))
            .collect();
        batch.step(&feeds);
        for i in 0..srcs.len() {
            let Some(slot) = slots[i] else { continue };
            let next = argmax(batch.logits(slot)).unwrap_or(eos);
            let done = if next == eos {
                true
            } else {
                outs[i].push(next);
                looks_degenerate(&outs[i]) || outs[i].len() >= cap
            };
            if done {
                batch.retire(slot);
                slots[i] = None;
            }
        }
    }
    for (i, out) in outs.iter_mut().enumerate() {
        out.remove(0); // strip BOS, as `greedy` does
        assert_eq!(
            out, &expect[i],
            "{label} greedy stream {i} diverged from the single path"
        );
    }
}

/// Greedy generation simulated through the batch produces exactly the token
/// streams `Seq2Seq::greedy` produces one session at a time, for both
/// model families.
#[test]
fn greedy_lockstep_matches_single_session_greedy() {
    let (bos, eos) = (0usize, 1usize);
    let srcs: Vec<Vec<usize>> = (0..4)
        .map(|i| tokens(70 + i, 6 + i as usize, 2, 64))
        .collect();

    let mut tf = Transformer::new(TransformerConfig::small(64));
    let expect: Vec<Vec<usize>> = srcs.iter().map(|s| tf.greedy(s, bos, eos, 96)).collect();
    run_greedy_batch(
        Box::new(tf.begin_batch_decode(srcs.len())),
        &srcs,
        &expect,
        bos,
        eos,
        96,
        "transformer",
    );

    let mut gru = GruSeq2Seq::new(GruConfig::small(64));
    let expect: Vec<Vec<usize>> = srcs.iter().map(|s| gru.greedy(s, bos, eos, 96)).collect();
    run_greedy_batch(
        Box::new(gru.begin_batch_decode(srcs.len())),
        &srcs,
        &expect,
        bos,
        eos,
        96,
        "gru",
    );
}
