//! Kernel conformance: pins the scalar-vs-AVX2 contract from
//! `crates/nn/src/kernel.rs`.
//!
//! Two classes of property, checked over Mix64-driven randomized vectors
//! (lengths straddling 0 / 1 / K_TILE±1 / the 8- and 32-lane block widths /
//! large, with exact-zero lanes and subnormal values mixed in):
//!
//! * **Exactness** where the per-element rounding sequence is fixed across
//!   implementations: `axpy`, `fma_tile` (vectorized over the output
//!   dimension only, separate mul + add), and `max` (returns an exact input
//!   element on NaN-free data). These must agree *bit for bit*.
//! * **Tolerance** where AVX2 reorders accumulation across lanes: `dot`,
//!   `sum`, `sq_diff_sum`. Each implementation is compared against an f64
//!   reference with a bound scaled by the magnitude sum of the terms, so
//!   cancellation-heavy inputs don't produce a vacuous relative test.
//!
//! On machines without AVX2 the suite logs a notice and degenerates to
//! checking the scalar kernel against the f64 reference (so it still runs,
//! and still catches scalar regressions).
//!
//! The mode-level tests at the bottom flip the process-global kernel mode
//! with `set_mode`; they serialize through `MODE_LOCK` because the global is
//! shared by every test thread in this binary.

use std::sync::{Mutex, MutexGuard};
use vega_corpus::Mix64;
use vega_nn::kernel::{self, avx2_available, Avx2Kernel, Kernel, KernelMode, ScalarKernel, K_TILE};

/// Serializes tests that touch the process-global kernel mode.
static MODE_LOCK: Mutex<()> = Mutex::new(());

/// Acquires the mode lock (poison-tolerant: a prior panic must not cascade)
/// and returns a guard that restores `Auto` on drop.
fn mode_guard() -> (MutexGuard<'static, ()>, ModeRestore) {
    let guard = MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    (guard, ModeRestore)
}

struct ModeRestore;

impl Drop for ModeRestore {
    fn drop(&mut self) {
        kernel::set_mode(KernelMode::Auto);
    }
}

/// The AVX2 kernel, or `None` (with one logged notice) when the CPU lacks
/// AVX2 and the cross-ISA half of the suite degenerates.
fn avx2_or_notice(test: &str) -> Option<Avx2Kernel> {
    let k = Avx2Kernel::new();
    if k.is_none() {
        eprintln!("kernel_conformance::{test}: CPU lacks AVX2; cross-ISA checks skipped");
    }
    k
}

/// Vector lengths that straddle every structural boundary in the kernels:
/// empty, single, the K_TILE (= 8-lane) edge, the 32-element 4-accumulator
/// block edge, and sizes large enough to exercise all loops plus tails.
const LENGTHS: &[usize] = &[
    0,
    1,
    2,
    K_TILE - 1,
    K_TILE,
    K_TILE + 1,
    31,
    32,
    33,
    63,
    64,
    65,
    100,
    1024,
    1027,
];

/// A randomized f32 in roughly [-2, 2), with exact-zero lanes (the callers'
/// zero-skip must see real zeros) and occasional subnormal magnitudes (the
/// reductions must not trap or flush differently per ISA in ways the
/// tolerance doesn't cover).
fn gen_value(rng: &mut Mix64) -> f32 {
    match rng.below(10) {
        0 | 1 => 0.0,
        2 => {
            // Subnormal: tiny fixed scale times a small integer.
            let m = rng.range(1, 255) as f32;
            m * 1.0e-41
        }
        _ => {
            let u = rng.next_u64() as f32 / u64::MAX as f32; // [0, 1)
            (u - 0.5) * 4.0
        }
    }
}

fn gen_vec(rng: &mut Mix64, n: usize) -> Vec<f32> {
    (0..n).map(|_| gen_value(rng)).collect()
}

/// `|got - want_f64| ≤ 1e-5 · Σ|termᵢ| + 1e-12`: absolute floor for
/// near-zero results, magnitude-sum scaling so cancellation does not turn
/// the bound vacuous.
fn assert_close(got: f32, want: f64, mag: f64, what: &str) {
    let bound = 1e-5 * mag + 1e-12;
    let err = (f64::from(got) - want).abs();
    assert!(
        err <= bound,
        "{what}: got {got}, f64 reference {want}, err {err:.3e} > bound {bound:.3e}"
    );
}

#[test]
fn dot_matches_f64_reference_within_tolerance() {
    let avx2 = avx2_or_notice("dot");
    let mut rng = Mix64::keyed(0xC0DE, "conformance/dot");
    for &n in LENGTHS {
        for rep in 0..8 {
            let a = gen_vec(&mut rng, n);
            let b = gen_vec(&mut rng, n);
            let mut want = 0.0f64;
            let mut mag = 0.0f64;
            for (&x, &y) in a.iter().zip(&b) {
                let t = f64::from(x) * f64::from(y);
                want += t;
                mag += t.abs();
            }
            let s = ScalarKernel.dot(&a, &b);
            assert_close(s, want, mag, &format!("scalar dot n={n} rep={rep}"));
            if let Some(v) = &avx2 {
                let av = v.dot(&a, &b);
                assert_close(av, want, mag, &format!("avx2 dot n={n} rep={rep}"));
            }
        }
    }
    // Empty slices reduce to exactly zero in every implementation.
    assert_eq!(ScalarKernel.dot(&[], &[]).to_bits(), 0.0f32.to_bits());
    if let Some(v) = &avx2 {
        assert_eq!(v.dot(&[], &[]).to_bits(), 0.0f32.to_bits());
    }
}

#[test]
fn sum_and_sq_diff_sum_match_f64_reference_within_tolerance() {
    let avx2 = avx2_or_notice("sum");
    let mut rng = Mix64::keyed(0xC0DE, "conformance/sum");
    for &n in LENGTHS {
        for rep in 0..8 {
            let x = gen_vec(&mut rng, n);
            let want: f64 = x.iter().map(|&v| f64::from(v)).sum();
            let mag: f64 = x.iter().map(|&v| f64::from(v).abs()).sum();
            let s = ScalarKernel.sum(&x);
            assert_close(s, want, mag, &format!("scalar sum n={n} rep={rep}"));
            if let Some(v) = &avx2 {
                assert_close(v.sum(&x), want, mag, &format!("avx2 sum n={n} rep={rep}"));
            }

            // Layer-norm variance numerator around the actual mean, the way
            // layer_norm_row calls it.
            if n > 0 {
                let mean = s / n as f32;
                let want_sq: f64 = x
                    .iter()
                    .map(|&v| {
                        let d = f64::from(v) - f64::from(mean);
                        d * d
                    })
                    .sum();
                let sq_s = ScalarKernel.sq_diff_sum(&x, mean);
                assert_close(
                    sq_s,
                    want_sq,
                    want_sq,
                    &format!("scalar sq_diff_sum n={n} rep={rep}"),
                );
                if let Some(v) = &avx2 {
                    assert_close(
                        v.sq_diff_sum(&x, mean),
                        want_sq,
                        want_sq,
                        &format!("avx2 sq_diff_sum n={n} rep={rep}"),
                    );
                }
            }
        }
    }
}

#[test]
fn axpy_is_bit_identical_across_isas() {
    let avx2 = avx2_or_notice("axpy");
    let mut rng = Mix64::keyed(0xC0DE, "conformance/axpy");
    for &n in LENGTHS {
        for _ in 0..8 {
            let a = gen_value(&mut rng);
            let x = gen_vec(&mut rng, n);
            let base = gen_vec(&mut rng, n);
            let mut s_out = base.clone();
            ScalarKernel.axpy(a, &x, &mut s_out);
            if let Some(v) = &avx2 {
                let mut a_out = base.clone();
                v.axpy(a, &x, &mut a_out);
                for (i, (sv, av)) in s_out.iter().zip(&a_out).enumerate() {
                    assert_eq!(
                        sv.to_bits(),
                        av.to_bits(),
                        "axpy n={n} lane {i}: scalar {sv} vs avx2 {av}"
                    );
                }
            }
        }
    }
}

#[test]
fn fma_tile_is_bit_identical_across_isas_and_to_sequential_axpy() {
    let avx2 = avx2_or_notice("fma_tile");
    let mut rng = Mix64::keyed(0xC0DE, "conformance/fma_tile");
    for &n in LENGTHS {
        for _ in 0..8 {
            let avs: [f32; K_TILE] = std::array::from_fn(|_| gen_value(&mut rng));
            let row_data: Vec<Vec<f32>> = (0..K_TILE).map(|_| gen_vec(&mut rng, n)).collect();
            let rows: [&[f32]; K_TILE] = std::array::from_fn(|t| row_data[t].as_slice());
            let base = gen_vec(&mut rng, n);

            let mut s_out = base.clone();
            ScalarKernel.fma_tile(&avs, &rows, &mut s_out);

            // The fused step is defined as the same rounding sequence as
            // K_TILE sequential axpy calls on finite data.
            let mut seq_out = base.clone();
            for (t, row) in rows.iter().enumerate() {
                ScalarKernel.axpy(avs[t], row, &mut seq_out);
            }
            for (i, (f, q)) in s_out.iter().zip(&seq_out).enumerate() {
                assert_eq!(
                    f.to_bits(),
                    q.to_bits(),
                    "fma_tile n={n} lane {i}: fused {f} vs sequential axpy {q}"
                );
            }

            if let Some(v) = &avx2 {
                let mut a_out = base.clone();
                v.fma_tile(&avs, &rows, &mut a_out);
                for (i, (sv, av)) in s_out.iter().zip(&a_out).enumerate() {
                    assert_eq!(
                        sv.to_bits(),
                        av.to_bits(),
                        "fma_tile n={n} lane {i}: scalar {sv} vs avx2 {av}"
                    );
                }
            }
        }
    }
}

#[test]
fn max_returns_an_exact_input_element_in_every_isa() {
    let avx2 = avx2_or_notice("max");
    let mut rng = Mix64::keyed(0xC0DE, "conformance/max");
    for &n in LENGTHS {
        for _ in 0..8 {
            let x = gen_vec(&mut rng, n);
            let s = ScalarKernel.max(&x);
            if n == 0 {
                assert_eq!(s, f32::NEG_INFINITY);
            } else {
                assert!(
                    x.iter().any(|&v| v.to_bits() == s.to_bits()),
                    "scalar max {s} not an input element"
                );
            }
            if let Some(v) = &avx2 {
                let a = v.max(&x);
                assert_eq!(
                    s.to_bits(),
                    a.to_bits(),
                    "max n={n}: scalar {s} vs avx2 {a}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mode-level properties (process-global kernel mode; serialized)
// ---------------------------------------------------------------------------

#[test]
fn row_matmul_is_bit_identical_across_modes() {
    let _guard = mode_guard();
    if avx2_or_notice("row_matmul").is_none() {
        return;
    }
    let mut rng = Mix64::keyed(0xC0DE, "conformance/row_matmul");
    for &(kdim, odim) in &[(1usize, 1usize), (7, 5), (8, 8), (33, 17), (64, 40)] {
        let a = gen_vec(&mut rng, kdim);
        let b = vega_nn::Tensor::from_vec(kdim, odim, gen_vec(&mut rng, kdim * odim));
        let mut s_out = vec![0.0f32; odim];
        kernel::set_mode(KernelMode::Scalar);
        kernel::row_matmul_into(&a, &b, &mut s_out);
        let mut a_out = vec![0.0f32; odim];
        kernel::set_mode(KernelMode::Avx2);
        kernel::row_matmul_into(&a, &b, &mut a_out);
        for (i, (sv, av)) in s_out.iter().zip(&a_out).enumerate() {
            assert_eq!(
                sv.to_bits(),
                av.to_bits(),
                "row_matmul {kdim}x{odim} col {i}: scalar {sv} vs avx2 {av}"
            );
        }
    }
}

#[test]
fn masked_softmax_prefix_stays_exact_in_every_mode() {
    let _guard = mode_guard();
    let modes: &[KernelMode] = if avx2_available() {
        &[KernelMode::Scalar, KernelMode::Avx2]
    } else {
        eprintln!("kernel_conformance::softmax: CPU lacks AVX2; checking scalar only");
        &[KernelMode::Scalar]
    };
    let mut rng = Mix64::keyed(0xC0DE, "conformance/softmax");
    for &mode in modes {
        kernel::set_mode(mode);
        for &live in &[1usize, 3, 8, 9, 31, 40] {
            let scores: Vec<f32> = (0..live).map(|_| gen_value(&mut rng)).collect();
            // Graph path: full row, masked lanes pushed to -1e9 so exp
            // underflows them to exact zero.
            let masked_tail = rng.range(0, 16) as usize;
            let mut masked = scores.clone();
            masked.extend((0..masked_tail).map(|_| gen_value(&mut rng) + -1e9));
            kernel::softmax_row(&mut masked);
            // Decode path: live prefix only.
            let mut prefix = scores.clone();
            kernel::softmax_row(&mut prefix);
            for (i, (p, m)) in prefix.iter().zip(&masked).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    m.to_bits(),
                    "mode {} live={live} tail={masked_tail} lane {i}: prefix {p} vs masked {m}",
                    mode.name()
                );
            }
            for (i, m) in masked[live..].iter().enumerate() {
                assert_eq!(
                    m.to_bits(),
                    0.0f32.to_bits(),
                    "mode {} masked lane {i} not exactly zero: {m}",
                    mode.name()
                );
            }
        }
    }
}

#[test]
fn layer_norm_row_agrees_across_modes_within_tolerance() {
    let _guard = mode_guard();
    if avx2_or_notice("layer_norm").is_none() {
        return;
    }
    let mut rng = Mix64::keyed(0xC0DE, "conformance/layer_norm");
    for &d in &[1usize, 8, 16, 40, 64, 100] {
        let x = gen_vec(&mut rng, d);
        let gain = gen_vec(&mut rng, d);
        let bias = gen_vec(&mut rng, d);
        let mut s_out = vec![0.0f32; d];
        kernel::set_mode(KernelMode::Scalar);
        let (s_mean, s_std) = kernel::layer_norm_row(&x, &gain, &bias, &mut s_out);
        let mut a_out = vec![0.0f32; d];
        kernel::set_mode(KernelMode::Avx2);
        let (a_mean, a_std) = kernel::layer_norm_row(&x, &gain, &bias, &mut a_out);
        // std has the EPS floor, so relative-to-std bounds are never vacuous.
        assert!(
            (f64::from(s_mean) - f64::from(a_mean)).abs() <= 1e-5 * f64::from(s_std) + 1e-9,
            "d={d} mean: scalar {s_mean} vs avx2 {a_mean}"
        );
        assert!(
            (f64::from(s_std) - f64::from(a_std)).abs() <= 1e-4 * f64::from(s_std),
            "d={d} std: scalar {s_std} vs avx2 {a_std}"
        );
        for (i, (sv, av)) in s_out.iter().zip(&a_out).enumerate() {
            let scale = f64::from(gain[i]).abs() + f64::from(bias[i]).abs() + 1.0;
            assert!(
                (f64::from(*sv) - f64::from(*av)).abs() <= 1e-3 * scale,
                "d={d} lane {i}: scalar {sv} vs avx2 {av}"
            );
        }
    }
}
