//! Incremental-vs-graph decode equivalence.
//!
//! The forward-only fast path (`DecodeState` / `GruDecodeState`) must be
//! **bit-identical** to the autograd-graph reference decode: the determinism
//! and chaos suites, the serve cache keys, and the golden vectors all assume
//! generation is a pure function of (weights, input). These tests compare
//! token streams, teacher-forced log-probabilities (by `to_bits`), and raw
//! logits rows between the two paths, for trained and untrained weights,
//! both model families, and the truncation / degenerate-exit edge cases.
//! `ci.sh` runs this suite at `VEGA_THREADS=1` and `4`.

use vega_nn::{GruConfig, GruSeq2Seq, Seq2Seq, Transformer, TransformerConfig};

/// Deterministic pseudo-random token ids in `[lo, hi)` (splitmix64).
fn tokens(seed: u64, n: usize, lo: usize, hi: usize) -> Vec<usize> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            lo + (z as usize) % (hi - lo)
        })
        .collect()
}

fn trained_copy_transformer() -> Transformer {
    let mut t = Transformer::new(TransformerConfig::tiny(10));
    let pairs: Vec<(Vec<usize>, Vec<usize>)> = vec![
        (vec![2, 3, 4], vec![2, 3, 4]),
        (vec![5, 6], vec![5, 6]),
        (vec![7, 8, 2], vec![7, 8, 2]),
        (vec![4, 4, 5], vec![4, 4, 5]),
    ];
    let loss = vega_nn::train_until(&mut t, &pairs, 0, 1, 300, 3e-3, 0.05);
    assert!(loss < 0.3, "copy task did not converge: {loss}");
    t
}

#[test]
fn transformer_greedy_matches_graph_when_trained() {
    let mut t = trained_copy_transformer();
    for src in [vec![5usize, 6], vec![2, 3, 4], vec![7, 8, 2], vec![4, 4, 5]] {
        let fast = t.greedy(&src, 0, 1, 10);
        let graph = t.greedy_graph(&src, 0, 1, 10);
        assert_eq!(fast, graph, "greedy diverged for src {src:?}");
    }
    // And the trained behavior itself still holds on the fast path.
    assert_eq!(t.greedy(&[5, 6], 0, 1, 10), vec![5, 6]);
}

#[test]
fn transformer_greedy_matches_graph_untrained_small() {
    // Untrained weights exercise arbitrary logits (ties, negative values).
    let mut t = Transformer::new(TransformerConfig::small(64));
    for seed in 0..4u64 {
        let src = tokens(seed, 17, 2, 64);
        let fast = t.greedy(&src, 0, 1, 96);
        let graph = t.greedy_graph(&src, 0, 1, 96);
        assert_eq!(fast, graph, "greedy diverged for seed {seed}");
    }
}

#[test]
fn transformer_logits_bitwise_identical_over_full_prefix() {
    let mut t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(11, 32, 2, 64);
    let feed = tokens(13, 96, 2, 64);
    let graph = t.logits_rows_graph(&src, &feed);
    let mut st = t.begin_decode(&src);
    for (r, &tok) in feed.iter().enumerate() {
        let row = st.step(tok);
        assert_eq!(row.len(), graph.cols);
        for (c, &v) in row.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                graph.at(r, c).to_bits(),
                "logit bits diverged at row {r} col {c}"
            );
        }
    }
}

#[test]
fn transformer_forced_logprob_matches_graph_bitwise() {
    let mut t = Transformer::new(TransformerConfig::small(64));
    for (seed, n) in [(1u64, 5usize), (2, 40), (3, 96)] {
        let src = tokens(seed, 20, 2, 64);
        let tgt_in = tokens(seed + 100, n, 2, 64);
        let tgt_out = tokens(seed + 200, n, 2, 64);
        let fast = t.forced_logprob(&src, &tgt_in, &tgt_out);
        let graph = t.forced_logprob_graph(&src, &tgt_in, &tgt_out);
        assert_eq!(
            fast.to_bits(),
            graph.to_bits(),
            "forced_logprob diverged for n={n}: {fast} vs {graph}"
        );
    }
}

#[test]
fn transformer_forced_logprob_truncates_identically_past_max_len() {
    // src and tgt both longer than max_len=96: both paths must clamp alike.
    let mut t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(21, 130, 2, 64);
    let tgt_in = tokens(22, 120, 2, 64);
    let tgt_out = tokens(23, 110, 2, 64);
    let fast = t.forced_logprob(&src, &tgt_in, &tgt_out);
    let graph = t.forced_logprob_graph(&src, &tgt_in, &tgt_out);
    assert_eq!(fast.to_bits(), graph.to_bits());
}

#[test]
fn transformer_forced_steps_matches_graph() {
    let mut t = Transformer::new(TransformerConfig::small(64));
    let src = tokens(31, 48, 2, 64);
    let feed = tokens(32, 96, 2, 64);
    let fast = t.forced_steps(&src, &feed);
    let graph = t.forced_steps_graph(&src, &feed);
    assert_eq!(fast, graph);
    assert_eq!(fast.len(), 96);
}

#[test]
fn transformer_degenerate_early_exit_matches_graph() {
    // Teach the model to emit an unbounded run of 3s; looks_degenerate must
    // cut both paths at the same point.
    let mut t = Transformer::new(TransformerConfig::tiny(10));
    let pairs = vec![(vec![2usize], vec![3usize; 10])];
    let _ = vega_nn::train_until(&mut t, &pairs, 0, 1, 250, 3e-3, 0.05);
    let fast = t.greedy(&[2], 0, 1, 20);
    let graph = t.greedy_graph(&[2], 0, 1, 20);
    assert_eq!(fast, graph);
    if fast == vec![3, 3, 3] {
        // Converged run: the period-1 detector fired well before the cap.
        assert!(vega_nn::looks_degenerate(&[0, 3, 3, 3]));
    }
}

#[test]
fn transformer_sequence_logprob_matches_graph_composition() {
    // sequence_logprob (the serve/scoring entry point) builds BOS/EOS
    // framing on top of forced_logprob; check the full composition.
    let mut t = trained_copy_transformer();
    let src = vec![5usize, 6];
    let tgt = vec![5usize, 6];
    let fast = t.sequence_logprob(&src, &tgt, 0, 1);
    let mut tgt_in = vec![0usize];
    tgt_in.extend_from_slice(&tgt);
    let mut tgt_out = tgt.clone();
    tgt_out.push(1);
    let graph = t.forced_logprob_graph(&src, &tgt_in, &tgt_out);
    assert_eq!(fast.to_bits(), graph.to_bits());
}

// ---------------------------------------------------------------------------
// GRU
// ---------------------------------------------------------------------------

#[test]
fn gru_greedy_matches_graph_trained_and_untrained() {
    let mut m = GruSeq2Seq::new(GruConfig::tiny(8));
    let pairs = vec![(vec![2usize, 3], vec![3usize]), (vec![4, 5], vec![5])];
    let loss = vega_nn::train_until(&mut m, &pairs, 0, 1, 400, 5e-3, 0.05);
    assert!(loss < 0.3, "gru did not converge: {loss}");
    for src in [vec![2usize, 3], vec![4, 5], vec![2], vec![5, 4, 3]] {
        assert_eq!(
            m.greedy(&src, 0, 1, 8),
            m.greedy_graph(&src, 0, 1, 8),
            "gru greedy diverged for src {src:?}"
        );
    }
    assert_eq!(m.greedy(&[2, 3], 0, 1, 4), vec![3]);

    let mut u = GruSeq2Seq::new(GruConfig::small(64));
    for seed in 0..3u64 {
        let src = tokens(seed + 40, 25, 2, 64);
        assert_eq!(u.greedy(&src, 0, 1, 96), u.greedy_graph(&src, 0, 1, 96));
    }
}

#[test]
fn gru_logits_bitwise_identical_over_full_prefix() {
    let mut m = GruSeq2Seq::new(GruConfig::small(64));
    let src = tokens(51, 30, 2, 64);
    let feed = tokens(52, 96, 2, 64);
    let graph = m.logits_rows_graph(&src, &feed);
    let mut st = m.begin_decode(&src);
    for (r, &tok) in feed.iter().enumerate() {
        let row = st.step(tok);
        for (c, &v) in row.iter().enumerate() {
            assert_eq!(
                v.to_bits(),
                graph.at(r, c).to_bits(),
                "gru logit bits diverged at row {r} col {c}"
            );
        }
    }
}

#[test]
fn gru_forced_logprob_matches_graph_bitwise_incl_truncation() {
    let mut m = GruSeq2Seq::new(GruConfig::small(64));
    for (seed, src_n, n) in [(61u64, 10usize, 8usize), (62, 40, 96), (63, 130, 120)] {
        let src = tokens(seed, src_n, 2, 64);
        let tgt_in = tokens(seed + 7, n, 2, 64);
        let tgt_out = tokens(seed + 9, n, 2, 64);
        let fast = m.forced_logprob(&src, &tgt_in, &tgt_out);
        let graph = m.forced_logprob_graph(&src, &tgt_in, &tgt_out);
        assert_eq!(
            fast.to_bits(),
            graph.to_bits(),
            "gru forced_logprob diverged for seed {seed}"
        );
    }
}

#[test]
fn gru_forced_steps_matches_graph() {
    let mut m = GruSeq2Seq::new(GruConfig::small(64));
    let src = tokens(71, 20, 2, 64);
    let feed = tokens(72, 96, 2, 64);
    assert_eq!(
        m.forced_steps(&src, &feed),
        m.forced_steps_graph(&src, &feed)
    );
}
