//! Dense 2-D tensors (row-major `f32`) with the handful of kernels the
//! sequence models need.
//!
//! Storage is abstracted behind [`Tensor`]: a tensor either owns its values
//! (`Vec<f32>`, the default for anything freshly built or trained) or
//! borrows a read-only slice of a shared [`ByteRegion`] — a mapped v2
//! checkpoint. Every read path (kernels, autograd, the incremental decode
//! engine) goes through [`Tensor::as_slice`] and works identically on both;
//! mutation goes through [`Tensor::as_mut_slice`], which copies a shared
//! tensor into owned storage first (copy-on-write), so fine-tuning a mapped
//! model never writes through the mapping.

use crate::kernel::{self, with_kernel, Kernel};
use crate::storage::{ByteRegion, TensorTable};
use std::sync::Arc;
use vega_obs::json::{Json, JsonError};

/// `k`-dimension block width for the cache-blocked matmul kernels.
const TILE_K: usize = 64;
/// Output rows per parallel work item. A constant (not derived from the
/// thread count) so the block decomposition never varies — though per-row
/// results are independent of blocking anyway.
const ROW_BLOCK: usize = 16;
/// Multiply-adds below which the scalar kernels win (no blocking overhead).
const TILED_MIN_WORK: usize = 1 << 15;
/// Multiply-adds below which even the tiled kernel stays on one thread.
const PAR_MIN_WORK: usize = 1 << 18;

/// Where a tensor's values live.
#[derive(Clone)]
enum TensorData {
    /// Private, mutable values.
    Owned(Vec<f32>),
    /// A read-only window into a shared region (`len` f32 values starting at
    /// byte `off`). Cloning is an `Arc` bump, not a copy.
    Shared {
        region: Arc<ByteRegion>,
        off: usize,
        len: usize,
    },
}

/// A row-major 2-D tensor.
#[derive(Clone)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    data: TensorData,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tensor")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("shared", &self.is_shared())
            .field("data", &self.as_slice())
            .finish()
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows && self.cols == other.cols && self.as_slice() == other.as_slice()
    }
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: TensorData::Owned(vec![0.0; rows * cols]),
        }
    }

    /// Builds a tensor from data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor {
            rows,
            cols,
            data: TensorData::Owned(data),
        }
    }

    /// An owned tensor with zero rows and capacity for `rows_cap` more —
    /// grown row-by-row with [`Tensor::push_row`] (the decode KV caches).
    pub fn with_row_capacity(cols: usize, rows_cap: usize) -> Self {
        Tensor {
            rows: 0,
            cols,
            data: TensorData::Owned(Vec::with_capacity(rows_cap * cols)),
        }
    }

    /// A read-only view of `rows × cols` values at byte offset `off` inside
    /// `region`. The view shares the region (no copy); mutating accessors
    /// copy on write.
    ///
    /// # Errors
    /// Returns a message naming the problem if the shape overflows, the
    /// range falls outside the region, or `off` is not 4-byte aligned.
    pub fn from_region(
        rows: usize,
        cols: usize,
        region: &Arc<ByteRegion>,
        off: usize,
    ) -> Result<Tensor, String> {
        let len = rows
            .checked_mul(cols)
            .ok_or_else(|| format!("tensor shape {rows}x{cols} overflows"))?;
        let nbytes = len
            .checked_mul(4)
            .ok_or_else(|| format!("tensor byte size {len}x4 overflows"))?;
        let end = off
            .checked_add(nbytes)
            .ok_or_else(|| format!("tensor end offset overflows (off {off} + {nbytes})"))?;
        if end > region.len() {
            return Err(format!(
                "tensor range {off}..{end} exceeds region of {} bytes",
                region.len()
            ));
        }
        if off % 4 != 0 {
            return Err(format!("tensor offset {off} is not 4-byte aligned"));
        }
        Ok(Tensor {
            rows,
            cols,
            data: TensorData::Shared {
                region: Arc::clone(region),
                off,
                len,
            },
        })
    }

    /// The values as a contiguous row-major slice (shared or owned alike).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        match &self.data {
            TensorData::Owned(v) => v,
            TensorData::Shared { region, off, len } => region.f32s(*off, *len),
        }
    }

    /// Mutable access to the values, copying a shared tensor into owned
    /// storage first (copy-on-write).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.make_owned();
        match &mut self.data {
            TensorData::Owned(v) => v,
            TensorData::Shared { .. } => unreachable!("make_owned left shared storage"),
        }
    }

    /// Converts shared storage into a private copy; owned tensors are
    /// untouched. After this call the tensor no longer references its
    /// region.
    pub fn make_owned(&mut self) {
        if let TensorData::Shared { region, off, len } = &self.data {
            self.data = TensorData::Owned(region.f32s(*off, *len).to_vec());
        }
    }

    /// True when the values are a view into a shared region.
    pub fn is_shared(&self) -> bool {
        matches!(self.data, TensorData::Shared { .. })
    }

    /// Number of scalar values (`rows * cols`).
    #[inline]
    pub fn len(&self) -> usize {
        match &self.data {
            TensorData::Owned(v) => v.len(),
            TensorData::Shared { len, .. } => *len,
        }
    }

    /// True for a 0-element tensor.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one row (must be `cols` wide). Requires owned storage — the
    /// KV caches that grow this way are always owned scratch.
    ///
    /// # Panics
    /// Panics if `row.len() != self.cols`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row width");
        self.make_owned();
        if let TensorData::Owned(v) = &mut self.data {
            v.extend_from_slice(row);
        }
        self.rows += 1;
    }

    /// Drops rows from the end, keeping the first `rows`. The inverse of
    /// [`Tensor::push_row`] — speculative decoding uses it to roll a K/V
    /// cache back past tokens the verifier rejected. Capacity is retained,
    /// so re-growing over the popped rows does not reallocate.
    ///
    /// # Panics
    /// Panics if `rows` exceeds the current row count.
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(rows <= self.rows, "truncate_rows beyond end");
        self.make_owned();
        if let TensorData::Owned(v) = &mut self.data {
            v.truncate(rows * self.cols);
        }
        self.rows = rows;
    }

    /// Serializes to a JSON value (`{"rows":r,"cols":c,"data":[...]}`).
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            ("rows", Json::num_usize(self.rows)),
            ("cols", Json::num_usize(self.cols)),
            (
                "data",
                Json::Arr(self.as_slice().iter().map(|&x| Json::num_f32(x)).collect()),
            ),
        ])
    }

    /// Restores from [`Tensor::to_json_value`] output.
    pub(crate) fn from_json_value(v: &Json) -> Result<Tensor, JsonError> {
        let rows = v.field("rows")?.as_usize()?;
        let cols = v.field("cols")?.as_usize()?;
        let n = rows.checked_mul(cols).ok_or_else(|| JsonError {
            msg: format!("tensor shape {rows}x{cols} overflows"),
        })?;
        let data = v
            .field("data")?
            .as_array()?
            .iter()
            .map(Json::as_f32)
            .collect::<Result<Vec<f32>, JsonError>>()?;
        if data.len() != n {
            return Err(JsonError {
                msg: format!("tensor shape {rows}x{cols} != {}", data.len()),
            });
        }
        Ok(Tensor::from_vec(rows, cols, data))
    }

    /// Appends the values to a v2 data region and returns the header entry
    /// (`{"rows":r,"cols":c,"off":o}` with `off` relative to the region).
    pub(crate) fn to_table_entry(&self, table: &mut TensorTable) -> Json {
        let off = table.push_f32s(self.as_slice());
        Json::obj([
            ("rows", Json::num_usize(self.rows)),
            ("cols", Json::num_usize(self.cols)),
            ("off", Json::num_usize(off)),
        ])
    }

    /// Restores a shared view from a [`Tensor::to_table_entry`] header entry
    /// against `region`, whose data section starts at byte `data_base`.
    /// Errors name the absolute byte offset of the offending tensor.
    pub(crate) fn from_table_entry(
        v: &Json,
        region: &Arc<ByteRegion>,
        data_base: usize,
    ) -> Result<Tensor, JsonError> {
        let rows = v.field("rows")?.as_usize()?;
        let cols = v.field("cols")?.as_usize()?;
        let off = v.field("off")?.as_usize()?;
        let abs = data_base.checked_add(off).ok_or_else(|| JsonError {
            msg: format!("tensor offset {off} overflows past data base {data_base}"),
        })?;
        #[cfg(target_endian = "little")]
        {
            Tensor::from_region(rows, cols, region, abs).map_err(|msg| JsonError {
                msg: format!("tensor table entry at byte {abs}: {msg}"),
            })
        }
        #[cfg(not(target_endian = "little"))]
        {
            // Big-endian fallback: decode the little-endian payload into an
            // owned tensor (no zero-copy sharing, but files stay portable).
            let len = rows.checked_mul(cols).ok_or_else(|| JsonError {
                msg: format!("tensor shape {rows}x{cols} overflows"),
            })?;
            let bytes = region.bytes();
            let end = abs.checked_add(len * 4).ok_or_else(|| JsonError {
                msg: format!("tensor end overflows at byte {abs}"),
            })?;
            if end > bytes.len() {
                return Err(JsonError {
                    msg: format!("tensor table entry at byte {abs}: range exceeds region"),
                });
            }
            let data = bytes[abs..end]
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Ok(Tensor::from_vec(rows, cols, data))
        }
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.as_slice()[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let idx = r * self.cols + c;
        &mut self.as_mut_slice()[idx]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.as_slice()[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let (start, end) = (r * self.cols, (r + 1) * self.cols);
        &mut self.as_mut_slice()[start..end]
    }

    /// Matrix product `self · other` (optionally with `other` transposed).
    ///
    /// Small products use the plain kernels; larger ones use cache-blocked
    /// kernels, parallelized over row blocks through `vega-par` when big
    /// enough. The inner loops dispatch through the [`crate::kernel`] tier
    /// (`VEGA_KERNEL`): non-transposed products accumulate each output
    /// element one rank-1 update at a time in ascending `k` order
    /// ([`Kernel::axpy`], bit-identical in every mode, with the exact
    /// zero-skip as a no-op for the finite values training produces);
    /// transposed products take one full-length [`Kernel::dot`] per output
    /// element. Within a mode all dispatch paths — any tile size, any
    /// thread count — produce bit-identical results.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor, transpose_other: bool) -> Tensor {
        let (inner, out_cols) = if transpose_other {
            assert_eq!(self.cols, other.cols, "matmul(T) inner dim");
            (self.cols, other.rows)
        } else {
            assert_eq!(self.cols, other.rows, "matmul inner dim");
            (self.cols, other.cols)
        };
        let work = self.rows * out_cols * inner;
        if work < TILED_MIN_WORK {
            return self.matmul_scalar(other, transpose_other);
        }
        if work < PAR_MIN_WORK || self.rows <= ROW_BLOCK {
            let block = self.matmul_block(other, transpose_other, 0, self.rows);
            return Tensor::from_vec(self.rows, out_cols, block);
        }
        let mut out = Tensor::zeros(self.rows, out_cols);
        let ranges: Vec<(usize, usize)> = (0..self.rows)
            .step_by(ROW_BLOCK)
            .map(|r0| (r0, (r0 + ROW_BLOCK).min(self.rows)))
            .collect();
        let blocks = vega_par::par_map(ranges, |_, (r0, r1)| {
            (r0, self.matmul_block(other, transpose_other, r0, r1))
        });
        let out_data = out.as_mut_slice();
        for (r0, block) in blocks {
            out_data[r0 * out_cols..r0 * out_cols + block.len()].copy_from_slice(&block);
        }
        out
    }

    /// The plain (untiled) kernels, kept as the small-matrix fast path and
    /// as the reference the tiled kernels are tested against bit-for-bit
    /// within each kernel mode.
    fn matmul_scalar(&self, other: &Tensor, transpose_other: bool) -> Tensor {
        with_kernel!(kr => if transpose_other {
            let mut out = vec![0.0f32; self.rows * other.rows];
            for i in 0..self.rows {
                let a = self.row(i);
                for j in 0..other.rows {
                    out[i * other.rows + j] = kr.dot(a, other.row(j));
                }
            }
            Tensor::from_vec(self.rows, other.rows, out)
        } else {
            let mut out = vec![0.0f32; self.rows * other.cols];
            for i in 0..self.rows {
                let a = self.row(i);
                let orow = i * other.cols;
                let out_row = &mut out[orow..orow + other.cols];
                for (k, &av) in a.iter().enumerate() {
                    // Exact no-op skip: for the finite values training
                    // produces, `o += 0.0 * b` leaves every bit unchanged.
                    if av == 0.0 {
                        continue;
                    }
                    kr.axpy(av, other.row(k), out_row);
                }
            }
            Tensor::from_vec(self.rows, other.cols, out)
        })
    }

    /// Cache-blocked kernel for output rows `r0..r1`; returns the dense
    /// `(r1-r0) × out_cols` slab, matching [`Tensor::matmul_scalar`]
    /// bit-for-bit within each kernel mode.
    ///
    /// The non-transposed branch blocks over `k`, which only reorders the
    /// loop traversal — each output element still receives its rank-1
    /// updates one at a time in ascending `k`. The transposed branch takes
    /// one full-length [`Kernel::dot`] per output element instead of
    /// accumulating per-tile partials: a tiled sum would split the kernel's
    /// own reduction chains at tile boundaries and diverge from the untiled
    /// path under AVX2.
    fn matmul_block(
        &self,
        other: &Tensor,
        transpose_other: bool,
        r0: usize,
        r1: usize,
    ) -> Vec<f32> {
        let out_cols = if transpose_other {
            other.rows
        } else {
            other.cols
        };
        let mut out = vec![0.0f32; (r1 - r0) * out_cols];
        with_kernel!(kr => if transpose_other {
            for i in r0..r1 {
                let a = self.row(i);
                let orow = (i - r0) * out_cols;
                for j in 0..other.rows {
                    out[orow + j] = kr.dot(a, other.row(j));
                }
            }
        } else {
            for kb in (0..self.cols).step_by(TILE_K) {
                let ke = (kb + TILE_K).min(self.cols);
                for i in r0..r1 {
                    let a = &self.row(i)[kb..ke];
                    let orow = (i - r0) * out_cols;
                    let out_row = &mut out[orow..orow + out_cols];
                    for (k, &av) in a.iter().enumerate() {
                        kr.axpy(av, other.row(kb + k), out_row);
                    }
                }
            }
        });
        out
    }

    /// `self + other`, elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape"
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Adds `row` (a 1×cols tensor) to every row.
    ///
    /// # Panics
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast row must be 1 x cols");
        assert_eq!(row.cols, self.cols, "broadcast width");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(row.as_slice()) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape"
        );
        let data = self
            .as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(a, b)| a * b)
            .collect();
        Tensor::from_vec(self.rows, self.cols, data)
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor::from_vec(
            self.rows,
            self.cols,
            self.as_slice().iter().map(|v| v * s).collect(),
        )
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = vec![0.0f32; self.rows * self.cols];
        let src = self.as_slice();
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c * self.rows + r] = src[r * self.cols + c];
            }
        }
        Tensor::from_vec(self.cols, self.rows, out)
    }

    /// Row-wise softmax (see [`kernel::softmax_row`] for the determinism
    /// contract shared with the decode fast path).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            kernel::softmax_row(out.row_mut(r));
        }
        out
    }

    /// Frobenius-norm squared (for tests/regularization diagnostics).
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b, false);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3).collect());
        let direct = a.matmul(&b, true);
        let explicit = a.matmul(&b.transposed(), false);
        for (x, y) in direct.as_slice().iter().zip(explicit.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_normalize() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.at(0, 2) > s.at(0, 1));
    }

    #[test]
    fn broadcast_add() {
        let t = Tensor::zeros(2, 2);
        let row = Tensor::from_vec(1, 2, vec![1., 2.]);
        let out = t.add_row_broadcast(&row);
        assert_eq!(out.as_slice(), &[1., 2., 1., 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dim")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b, false);
    }

    #[test]
    fn from_json_rejects_shape_overflow() {
        let big = usize::MAX / 2;
        let v = Json::obj([
            ("rows", Json::num_usize(big)),
            ("cols", Json::num_usize(3)),
            ("data", Json::Arr(vec![])),
        ]);
        let err = Tensor::from_json_value(&v).unwrap_err();
        assert!(err.msg.contains("overflows"), "got: {}", err.msg);
    }

    /// A shared tensor over a heap-backed region holding `vals`.
    fn shared(rows: usize, cols: usize, vals: &[f32]) -> (Tensor, Arc<ByteRegion>) {
        let mut table = TensorTable::new();
        let off = table.push_f32s(vals);
        let region = Arc::new(ByteRegion::from_bytes(&table.into_bytes()));
        let t = Tensor::from_region(rows, cols, &region, off).unwrap();
        (t, region)
    }

    #[test]
    fn shared_tensors_read_like_owned_and_copy_on_write() {
        let vals = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let (mut t, region) = shared(2, 3, &vals);
        assert!(t.is_shared());
        assert_eq!(t.as_slice(), &vals[..]);
        assert_eq!(t.at(1, 2), 6.0);
        assert_eq!(t.row(0), &vals[..3]);
        // A clone shares the same region (no copy).
        let twin = t.clone();
        assert!(twin.is_shared());
        // Mutation detaches: the region stays untouched.
        *t.at_mut(0, 0) = 99.0;
        assert!(!t.is_shared());
        assert_eq!(t.at(0, 0), 99.0);
        assert_eq!(twin.at(0, 0), 1.0, "the shared view must not see writes");
        assert_eq!(region.f32s(0, 6), &vals[..], "the region is immutable");
    }

    #[test]
    fn shared_and_owned_matmul_are_bit_identical() {
        let av: Vec<f32> = (0..6).map(|i| i as f32 * 0.7 - 2.0).collect();
        let bv: Vec<f32> = (0..12).map(|i| i as f32 * 0.3 + 0.1).collect();
        let (a_shared, _r1) = shared(2, 3, &av);
        let (b_shared, _r2) = shared(3, 4, &bv);
        let a_owned = Tensor::from_vec(2, 3, av);
        let b_owned = Tensor::from_vec(3, 4, bv);
        let x = a_shared.matmul(&b_shared, false);
        let y = a_owned.matmul(&b_owned, false);
        assert!(x
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits()));
        assert_eq!(a_shared, a_owned, "PartialEq sees through storage");
    }

    #[test]
    fn from_region_rejects_bad_ranges() {
        let region = Arc::new(ByteRegion::from_bytes(&[0u8; 16]));
        assert!(Tensor::from_region(2, 2, &region, 0).is_ok());
        let err = Tensor::from_region(2, 3, &region, 0).unwrap_err();
        assert!(err.contains("exceeds region"), "got: {err}");
        let err = Tensor::from_region(1, 1, &region, 2).unwrap_err();
        assert!(err.contains("aligned"), "got: {err}");
        let err = Tensor::from_region(usize::MAX, 2, &region, 0).unwrap_err();
        assert!(err.contains("overflows"), "got: {err}");
    }

    #[test]
    fn push_row_grows_a_kv_cache_shape() {
        let mut t = Tensor::with_row_capacity(3, 4);
        assert_eq!((t.rows, t.cols), (0, 3));
        t.push_row(&[1.0, 2.0, 3.0]);
        t.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(t.rows, 2);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    /// Deterministic pseudo-random fill (splitmix64) with zeros and negative
    /// values mixed in, so the scalar kernel's zero-skip branch is exercised.
    fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed;
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                if z % 5 == 0 {
                    0.0
                } else {
                    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn tiled_kernels_agree_exactly_with_scalar_on_shape_grid() {
        // Shapes straddle the tile sizes (TILE_K = 64, ROW_BLOCK = 16) and
        // include dims not divisible by either.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 64, 16),
            (17, 65, 19),
            (33, 130, 9),
            (40, 200, 23),
            (70, 96, 41),
        ] {
            let a = fill(m, k, 0xA5EED ^ (m * 1000 + k) as u64);
            let b = fill(k, n, 0xB5EED ^ (k * 1000 + n) as u64);
            let bt = fill(n, k, 0xC5EED ^ (n * 1000 + k) as u64);
            for (tiled, scalar) in [
                (a.matmul_block(&b, false, 0, m), a.matmul_scalar(&b, false)),
                (a.matmul_block(&bt, true, 0, m), a.matmul_scalar(&bt, true)),
            ] {
                assert_eq!(tiled.len(), scalar.len());
                for (i, (x, y)) in tiled.iter().zip(scalar.as_slice()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{m}x{k}x{n} elem {i}: tiled {x} vs scalar {y}"
                    );
                }
            }
            // The public entry point (whatever path it dispatches to,
            // including the parallel one) matches the scalar kernel too.
            let via_public = a.matmul(&b, false);
            let scalar = a.matmul_scalar(&b, false);
            assert!(via_public
                .as_slice()
                .iter()
                .zip(scalar.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_across_thread_counts() {
        // Big enough to cross PAR_MIN_WORK and fan out over row blocks.
        let a = fill(96, 80, 1);
        let b = fill(80, 64, 2);
        vega_par::set_threads(1);
        let one = a.matmul(&b, false);
        vega_par::set_threads(4);
        let four = a.matmul(&b, false);
        vega_par::set_threads(0);
        assert!(one
            .as_slice()
            .iter()
            .zip(four.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
