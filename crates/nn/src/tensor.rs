//! Dense 2-D tensors (row-major `f32`) with the handful of kernels the
//! sequence models need.

use vega_obs::json::{Json, JsonError};

/// A row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data; `len == rows * cols`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Serializes to a JSON value (`{"rows":r,"cols":c,"data":[...]}`).
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            ("rows", Json::num_usize(self.rows)),
            ("cols", Json::num_usize(self.cols)),
            (
                "data",
                Json::Arr(self.data.iter().map(|&x| Json::num_f32(x)).collect()),
            ),
        ])
    }

    /// Restores from [`Tensor::to_json_value`] output.
    pub(crate) fn from_json_value(v: &Json) -> Result<Tensor, JsonError> {
        let rows = v.field("rows")?.as_usize()?;
        let cols = v.field("cols")?.as_usize()?;
        let data = v
            .field("data")?
            .as_array()?
            .iter()
            .map(Json::as_f32)
            .collect::<Result<Vec<f32>, JsonError>>()?;
        if data.len() != rows * cols {
            return Err(JsonError {
                msg: format!("tensor shape {rows}x{cols} != {}", data.len()),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other` (optionally with `other` transposed).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor, transpose_other: bool) -> Tensor {
        if transpose_other {
            assert_eq!(self.cols, other.cols, "matmul(T) inner dim");
            let mut out = Tensor::zeros(self.rows, other.rows);
            for i in 0..self.rows {
                let a = self.row(i);
                for j in 0..other.rows {
                    let b = other.row(j);
                    let mut s = 0.0f32;
                    for k in 0..self.cols {
                        s += a[k] * b[k];
                    }
                    out.data[i * other.rows + j] = s;
                }
            }
            out
        } else {
            assert_eq!(self.cols, other.rows, "matmul inner dim");
            let mut out = Tensor::zeros(self.rows, other.cols);
            for i in 0..self.rows {
                let a = self.row(i);
                let orow = i * other.cols;
                for (k, &av) in a.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b = other.row(k);
                    let out_row = &mut out.data[orow..orow + other.cols];
                    for (o, &bv) in out_row.iter_mut().zip(b.iter()) {
                        *o += av * bv;
                    }
                }
            }
            out
        }
    }

    /// `self + other`, elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `row` (a 1×cols tensor) to every row.
    ///
    /// # Panics
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast row must be 1 x cols");
        assert_eq!(row.cols, self.cols, "broadcast width");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Frobenius-norm squared (for tests/regularization diagnostics).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b, false);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3).collect());
        let direct = a.matmul(&b, true);
        let explicit = a.matmul(&b.transposed(), false);
        for (x, y) in direct.data.iter().zip(&explicit.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_normalize() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.at(0, 2) > s.at(0, 1));
    }

    #[test]
    fn broadcast_add() {
        let t = Tensor::zeros(2, 2);
        let row = Tensor::from_vec(1, 2, vec![1., 2.]);
        let out = t.add_row_broadcast(&row);
        assert_eq!(out.data, vec![1., 2., 1., 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dim")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b, false);
    }
}
