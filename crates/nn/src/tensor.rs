//! Dense 2-D tensors (row-major `f32`) with the handful of kernels the
//! sequence models need.

use vega_obs::json::{Json, JsonError};

/// `k`-dimension block width for the cache-blocked matmul kernels.
const TILE_K: usize = 64;
/// Output rows per parallel work item. A constant (not derived from the
/// thread count) so the block decomposition never varies — though per-row
/// results are independent of blocking anyway.
const ROW_BLOCK: usize = 16;
/// Multiply-adds below which the scalar kernels win (no blocking overhead).
const TILED_MIN_WORK: usize = 1 << 15;
/// Multiply-adds below which even the tiled kernel stays on one thread.
const PAR_MIN_WORK: usize = 1 << 18;

/// A row-major 2-D tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data; `len == rows * cols`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// A zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "tensor shape mismatch");
        Tensor { rows, cols, data }
    }

    /// Serializes to a JSON value (`{"rows":r,"cols":c,"data":[...]}`).
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            ("rows", Json::num_usize(self.rows)),
            ("cols", Json::num_usize(self.cols)),
            (
                "data",
                Json::Arr(self.data.iter().map(|&x| Json::num_f32(x)).collect()),
            ),
        ])
    }

    /// Restores from [`Tensor::to_json_value`] output.
    pub(crate) fn from_json_value(v: &Json) -> Result<Tensor, JsonError> {
        let rows = v.field("rows")?.as_usize()?;
        let cols = v.field("cols")?.as_usize()?;
        let data = v
            .field("data")?
            .as_array()?
            .iter()
            .map(Json::as_f32)
            .collect::<Result<Vec<f32>, JsonError>>()?;
        if data.len() != rows * cols {
            return Err(JsonError {
                msg: format!("tensor shape {rows}x{cols} != {}", data.len()),
            });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// One row as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other` (optionally with `other` transposed).
    ///
    /// Small products use the scalar kernels; larger ones use cache-blocked
    /// kernels, parallelized over row blocks through `vega-par` when big
    /// enough. Every kernel accumulates each output element one product at a
    /// time in ascending `k` order, so all paths — any tile size, any thread
    /// count — produce bit-identical results (the scalar non-transposed
    /// kernel's zero-skip is exact too: skipped terms are exact no-ops for
    /// the finite values training produces).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor, transpose_other: bool) -> Tensor {
        let (inner, out_cols) = if transpose_other {
            assert_eq!(self.cols, other.cols, "matmul(T) inner dim");
            (self.cols, other.rows)
        } else {
            assert_eq!(self.cols, other.rows, "matmul inner dim");
            (self.cols, other.cols)
        };
        let work = self.rows * out_cols * inner;
        if work < TILED_MIN_WORK {
            return self.matmul_scalar(other, transpose_other);
        }
        let mut out = Tensor::zeros(self.rows, out_cols);
        if work < PAR_MIN_WORK || self.rows <= ROW_BLOCK {
            let block = self.matmul_block(other, transpose_other, 0, self.rows);
            out.data = block;
            return out;
        }
        let ranges: Vec<(usize, usize)> = (0..self.rows)
            .step_by(ROW_BLOCK)
            .map(|r0| (r0, (r0 + ROW_BLOCK).min(self.rows)))
            .collect();
        let blocks = vega_par::par_map(ranges, |_, (r0, r1)| {
            (r0, self.matmul_block(other, transpose_other, r0, r1))
        });
        for (r0, block) in blocks {
            out.data[r0 * out_cols..r0 * out_cols + block.len()].copy_from_slice(&block);
        }
        out
    }

    /// The original scalar kernels (kept as the small-matrix fast path and
    /// as the reference the tiled kernels are tested against bit-for-bit).
    fn matmul_scalar(&self, other: &Tensor, transpose_other: bool) -> Tensor {
        if transpose_other {
            let mut out = Tensor::zeros(self.rows, other.rows);
            for i in 0..self.rows {
                let a = self.row(i);
                for j in 0..other.rows {
                    let b = other.row(j);
                    let mut s = 0.0f32;
                    for k in 0..self.cols {
                        s += a[k] * b[k];
                    }
                    out.data[i * other.rows + j] = s;
                }
            }
            out
        } else {
            let mut out = Tensor::zeros(self.rows, other.cols);
            for i in 0..self.rows {
                let a = self.row(i);
                let orow = i * other.cols;
                for (k, &av) in a.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let b = other.row(k);
                    let out_row = &mut out.data[orow..orow + other.cols];
                    for (o, &bv) in out_row.iter_mut().zip(b.iter()) {
                        *o += av * bv;
                    }
                }
            }
            out
        }
    }

    /// Cache-blocked kernel for output rows `r0..r1`; returns the dense
    /// `(r1-r0) × out_cols` slab. Blocking over `k` only reorders the loop
    /// traversal — each output element still receives its products one at a
    /// time in ascending `k`, matching the scalar kernels exactly.
    fn matmul_block(
        &self,
        other: &Tensor,
        transpose_other: bool,
        r0: usize,
        r1: usize,
    ) -> Vec<f32> {
        let out_cols = if transpose_other {
            other.rows
        } else {
            other.cols
        };
        let mut out = vec![0.0f32; (r1 - r0) * out_cols];
        for kb in (0..self.cols).step_by(TILE_K) {
            let ke = (kb + TILE_K).min(self.cols);
            for i in r0..r1 {
                let a = &self.row(i)[kb..ke];
                let orow = (i - r0) * out_cols;
                if transpose_other {
                    for j in 0..other.rows {
                        let b = &other.row(j)[kb..ke];
                        let o = &mut out[orow + j];
                        for (&av, &bv) in a.iter().zip(b.iter()) {
                            *o += av * bv;
                        }
                    }
                } else {
                    for (k, &av) in a.iter().enumerate() {
                        let b = other.row(kb + k);
                        let out_row = &mut out[orow..orow + out_cols];
                        for (o, &bv) in out_row.iter_mut().zip(b.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
        out
    }

    /// `self + other`, elementwise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add shape"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Adds `row` (a 1×cols tensor) to every row.
    ///
    /// # Panics
    /// Panics if `row` is not `1 × self.cols`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "broadcast row must be 1 x cols");
        assert_eq!(row.cols, self.cols, "broadcast width");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Elementwise product.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "hadamard shape"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Frobenius-norm squared (for tests/regularization diagnostics).
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b, false);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transposed_agrees_with_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.3).collect());
        let direct = a.matmul(&b, true);
        let explicit = a.matmul(&b.transposed(), false);
        for (x, y) in direct.data.iter().zip(&explicit.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_normalize() {
        let t = Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = t.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s.at(0, 2) > s.at(0, 1));
    }

    #[test]
    fn broadcast_add() {
        let t = Tensor::zeros(2, 2);
        let row = Tensor::from_vec(1, 2, vec![1., 2.]);
        let out = t.add_row_broadcast(&row);
        assert_eq!(out.data, vec![1., 2., 1., 2.]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dim")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(4, 2);
        let _ = a.matmul(&b, false);
    }

    /// Deterministic pseudo-random fill (splitmix64) with zeros and negative
    /// values mixed in, so the scalar kernel's zero-skip branch is exercised.
    fn fill(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut state = seed;
        let data = (0..rows * cols)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                if z % 5 == 0 {
                    0.0
                } else {
                    ((z >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                }
            })
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    #[test]
    fn tiled_kernels_agree_exactly_with_scalar_on_shape_grid() {
        // Shapes straddle the tile sizes (TILE_K = 64, ROW_BLOCK = 16) and
        // include dims not divisible by either.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (16, 64, 16),
            (17, 65, 19),
            (33, 130, 9),
            (40, 200, 23),
            (70, 96, 41),
        ] {
            let a = fill(m, k, 0xA5EED ^ (m * 1000 + k) as u64);
            let b = fill(k, n, 0xB5EED ^ (k * 1000 + n) as u64);
            let bt = fill(n, k, 0xC5EED ^ (n * 1000 + k) as u64);
            for (tiled, scalar) in [
                (a.matmul_block(&b, false, 0, m), a.matmul_scalar(&b, false)),
                (a.matmul_block(&bt, true, 0, m), a.matmul_scalar(&bt, true)),
            ] {
                assert_eq!(tiled.len(), scalar.data.len());
                for (i, (x, y)) in tiled.iter().zip(&scalar.data).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{m}x{k}x{n} elem {i}: tiled {x} vs scalar {y}"
                    );
                }
            }
            // The public entry point (whatever path it dispatches to,
            // including the parallel one) matches the scalar kernel too.
            let via_public = a.matmul(&b, false);
            let scalar = a.matmul_scalar(&b, false);
            assert!(via_public
                .data
                .iter()
                .zip(&scalar.data)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn parallel_matmul_is_bit_identical_across_thread_counts() {
        // Big enough to cross PAR_MIN_WORK and fan out over row blocks.
        let a = fill(96, 80, 1);
        let b = fill(80, 64, 2);
        vega_par::set_threads(1);
        let one = a.matmul(&b, false);
        vega_par::set_threads(4);
        let four = a.matmul(&b, false);
        vega_par::set_threads(0);
        assert!(one
            .data
            .iter()
            .zip(&four.data)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
