//! The SIMD kernel tier: one home for the inner-loop math, with runtime ISA
//! dispatch.
//!
//! Every hot f32 loop in the crate — the matmul kernels in
//! [`Tensor::matmul`](crate::Tensor::matmul), the incremental decoder's
//! per-token row ops, the batched decoder's k-tiled kernel, and the
//! softmax/layer-norm reductions — routes through the [`Kernel`] trait
//! defined here. Two implementations exist:
//!
//! * [`ScalarKernel`] — the original scalar loops, byte-for-byte. This is
//!   the reference semantics: ascending-`k` accumulation, sequential
//!   reductions, and (in the callers) the exact `a == 0.0` skip.
//! * [`Avx2Kernel`] — `std::arch::x86_64` AVX2 intrinsics, selected at
//!   runtime via `is_x86_feature_detected!("avx2")`. On every other
//!   architecture (or when detection fails) the scalar kernel serves.
//!
//! The active kernel is chosen once per process from the `VEGA_KERNEL`
//! environment variable (`auto` | `scalar` | `avx2`, default `auto`);
//! [`set_mode`] re-resolves it for tests and benches.
//!
//! # Determinism contract
//!
//! The repo's signature guarantee — generation is a pure function of
//! (weights, input) — holds **per kernel mode**:
//!
//! * Each mode is individually deterministic: same seed + same mode + any
//!   thread count → bit-identical outputs. The AVX2 reductions use a
//!   *fixed-tree* lane order (4 × 8-lane accumulators over 32-element
//!   blocks, one 8-lane block loop, a sequential scalar tail, then one
//!   fixed horizontal reduction tree), so their result is a pure function
//!   of the input slice — never of timing, alignment, or thread count.
//! * [`Kernel::axpy`] and [`Kernel::fma_tile`] vectorize over the *output*
//!   dimension only: each output element still receives separately-rounded
//!   multiply-then-add contributions in the same order as the scalar loop,
//!   so these ops are **bit-identical across modes** (no FMA contraction).
//!   This keeps the non-transposed matmul paths and most of the decode hot
//!   loop exactly equal to scalar.
//! * [`Kernel::dot`], [`Kernel::sum`], and [`Kernel::sq_diff_sum`] reorder
//!   their accumulation across lanes, so AVX2 results differ from scalar
//!   within floating-point tolerance (pinned by
//!   `crates/nn/tests/kernel_conformance.rs`). [`Kernel::max`] is
//!   order-insensitive on NaN-free data and returns an exact input element.
//! * Within one mode, the graph path, the incremental decoder, and the
//!   batched decoder stay bit-identical to each other: every path calls the
//!   same kernel ops over the same slices. The masked-softmax prefix trick
//!   (exp-underflowed lanes are exact zeros and must be no-ops) is why
//!   [`softmax_row`]'s exp-sum stays sequential in every mode — a lane-tree
//!   sum over a zero tail would *not* be a structural no-op.
//!
//! Because modes differ bitwise, anything keyed on output bytes must carry
//! the mode: serve cache keys embed [`active_name`], and cached artifacts
//! produced under one mode must not be compared bit-for-bit against another
//! (equivalence at tolerance is what the conformance suite pins).

// The AVX2 implementation is the one place (besides `storage`) that needs
// `unsafe`: `#[target_feature]` functions and raw-pointer loads/stores.
#![allow(unsafe_code)]

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicU8, Ordering};

/// `k`-dimension block width of the batched decode kernel's fused step (see
/// [`Kernel::fma_tile`] and `decode::batch_row_matmul_into`).
pub const K_TILE: usize = 8;

// ---------------------------------------------------------------------------
// Mode selection
// ---------------------------------------------------------------------------

/// What the user asked for (`VEGA_KERNEL` / [`set_mode`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Use the best ISA the CPU supports (AVX2 when detected, else scalar).
    Auto,
    /// Force the scalar reference kernel.
    Scalar,
    /// Request AVX2; falls back to scalar (with a logged notice) when the
    /// CPU lacks it.
    Avx2,
}

impl KernelMode {
    /// Parses a `VEGA_KERNEL` value. Unknown strings yield `None`.
    pub fn parse(s: &str) -> Option<KernelMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "auto" => Some(KernelMode::Auto),
            "scalar" => Some(KernelMode::Scalar),
            "avx2" => Some(KernelMode::Avx2),
            _ => None,
        }
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Auto => "auto",
            KernelMode::Scalar => "scalar",
            KernelMode::Avx2 => "avx2",
        }
    }
}

/// The ISA a mode resolved to — what actually executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar loops.
    Scalar,
    /// 8-lane AVX2 (runtime-detected; `x86_64` only).
    Avx2,
}

impl Isa {
    /// Stable lowercase name (embedded in cache keys and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }
}

/// True when this CPU can run the AVX2 kernel.
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

const ISA_UNRESOLVED: u8 = u8::MAX;

/// The resolved ISA, encoded as `Isa as u8`; `ISA_UNRESOLVED` before first
/// use. One relaxed load on the hot path.
static ACTIVE_ISA: AtomicU8 = AtomicU8::new(ISA_UNRESOLVED);

fn resolve(mode: KernelMode) -> Isa {
    match mode {
        KernelMode::Scalar => Isa::Scalar,
        KernelMode::Auto => {
            if avx2_available() {
                Isa::Avx2
            } else {
                Isa::Scalar
            }
        }
        KernelMode::Avx2 => {
            if avx2_available() {
                Isa::Avx2
            } else {
                vega_obs::global().event(
                    vega_obs::Level::Warn,
                    "VEGA_KERNEL=avx2 requested but the CPU lacks AVX2; using scalar",
                );
                Isa::Scalar
            }
        }
    }
}

#[cold]
fn resolve_from_env() -> Isa {
    let mode = match std::env::var("VEGA_KERNEL") {
        Ok(v) => KernelMode::parse(&v).unwrap_or_else(|| {
            vega_obs::global().event(
                vega_obs::Level::Warn,
                format!("unknown VEGA_KERNEL value `{v}` (want auto|scalar|avx2); using auto"),
            );
            KernelMode::Auto
        }),
        Err(_) => KernelMode::Auto,
    };
    let isa = resolve(mode);
    ACTIVE_ISA.store(isa as u8, Ordering::Relaxed);
    isa
}

/// The ISA every kernel op dispatches to. Resolved from `VEGA_KERNEL` on
/// first use; override with [`set_mode`].
#[inline]
pub fn active() -> Isa {
    match ACTIVE_ISA.load(Ordering::Relaxed) {
        0 => Isa::Scalar,
        1 => Isa::Avx2,
        _ => resolve_from_env(),
    }
}

/// [`active`]'s stable name (`"scalar"` | `"avx2"`) — the string serve
/// cache keys and bench rows embed.
pub fn active_name() -> &'static str {
    active().name()
}

/// Re-resolves the active kernel from `mode` (for tests and benches; the
/// process default comes from `VEGA_KERNEL`). Returns what the mode
/// resolved to — [`KernelMode::Avx2`] resolves to [`Isa::Scalar`], with a
/// logged notice, when the CPU lacks AVX2.
///
/// Process-global: concurrent callers race, so tests that switch modes must
/// serialize themselves (the conformance suite holds a lock).
pub fn set_mode(mode: KernelMode) -> Isa {
    let isa = resolve(mode);
    ACTIVE_ISA.store(isa as u8, Ordering::Relaxed);
    isa
}

/// Policy for the dot-form decode logits projection (see
/// [`dot_form_logits`]). `Auto` follows the active ISA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DotForm {
    /// Dot-form iff the active ISA is AVX2 (the default).
    Auto,
    /// Always project via pre-transposed `dot` rows.
    On,
    /// Always project via the axpy-form row matmul.
    Off,
}

const DOT_FORM_UNRESOLVED: u8 = u8::MAX;
/// 0 = Off, 1 = On, 2 = Auto, `DOT_FORM_UNRESOLVED` before the first use
/// reads `VEGA_DOT_FORM`.
static DOT_FORM: AtomicU8 = AtomicU8::new(DOT_FORM_UNRESOLVED);

/// Whether decode logits should use the *dot-form* projection: the output
/// weight pre-transposed to `vocab × d` so each logit is one
/// [`Kernel::dot`]. Worth it only where `dot` beats the axpy-form column
/// sweep — AVX2's fixed-tree lanes win (~1.15× on the committed matmul
/// bench), while the scalar `dot` is a serial dependency chain and loses
/// badly (~4.4× slower). So `Auto` (the default) answers true exactly when
/// [`active`] is [`Isa::Avx2`]. Override with `VEGA_DOT_FORM`
/// (`auto` | `on` | `off`) or [`set_dot_form`]; every decode and
/// graph-reference path branches on this same predicate, so per-mode
/// bit-identity holds on both sides of the switch.
pub fn dot_form_logits() -> bool {
    let policy = match DOT_FORM.load(Ordering::Relaxed) {
        0 => DotForm::Off,
        1 => DotForm::On,
        2 => DotForm::Auto,
        _ => {
            let parsed = match std::env::var("VEGA_DOT_FORM").as_deref() {
                Ok("on") => DotForm::On,
                Ok("off") => DotForm::Off,
                Ok("auto") | Err(_) => DotForm::Auto,
                Ok(other) => {
                    vega_obs::global().event(
                        vega_obs::Level::Warn,
                        &format!("VEGA_DOT_FORM={other} not recognized; using auto"),
                    );
                    DotForm::Auto
                }
            };
            set_dot_form(parsed);
            parsed
        }
    };
    match policy {
        DotForm::On => true,
        DotForm::Off => false,
        DotForm::Auto => matches!(active(), Isa::Avx2),
    }
}

/// Overrides the dot-form logits policy (tests and benches; the process
/// default comes from `VEGA_DOT_FORM`). Process-global, same serialization
/// caveat as [`set_mode`].
pub fn set_dot_form(policy: DotForm) {
    let code = match policy {
        DotForm::Off => 0,
        DotForm::On => 1,
        DotForm::Auto => 2,
    };
    DOT_FORM.store(code, Ordering::Relaxed);
}

/// Dispatches `$body` once over the active kernel, binding `$k` to a
/// monomorphized `&impl Kernel` — hoists the mode check out of inner loops.
macro_rules! with_kernel {
    ($k:ident => $body:expr) => {
        match $crate::kernel::active() {
            $crate::kernel::Isa::Scalar => {
                let $k = &$crate::kernel::ScalarKernel;
                $body
            }
            $crate::kernel::Isa::Avx2 => {
                // Invariant: `active()` returns `Avx2` only after
                // `avx2_available()` succeeded, so the kernel is safe to run.
                let $k = &$crate::kernel::Avx2Kernel::new_unchecked();
                $body
            }
        }
    };
}
pub(crate) use with_kernel;

// ---------------------------------------------------------------------------
// The trait and its two implementations
// ---------------------------------------------------------------------------

/// The inner-loop ops every hot path is built from.
///
/// Implementations must be pure functions of their inputs (no timing or
/// alignment dependence) so each mode is individually deterministic. `axpy`
/// and `fma_tile` must round each output element exactly like the scalar
/// chain (multiply, then add, per `k` in order); the reductions may reorder
/// lanes but must use one fixed order per input length.
pub trait Kernel {
    /// Stable lowercase name.
    fn name(&self) -> &'static str;

    /// Dot product of two equal-length slices.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// `out[i] += a * x[i]` — one rank-1 update row. Bit-identical across
    /// implementations (vectorized over `i` only; separate mul and add).
    fn axpy(&self, a: f32, x: &[f32], out: &mut [f32]);

    /// The fused k-tile step: `out[j] += Σ_t avs[t] * rows[t][j]`,
    /// accumulated per element as a chain in ascending `t` (separately
    /// rounded mul/add — bit-identical to [`K_TILE`] sequential
    /// [`Kernel::axpy`] calls on finite data).
    fn fma_tile(&self, avs: &[f32; K_TILE], rows: &[&[f32]; K_TILE], out: &mut [f32]);

    /// Sum of a slice.
    fn sum(&self, x: &[f32]) -> f32;

    /// `Σ (x[i] - mean)²` — the layer-norm variance numerator.
    fn sq_diff_sum(&self, x: &[f32], mean: f32) -> f32;

    /// Maximum element (`-inf` for an empty slice). NaN handling is
    /// implementation-defined; callers feed finite data.
    fn max(&self, x: &[f32]) -> f32;
}

/// The original scalar loops — the reference semantics every other
/// implementation is measured against.
pub struct ScalarKernel;

impl Kernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    #[inline]
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dot length");
        let mut s = 0.0f32;
        for (&x, &y) in a.iter().zip(b.iter()) {
            s += x * y;
        }
        s
    }

    #[inline]
    fn axpy(&self, a: f32, x: &[f32], out: &mut [f32]) {
        for (o, &xv) in out.iter_mut().zip(x.iter()) {
            *o += a * xv;
        }
    }

    #[inline]
    fn fma_tile(&self, avs: &[f32; K_TILE], rows: &[&[f32]; K_TILE], out: &mut [f32]) {
        for (j, o) in out.iter_mut().enumerate() {
            let mut v = *o;
            v += avs[0] * rows[0][j];
            v += avs[1] * rows[1][j];
            v += avs[2] * rows[2][j];
            v += avs[3] * rows[3][j];
            v += avs[4] * rows[4][j];
            v += avs[5] * rows[5][j];
            v += avs[6] * rows[6][j];
            v += avs[7] * rows[7][j];
            *o = v;
        }
    }

    #[inline]
    fn sum(&self, x: &[f32]) -> f32 {
        let mut s = 0.0f32;
        for &v in x {
            s += v;
        }
        s
    }

    #[inline]
    fn sq_diff_sum(&self, x: &[f32], mean: f32) -> f32 {
        let mut s = 0.0f32;
        for &v in x {
            s += (v - mean) * (v - mean);
        }
        s
    }

    #[inline]
    fn max(&self, x: &[f32]) -> f32 {
        x.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }
}

/// The AVX2 kernel. Only constructible when the CPU supports AVX2
/// ([`Avx2Kernel::new`]), which is what makes calling the
/// `#[target_feature]` functions sound.
pub struct Avx2Kernel(());

impl Avx2Kernel {
    /// The AVX2 kernel, or `None` when the CPU lacks AVX2.
    pub fn new() -> Option<Avx2Kernel> {
        if avx2_available() {
            Some(Avx2Kernel(()))
        } else {
            None
        }
    }

    /// Internal constructor for the dispatch macro, whose `Isa::Avx2` arm
    /// is reachable only after detection succeeded.
    #[inline]
    pub(crate) fn new_unchecked() -> Avx2Kernel {
        debug_assert!(avx2_available(), "Avx2Kernel on a CPU without AVX2");
        Avx2Kernel(())
    }
}

#[cfg(target_arch = "x86_64")]
impl Kernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    #[inline]
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len(), "dot length");
        // SAFETY: `self` exists only if AVX2 was detected.
        unsafe { avx2::dot(a, b) }
    }

    #[inline]
    fn axpy(&self, a: f32, x: &[f32], out: &mut [f32]) {
        // SAFETY: as above.
        unsafe { avx2::axpy(a, x, out) }
    }

    #[inline]
    fn fma_tile(&self, avs: &[f32; K_TILE], rows: &[&[f32]; K_TILE], out: &mut [f32]) {
        // SAFETY: as above.
        unsafe { avx2::fma_tile(avs, rows, out) }
    }

    #[inline]
    fn sum(&self, x: &[f32]) -> f32 {
        // SAFETY: as above.
        unsafe { avx2::sum(x) }
    }

    #[inline]
    fn sq_diff_sum(&self, x: &[f32], mean: f32) -> f32 {
        // SAFETY: as above.
        unsafe { avx2::sq_diff_sum(x, mean) }
    }

    #[inline]
    fn max(&self, x: &[f32]) -> f32 {
        // SAFETY: as above.
        unsafe { avx2::max(x) }
    }
}

/// On non-x86_64 targets the AVX2 kernel is never selected ([`active`]
/// resolves to scalar); the impl delegates so the type still compiles.
#[cfg(not(target_arch = "x86_64"))]
impl Kernel for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        ScalarKernel.dot(a, b)
    }
    fn axpy(&self, a: f32, x: &[f32], out: &mut [f32]) {
        ScalarKernel.axpy(a, x, out)
    }
    fn fma_tile(&self, avs: &[f32; K_TILE], rows: &[&[f32]; K_TILE], out: &mut [f32]) {
        ScalarKernel.fma_tile(avs, rows, out)
    }
    fn sum(&self, x: &[f32]) -> f32 {
        ScalarKernel.sum(x)
    }
    fn sq_diff_sum(&self, x: &[f32], mean: f32) -> f32 {
        ScalarKernel.sq_diff_sum(x, mean)
    }
    fn max(&self, x: &[f32]) -> f32 {
        ScalarKernel.max(x)
    }
}

/// The `std::arch::x86_64` implementations.
///
/// Reduction shape (shared by `dot`/`sum`/`sq_diff_sum`): four 8-lane
/// accumulators consume 32-element blocks, then single 8-lane blocks feed
/// accumulator 0, then the scalar tail is folded in sequentially *after*
/// the fixed horizontal tree `((acc0+acc1)+(acc2+acc3)) → 128-bit halves →
/// pairwise`. The structure depends only on `len`, so results are pure
/// functions of the input — deterministic across runs, threads, and
/// alignments (all loads are unaligned loads).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::K_TILE;
    use std::arch::x86_64::*;

    /// Horizontal sum with a fixed tree: 256→128 halves, then two pairwise
    /// steps.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi);
        let p = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let s = _mm_add_ss(p, _mm_shuffle_ps(p, p, 0b01));
        _mm_cvtss_f32(s)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let (ap, bp) = (a.as_ptr(), b.as_ptr());
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 32 <= n {
            for (t, accv) in acc.iter_mut().enumerate() {
                let av = _mm256_loadu_ps(ap.add(i + 8 * t));
                let bv = _mm256_loadu_ps(bp.add(i + 8 * t));
                *accv = _mm256_add_ps(*accv, _mm256_mul_ps(av, bv));
            }
            i += 32;
        }
        while i + 8 <= n {
            let av = _mm256_loadu_ps(ap.add(i));
            let bv = _mm256_loadu_ps(bp.add(i));
            acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(av, bv));
            i += 8;
        }
        let tree = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut s = hsum(tree);
        while i < n {
            s += a[i] * b[i];
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(a: f32, x: &[f32], out: &mut [f32]) {
        let n = x.len().min(out.len());
        let av = _mm256_set1_ps(a);
        let xp = x.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0;
        // Every element is independent, so unrolling only amortizes loop
        // overhead — it cannot change any element's rounding. Separate
        // mul + add (no FMA) throughout: identical rounding to the scalar
        // chain, element by element.
        while i + 32 <= n {
            let v0 = _mm256_add_ps(
                _mm256_loadu_ps(op.add(i)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i))),
            );
            let v1 = _mm256_add_ps(
                _mm256_loadu_ps(op.add(i + 8)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i + 8))),
            );
            let v2 = _mm256_add_ps(
                _mm256_loadu_ps(op.add(i + 16)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i + 16))),
            );
            let v3 = _mm256_add_ps(
                _mm256_loadu_ps(op.add(i + 24)),
                _mm256_mul_ps(av, _mm256_loadu_ps(xp.add(i + 24))),
            );
            _mm256_storeu_ps(op.add(i), v0);
            _mm256_storeu_ps(op.add(i + 8), v1);
            _mm256_storeu_ps(op.add(i + 16), v2);
            _mm256_storeu_ps(op.add(i + 24), v3);
            i += 32;
        }
        while i + 8 <= n {
            let xv = _mm256_loadu_ps(xp.add(i));
            let ov = _mm256_loadu_ps(op.add(i));
            _mm256_storeu_ps(op.add(i), _mm256_add_ps(ov, _mm256_mul_ps(av, xv)));
            i += 8;
        }
        while i < n {
            out[i] += a * x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn fma_tile(avs: &[f32; K_TILE], rows: &[&[f32]; K_TILE], out: &mut [f32]) {
        let n = out.len();
        let avv: [__m256; K_TILE] = std::array::from_fn(|t| _mm256_set1_ps(avs[t]));
        let op = out.as_mut_ptr();
        let mut j = 0;
        // Four independent 8-lane chains per iteration: each output vector's
        // eight adds form a serial dependency (latency-bound on their own),
        // so interleaving more vectors hides the add latency until the load
        // ports bind instead — without touching any single chain's order.
        while j + 32 <= n {
            let mut v0 = _mm256_loadu_ps(op.add(j));
            let mut v1 = _mm256_loadu_ps(op.add(j + 8));
            let mut v2 = _mm256_loadu_ps(op.add(j + 16));
            let mut v3 = _mm256_loadu_ps(op.add(j + 24));
            for t in 0..K_TILE {
                let rp = rows[t].as_ptr();
                v0 = _mm256_add_ps(v0, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j))));
                v1 = _mm256_add_ps(v1, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j + 8))));
                v2 = _mm256_add_ps(v2, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j + 16))));
                v3 = _mm256_add_ps(v3, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j + 24))));
            }
            _mm256_storeu_ps(op.add(j), v0);
            _mm256_storeu_ps(op.add(j + 8), v1);
            _mm256_storeu_ps(op.add(j + 16), v2);
            _mm256_storeu_ps(op.add(j + 24), v3);
            j += 32;
        }
        while j + 16 <= n {
            let mut v0 = _mm256_loadu_ps(op.add(j));
            let mut v1 = _mm256_loadu_ps(op.add(j + 8));
            for t in 0..K_TILE {
                let rp = rows[t].as_ptr();
                v0 = _mm256_add_ps(v0, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j))));
                v1 = _mm256_add_ps(v1, _mm256_mul_ps(avv[t], _mm256_loadu_ps(rp.add(j + 8))));
            }
            _mm256_storeu_ps(op.add(j), v0);
            _mm256_storeu_ps(op.add(j + 8), v1);
            j += 16;
        }
        while j + 8 <= n {
            let mut v = _mm256_loadu_ps(op.add(j));
            for t in 0..K_TILE {
                let rv = _mm256_loadu_ps(rows[t].as_ptr().add(j));
                v = _mm256_add_ps(v, _mm256_mul_ps(avv[t], rv));
            }
            _mm256_storeu_ps(op.add(j), v);
            j += 8;
        }
        while j < n {
            let mut v = out[j];
            for t in 0..K_TILE {
                v += avs[t] * rows[t][j];
            }
            out[j] = v;
            j += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sum(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 32 <= n {
            for (t, accv) in acc.iter_mut().enumerate() {
                *accv = _mm256_add_ps(*accv, _mm256_loadu_ps(xp.add(i + 8 * t)));
            }
            i += 32;
        }
        while i + 8 <= n {
            acc[0] = _mm256_add_ps(acc[0], _mm256_loadu_ps(xp.add(i)));
            i += 8;
        }
        let tree = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut s = hsum(tree);
        while i < n {
            s += x[i];
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sq_diff_sum(x: &[f32], mean: f32) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mv = _mm256_set1_ps(mean);
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i + 32 <= n {
            for (t, accv) in acc.iter_mut().enumerate() {
                let d = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i + 8 * t)), mv);
                *accv = _mm256_add_ps(*accv, _mm256_mul_ps(d, d));
            }
            i += 32;
        }
        while i + 8 <= n {
            let d = _mm256_sub_ps(_mm256_loadu_ps(xp.add(i)), mv);
            acc[0] = _mm256_add_ps(acc[0], _mm256_mul_ps(d, d));
            i += 8;
        }
        let tree = _mm256_add_ps(_mm256_add_ps(acc[0], acc[1]), _mm256_add_ps(acc[2], acc[3]));
        let mut s = hsum(tree);
        while i < n {
            s += (x[i] - mean) * (x[i] - mean);
            i += 1;
        }
        s
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn max(x: &[f32]) -> f32 {
        let n = x.len();
        let xp = x.as_ptr();
        let mut i = 0;
        let mut m = f32::NEG_INFINITY;
        if n >= 8 {
            let mut acc = _mm256_set1_ps(f32::NEG_INFINITY);
            while i + 8 <= n {
                acc = _mm256_max_ps(acc, _mm256_loadu_ps(xp.add(i)));
                i += 8;
            }
            let lo = _mm256_castps256_ps128(acc);
            let hi = _mm256_extractf128_ps(acc, 1);
            let q = _mm_max_ps(lo, hi);
            let p = _mm_max_ps(q, _mm_movehl_ps(q, q));
            let s = _mm_max_ss(p, _mm_shuffle_ps(p, p, 0b01));
            m = _mm_cvtss_f32(s);
        }
        while i < n {
            m = m.max(x[i]);
            i += 1;
        }
        m
    }
}

// ---------------------------------------------------------------------------
// Shared row ops (the single home of the scalar semantics)
// ---------------------------------------------------------------------------

/// `out = a · b` for a single row `a` (len `b.rows`), accumulating in
/// ascending `k` with the exact `a[k] == 0.0` skip — the semantics every
/// matmul path shares. Used for weight products (`b` a weight matrix) and
/// attention-weighted value sums (`b` a K/V cache, where softmax lanes that
/// underflowed to exact zero must be exact no-ops).
///
/// Kept as a plain per-`k` [`Kernel::axpy`] loop rather than the
/// [`Kernel::fma_tile`] tiling the batched path uses: single-row outputs
/// here are short (d_model-ish), so the chained-add tile is latency-bound
/// and measured slower on AVX2, while the zero-skip matters (softmax tails).
pub fn row_matmul_into(a: &[f32], b: &Tensor, out: &mut [f32]) {
    // `<=` rather than `==`: multi-position decode ([`DecodeState::step_many`])
    // attends each position over a causal *prefix* of a K/V cache that
    // already holds the whole chunk's rows. The loop below only ever reads
    // rows `< a.len()`, so trailing rows of `b` are simply ignored.
    debug_assert!(a.len() <= b.rows, "row matmul inner dim");
    debug_assert_eq!(out.len(), b.cols, "row matmul out dim");
    out.fill(0.0);
    with_kernel!(kr => {
        for (k, &av) in a.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            kr.axpy(av, b.row(k), out);
        }
    });
}

/// Dot product under the active kernel (ascending index order in scalar
/// mode; fixed-tree lanes under AVX2).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    with_kernel!(kr => kr.dot(a, b))
}

/// Sum under the active kernel.
#[inline]
pub fn sum(x: &[f32]) -> f32 {
    with_kernel!(kr => kr.sum(x))
}

/// Max under the active kernel (NaN-free data).
#[inline]
pub fn max(x: &[f32]) -> f32 {
    with_kernel!(kr => kr.max(x))
}

/// In-place softmax over one row: max, exponentiate accumulating the sum,
/// divide.
///
/// The exp-sum is **sequential in every mode**: the graph path softmaxes
/// full rows whose causally-masked lanes underflow to exact `0.0`, while
/// the decode path softmaxes only the live prefix — a sequential sum over
/// an exact-zero tail is a chain of exact no-ops, so the two agree bit for
/// bit; a lane-tree sum would place live elements into different chains and
/// break that. The max may use lanes (it returns an exact element), and the
/// divides are per-element (vector division rounds identically to scalar).
pub fn softmax_row(row: &mut [f32]) {
    let maxv = max(row);
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = (*v - maxv).exp();
        sum += *v;
    }
    for v in row.iter_mut() {
        *v /= sum;
    }
}

/// Row-wise layer norm (`(x - mean) / std * gain + bias`, EPS `1e-5`),
/// returning `(mean, std)` for the autograd backward cache. The mean and
/// variance reductions dispatch on the active kernel; the normalization is
/// per-element.
pub fn layer_norm_row(x: &[f32], gain: &[f32], bias: &[f32], out: &mut [f32]) -> (f32, f32) {
    const EPS: f32 = 1e-5;
    let d = x.len() as f32;
    with_kernel!(kr => {
        let mean = kr.sum(x) / d;
        let var = kr.sq_diff_sum(x, mean) / d;
        let std = (var + EPS).sqrt();
        for c in 0..x.len() {
            out[c] = (x[c] - mean) / std * gain[c] + bias[c];
        }
        (mean, std)
    })
}

/// `x += y` elementwise (order-free; identical in every mode).
pub fn add_assign(x: &mut [f32], y: &[f32]) {
    for (a, b) in x.iter_mut().zip(y.iter()) {
        *a += *b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(KernelMode::parse("auto"), Some(KernelMode::Auto));
        assert_eq!(KernelMode::parse(""), Some(KernelMode::Auto));
        assert_eq!(KernelMode::parse("Scalar"), Some(KernelMode::Scalar));
        assert_eq!(KernelMode::parse(" AVX2 "), Some(KernelMode::Avx2));
        assert_eq!(KernelMode::parse("neon"), None);
        assert_eq!(KernelMode::Avx2.name(), "avx2");
    }

    #[test]
    fn scalar_kernel_reference_values() {
        let k = ScalarKernel;
        assert_eq!(k.dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(k.sum(&[1.0, 2.0, 3.0]), 6.0);
        assert_eq!(k.max(&[1.0, -2.0, 3.0]), 3.0);
        assert_eq!(k.max(&[]), f32::NEG_INFINITY);
        assert_eq!(k.sq_diff_sum(&[1.0, 3.0], 2.0), 2.0);
        let mut out = [1.0f32, 1.0];
        k.axpy(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, [7.0, 9.0]);
    }

    #[test]
    fn avx2_resolution_falls_back_when_unavailable() {
        // On machines with AVX2 this resolves to Avx2; elsewhere it must
        // fall back to Scalar (with a notice) rather than fault.
        let isa = resolve(KernelMode::Avx2);
        if avx2_available() {
            assert_eq!(isa, Isa::Avx2);
            assert!(Avx2Kernel::new().is_some());
        } else {
            assert_eq!(isa, Isa::Scalar);
            assert!(Avx2Kernel::new().is_none());
        }
        assert_eq!(resolve(KernelMode::Scalar), Isa::Scalar);
    }
}
