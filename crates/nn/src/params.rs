//! Parameter storage and the Adam optimizer.

use crate::tensor::Tensor;
use vega_obs::json::{Json, JsonError};

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// A named collection of trainable tensors with gradients and Adam state.
/// Serialization keeps names, values, and the step count; gradient and Adam
/// buffers are transient and reset to zero on load.
#[derive(Debug, Clone)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
    grads: Vec<Tensor>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    step_count: u64,
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore {
            names: Vec::new(),
            tensors: Vec::new(),
            grads: Vec::new(),
            m: Vec::new(),
            v: Vec::new(),
            step_count: 0,
        }
    }

    /// Registers a parameter tensor under `name`.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        let id = ParamId(self.tensors.len());
        self.names.push(name.into());
        self.grads.push(Tensor::zeros(t.rows, t.cols));
        self.m.push(Tensor::zeros(t.rows, t.cols));
        self.v.push(Tensor::zeros(t.rows, t.cols));
        self.tensors.push(t);
        id
    }

    /// Reads a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access (tests, manual surgery).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// Accumulates `grad` into the parameter's gradient buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        let g = &mut self.grads[id.0];
        assert_eq!((g.rows, g.cols), (grad.rows, grad.cols), "grad shape");
        for (a, b) in g.data.iter_mut().zip(&grad.data) {
            *a += b;
        }
    }

    /// Reads the accumulated gradient (tests).
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Moves the accumulated gradients out, leaving zeroed buffers behind —
    /// the worker side of data-parallel training: a cloned replica trains on
    /// its shard, then hands its gradients back for an ordered merge.
    pub fn take_grads(&mut self) -> Vec<Tensor> {
        let zeros: Vec<Tensor> = self
            .grads
            .iter()
            .map(|g| Tensor::zeros(g.rows, g.cols))
            .collect();
        std::mem::replace(&mut self.grads, zeros)
    }

    /// Accumulates a full gradient set (as produced by
    /// [`ParamStore::take_grads`] on a replica) into this store's buffers.
    /// Callers merge shards in a fixed order so the f32 sum is reproducible.
    ///
    /// # Panics
    /// Panics on tensor count or shape mismatch.
    pub fn merge_grads(&mut self, grads: &[Tensor]) {
        assert_eq!(grads.len(), self.grads.len(), "grad tensor count");
        for (mine, theirs) in self.grads.iter_mut().zip(grads) {
            assert_eq!(
                (mine.rows, mine.cols),
                (theirs.rows, theirs.cols),
                "grad shape"
            );
            for (a, b) in mine.data.iter_mut().zip(&theirs.data) {
                *a += b;
            }
        }
    }

    /// Clears all gradient buffers.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grads {
            g.data.fill(0.0);
        }
    }

    /// One Adam step (β₁=0.9, β₂=0.999, ε=1e-8) with gradient clipping at
    /// global norm 5, then clears gradients.
    pub fn adam_step(&mut self, lr: f32) {
        vega_obs::global().counter_add("nn.train_steps", 1);
        self.step_count += 1;
        let t = self.step_count as f32;
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        // Global-norm clip.
        let total: f32 = self.grads.iter().map(Tensor::norm_sq).sum();
        let norm = total.sqrt();
        let clip = if norm > 5.0 { 5.0 / norm } else { 1.0 };
        for i in 0..self.tensors.len() {
            let g = &self.grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = &mut self.tensors[i];
            for j in 0..g.data.len() {
                let gj = g.data[j] * clip;
                m.data[j] = b1 * m.data[j] + (1.0 - b1) * gj;
                v.data[j] = b2 * v.data[j] + (1.0 - b2) * gj * gj;
                let mhat = m.data[j] / (1.0 - b1.powf(t));
                let vhat = v.data[j] / (1.0 - b2.powf(t));
                p.data[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        self.zero_grad();
    }

    /// Number of parameters (scalar count across all tensors).
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(|t| t.data.len()).sum()
    }

    /// Serializes the parameter values to JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Serializes to a JSON value for embedding in a larger document.
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "names",
                Json::Arr(self.names.iter().map(Json::str).collect()),
            ),
            (
                "tensors",
                Json::Arr(self.tensors.iter().map(Tensor::to_json_value).collect()),
            ),
            ("step_count", Json::num_u64(self.step_count)),
        ])
    }

    /// Restores a store from [`ParamStore::to_json`] output; optimizer state
    /// is reset.
    ///
    /// # Errors
    /// Returns an error if the JSON does not describe a `ParamStore`.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(s)?)
    }

    /// Restores a store from [`ParamStore::to_json_value`] output.
    pub(crate) fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let names = v
            .field("names")?
            .as_array()?
            .iter()
            .map(|n| Ok(n.as_str()?.to_string()))
            .collect::<Result<Vec<String>, JsonError>>()?;
        let tensors = v
            .field("tensors")?
            .as_array()?
            .iter()
            .map(Tensor::from_json_value)
            .collect::<Result<Vec<Tensor>, JsonError>>()?;
        if names.len() != tensors.len() {
            return Err(JsonError {
                msg: "names/tensors length mismatch".into(),
            });
        }
        let step_count = v.field("step_count")?.as_u64()?;
        let grads: Vec<Tensor> = tensors
            .iter()
            .map(|t| Tensor::zeros(t.rows, t.cols))
            .collect();
        Ok(ParamStore {
            names,
            m: grads.clone(),
            v: grads.clone(),
            grads,
            tensors,
            step_count,
        })
    }
}

/// A deterministic uniform initializer (Xavier/Glorot range) based on
/// splitmix64, so weights are identical across platforms.
#[derive(Debug, Clone)]
pub struct Init {
    state: u64,
}

impl Init {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Init {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_f32(&mut self) -> f32 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Uniform in [0, 1).
        (z >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Xavier-uniform tensor of the given shape.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> Tensor {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| (self.next_f32() * 2.0 - 1.0) * bound)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Zeros (for biases).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::zeros(rows, cols)
    }

    /// Ones (for layer-norm gains).
    pub fn ones(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(rows, cols, vec![1.0; rows * cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 elementwise.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 4));
        for _ in 0..400 {
            let w = store.value(id).clone();
            let grad = Tensor::from_vec(1, 4, w.data.iter().map(|v| 2.0 * (v - 3.0)).collect());
            store.accumulate_grad(id, &grad);
            store.adam_step(0.05);
        }
        for v in &store.value(id).data {
            assert!((v - 3.0).abs() < 0.05, "w = {v}");
        }
    }

    #[test]
    fn json_roundtrip_preserves_values() {
        let mut store = ParamStore::new();
        let mut init = Init::new(9);
        let id = store.add("w", init.xavier(3, 5));
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.value(id), store.value(id));
        assert_eq!(restored.num_scalars(), 15);
    }

    #[test]
    fn init_is_deterministic_and_bounded() {
        let a = Init::new(1).xavier(4, 4);
        let b = Init::new(1).xavier(4, 4);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f32).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= bound));
        assert!(a.data.iter().any(|v| v.abs() > 1e-4));
    }
}
