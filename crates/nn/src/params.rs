//! Parameter storage and the Adam optimizer.

use crate::storage::{ByteRegion, TensorTable};
use crate::tensor::Tensor;
use std::sync::Arc;
use vega_obs::json::{Json, JsonError};

/// Handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Gradient and Adam moment buffers — allocated lazily on the first training
/// touch so inference replicas (which only ever read weights) never pay the
/// 3× model-size allocation.
#[derive(Debug, Clone)]
struct TrainState {
    grads: Vec<Tensor>,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// A named collection of trainable tensors with gradients and Adam state.
/// Serialization keeps names, values, and the step count; gradient and Adam
/// buffers are transient — they are reset on load and **not cloned** (a clone
/// is a fresh replica: it reads the same weights, cheaply when they are
/// shared views, and grows its own zeroed training buffers on first use).
#[derive(Debug)]
pub struct ParamStore {
    names: Vec<String>,
    tensors: Vec<Tensor>,
    train: Option<Box<TrainState>>,
    step_count: u64,
    /// Bumped on every value mutation ([`ParamStore::adam_step`],
    /// [`ParamStore::value_mut`]). Derived-weight caches (the pre-transposed
    /// decode output projection) key on this to know when to rebuild.
    /// Transient: not serialized, and meaningful only within one store
    /// instance — two stores can share an epoch number with different
    /// values, which is why caches must never outlive their store.
    epoch: u64,
}

impl Clone for ParamStore {
    fn clone(&self) -> Self {
        ParamStore {
            names: self.names.clone(),
            tensors: self.tensors.clone(),
            train: None,
            step_count: self.step_count,
            epoch: self.epoch,
        }
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        ParamStore {
            names: Vec::new(),
            tensors: Vec::new(),
            train: None,
            step_count: 0,
            epoch: 0,
        }
    }

    /// The value-mutation epoch: bumped whenever parameter values may have
    /// changed in place. Derived-weight caches compare this against the epoch
    /// they were built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Registers a parameter tensor under `name`.
    pub fn add(&mut self, name: impl Into<String>, t: Tensor) -> ParamId {
        let id = ParamId(self.tensors.len());
        self.names.push(name.into());
        if let Some(tr) = &mut self.train {
            tr.grads.push(Tensor::zeros(t.rows, t.cols));
            tr.m.push(Tensor::zeros(t.rows, t.cols));
            tr.v.push(Tensor::zeros(t.rows, t.cols));
        }
        self.tensors.push(t);
        id
    }

    /// Allocates zeroed gradient/Adam buffers if missing.
    fn ensure_train(&mut self) -> &mut TrainState {
        if self.train.is_none() {
            let zeros: Vec<Tensor> = self
                .tensors
                .iter()
                .map(|t| Tensor::zeros(t.rows, t.cols))
                .collect();
            self.train = Some(Box::new(TrainState {
                grads: zeros.clone(),
                m: zeros.clone(),
                v: zeros,
            }));
        }
        self.train.as_mut().expect("just ensured")
    }

    /// Reads a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access (tests, manual surgery). Copy-on-write for shared
    /// weights happens inside the tensor's mutating accessors, not here.
    /// Bumps the mutation epoch pessimistically — the caller holds a `&mut`
    /// it can write through whether or not it actually does.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.epoch += 1;
        &mut self.tensors[id.0]
    }

    /// Accumulates `grad` into the parameter's gradient buffer.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, grad: &Tensor) {
        let g = &mut self.ensure_train().grads[id.0];
        assert_eq!((g.rows, g.cols), (grad.rows, grad.cols), "grad shape");
        for (a, b) in g.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *a += b;
        }
    }

    /// Reads the accumulated gradient (tests).
    ///
    /// # Panics
    /// Panics if no gradient has been accumulated yet (training buffers are
    /// lazy).
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self
            .train
            .as_ref()
            .expect("no training state: no gradient was ever accumulated")
            .grads[id.0]
    }

    /// Moves the accumulated gradients out, leaving zeroed buffers behind —
    /// the worker side of data-parallel training: a cloned replica trains on
    /// its shard, then hands its gradients back for an ordered merge. An
    /// untouched store hands back zeros.
    pub fn take_grads(&mut self) -> Vec<Tensor> {
        let zeros: Vec<Tensor> = self
            .tensors
            .iter()
            .map(|t| Tensor::zeros(t.rows, t.cols))
            .collect();
        match &mut self.train {
            Some(tr) => std::mem::replace(&mut tr.grads, zeros),
            None => zeros,
        }
    }

    /// Accumulates a full gradient set (as produced by
    /// [`ParamStore::take_grads`] on a replica) into this store's buffers.
    /// Callers merge shards in a fixed order so the f32 sum is reproducible.
    ///
    /// # Panics
    /// Panics on tensor count or shape mismatch.
    pub fn merge_grads(&mut self, grads: &[Tensor]) {
        let tr = self.ensure_train();
        assert_eq!(grads.len(), tr.grads.len(), "grad tensor count");
        for (mine, theirs) in tr.grads.iter_mut().zip(grads) {
            assert_eq!(
                (mine.rows, mine.cols),
                (theirs.rows, theirs.cols),
                "grad shape"
            );
            for (a, b) in mine.as_mut_slice().iter_mut().zip(theirs.as_slice()) {
                *a += b;
            }
        }
    }

    /// Clears all gradient buffers.
    pub fn zero_grad(&mut self) {
        if let Some(tr) = &mut self.train {
            for g in &mut tr.grads {
                g.as_mut_slice().fill(0.0);
            }
        }
    }

    /// One Adam step (β₁=0.9, β₂=0.999, ε=1e-8) with gradient clipping at
    /// global norm 5, then clears gradients. Updating a shared (mapped)
    /// weight detaches it into owned storage first — the mapping itself is
    /// never written.
    pub fn adam_step(&mut self, lr: f32) {
        vega_obs::global().counter_add("nn.train_steps", 1);
        self.ensure_train();
        self.step_count += 1;
        self.epoch += 1;
        let t = self.step_count as f32;
        let (b1, b2, eps) = (0.9f32, 0.999f32, 1e-8f32);
        let tr = self.train.as_mut().expect("ensured above");
        // Global-norm clip.
        let total: f32 = tr.grads.iter().map(Tensor::norm_sq).sum();
        let norm = total.sqrt();
        let clip = if norm > 5.0 { 5.0 / norm } else { 1.0 };
        for i in 0..self.tensors.len() {
            // Split the grads/m/v borrows explicitly — they are disjoint
            // fields, which the compiler can't see through repeated indexing
            // on `tr`.
            let TrainState { grads, m, v } = &mut **tr;
            let g = grads[i].as_slice();
            let m = m[i].as_mut_slice();
            let v = v[i].as_mut_slice();
            let p = self.tensors[i].as_mut_slice();
            for j in 0..g.len() {
                let gj = g[j] * clip;
                m[j] = b1 * m[j] + (1.0 - b1) * gj;
                v[j] = b2 * v[j] + (1.0 - b2) * gj * gj;
                let mhat = m[j] / (1.0 - b1.powf(t));
                let vhat = v[j] / (1.0 - b2.powf(t));
                p[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
        self.zero_grad();
    }

    /// Number of parameters (scalar count across all tensors).
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Scalar count held in *owned* storage (the rest are views into a
    /// shared region). A freshly mapped model reports 0; after fine-tuning,
    /// every updated tensor has detached and counts here.
    pub fn owned_scalars(&self) -> usize {
        self.tensors
            .iter()
            .filter(|t| !t.is_shared())
            .map(|t| t.len())
            .sum()
    }

    /// Serializes the parameter values to JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }

    /// Serializes to a JSON value for embedding in a larger document.
    pub(crate) fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "names",
                Json::Arr(self.names.iter().map(Json::str).collect()),
            ),
            (
                "tensors",
                Json::Arr(self.tensors.iter().map(Tensor::to_json_value).collect()),
            ),
            ("step_count", Json::num_u64(self.step_count)),
        ])
    }

    /// Like [`ParamStore::to_json_value`], but tensor values go to the v2
    /// data region `table` and the JSON keeps only `{rows, cols, off}`
    /// descriptors.
    pub(crate) fn to_json_value_tabled(&self, table: &mut TensorTable) -> Json {
        Json::obj([
            (
                "names",
                Json::Arr(self.names.iter().map(Json::str).collect()),
            ),
            (
                "tensors",
                Json::Arr(
                    self.tensors
                        .iter()
                        .map(|t| t.to_table_entry(table))
                        .collect(),
                ),
            ),
            ("step_count", Json::num_u64(self.step_count)),
        ])
    }

    /// Restores a store from [`ParamStore::to_json`] output; optimizer state
    /// is reset.
    ///
    /// # Errors
    /// Returns an error if the JSON does not describe a `ParamStore`.
    pub fn from_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(s)?)
    }

    fn parse_names(v: &Json) -> Result<Vec<String>, JsonError> {
        v.field("names")?
            .as_array()?
            .iter()
            .map(|n| Ok(n.as_str()?.to_string()))
            .collect()
    }

    fn assemble(
        names: Vec<String>,
        tensors: Vec<Tensor>,
        step_count: u64,
    ) -> Result<Self, JsonError> {
        if names.len() != tensors.len() {
            return Err(JsonError {
                msg: "names/tensors length mismatch".into(),
            });
        }
        Ok(ParamStore {
            names,
            tensors,
            train: None,
            step_count,
            epoch: 0,
        })
    }

    /// Restores a store from [`ParamStore::to_json_value`] output.
    pub(crate) fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let names = Self::parse_names(v)?;
        let tensors = v
            .field("tensors")?
            .as_array()?
            .iter()
            .map(Tensor::from_json_value)
            .collect::<Result<Vec<Tensor>, JsonError>>()?;
        let step_count = v.field("step_count")?.as_u64()?;
        Self::assemble(names, tensors, step_count)
    }

    /// Restores a store whose tensors are shared views into `region` (the
    /// mapped v2 checkpoint), with the data section at byte `data_base`.
    pub(crate) fn from_json_value_tabled(
        v: &Json,
        region: &Arc<ByteRegion>,
        data_base: usize,
    ) -> Result<Self, JsonError> {
        let names = Self::parse_names(v)?;
        let tensors = v
            .field("tensors")?
            .as_array()?
            .iter()
            .map(|t| Tensor::from_table_entry(t, region, data_base))
            .collect::<Result<Vec<Tensor>, JsonError>>()?;
        let step_count = v.field("step_count")?.as_u64()?;
        Self::assemble(names, tensors, step_count)
    }
}

/// Lazily-built, epoch-keyed cache of a decode output projection
/// pre-transposed to `vocab × d`, so the dot-form logits path reads one
/// contiguous weight row per vocab id. Shared via `Arc` so a decode state
/// snapshots it once for a whole generation. A clone starts empty: epochs
/// are meaningful only within one store instance, so a cached tensor must
/// never migrate to a different store (two independently trained clones can
/// reach the same epoch number with different weights).
#[derive(Debug, Default)]
pub(crate) struct OutProjCache {
    slot: std::sync::Mutex<Option<(u64, Arc<Tensor>)>>,
}

impl Clone for OutProjCache {
    fn clone(&self) -> Self {
        OutProjCache::default()
    }
}

impl OutProjCache {
    /// The transposed value of `id`, rebuilt if `store` has mutated since it
    /// was last built.
    pub(crate) fn get(&self, store: &ParamStore, id: ParamId) -> Arc<Tensor> {
        let mut slot = self.slot.lock().expect("out-proj cache poisoned");
        let epoch = store.epoch();
        if let Some((e, t)) = slot.as_ref() {
            if *e == epoch {
                return Arc::clone(t);
            }
        }
        let t = Arc::new(store.value(id).transposed());
        *slot = Some((epoch, Arc::clone(&t)));
        t
    }
}

/// A deterministic uniform initializer (Xavier/Glorot range) based on
/// splitmix64, so weights are identical across platforms.
#[derive(Debug, Clone)]
pub struct Init {
    state: u64,
}

impl Init {
    /// Creates an initializer from a seed.
    pub fn new(seed: u64) -> Self {
        Init {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_f32(&mut self) -> f32 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Uniform in [0, 1).
        (z >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Xavier-uniform tensor of the given shape.
    pub fn xavier(&mut self, rows: usize, cols: usize) -> Tensor {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| (self.next_f32() * 2.0 - 1.0) * bound)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Zeros (for biases).
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::zeros(rows, cols)
    }

    /// Ones (for layer-norm gains).
    pub fn ones(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(rows, cols, vec![1.0; rows * cols])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 elementwise.
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 4));
        for _ in 0..400 {
            let w = store.value(id).clone();
            let grad =
                Tensor::from_vec(1, 4, w.as_slice().iter().map(|v| 2.0 * (v - 3.0)).collect());
            store.accumulate_grad(id, &grad);
            store.adam_step(0.05);
        }
        for v in store.value(id).as_slice() {
            assert!((v - 3.0).abs() < 0.05, "w = {v}");
        }
    }

    #[test]
    fn json_roundtrip_preserves_values() {
        let mut store = ParamStore::new();
        let mut init = Init::new(9);
        let id = store.add("w", init.xavier(3, 5));
        let json = store.to_json();
        let restored = ParamStore::from_json(&json).unwrap();
        assert_eq!(restored.value(id), store.value(id));
        assert_eq!(restored.num_scalars(), 15);
    }

    #[test]
    fn init_is_deterministic_and_bounded() {
        let a = Init::new(1).xavier(4, 4);
        let b = Init::new(1).xavier(4, 4);
        assert_eq!(a, b);
        let bound = (6.0 / 8.0f32).sqrt();
        assert!(a.as_slice().iter().all(|v| v.abs() <= bound));
        assert!(a.as_slice().iter().any(|v| v.abs() > 1e-4));
    }

    #[test]
    fn clone_drops_training_state_but_training_still_works() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(1, 2));
        store.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let mut replica = store.clone();
        // The clone starts with fresh (no) training buffers...
        assert_eq!(replica.take_grads()[0].as_slice(), &[0.0, 0.0]);
        // ...and can train independently.
        replica.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![0.5, 0.5]));
        assert_eq!(replica.grad(id).as_slice(), &[0.5, 0.5]);
        // The original kept its accumulated gradient.
        assert_eq!(store.grad(id).as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn tabled_roundtrip_preserves_values_bit_for_bit() {
        let mut store = ParamStore::new();
        let mut init = Init::new(42);
        let a = store.add("a", init.xavier(4, 7));
        let b = store.add("b", init.xavier(1, 9));
        let mut table = TensorTable::new();
        let header = store.to_json_value_tabled(&mut table);
        let region = Arc::new(ByteRegion::from_bytes(&table.into_bytes()));
        let restored = ParamStore::from_json_value_tabled(&header, &region, 0).unwrap();
        assert_eq!(restored.num_scalars(), store.num_scalars());
        for id in [a, b] {
            assert!(restored
                .value(id)
                .as_slice()
                .iter()
                .zip(store.value(id).as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
        #[cfg(target_endian = "little")]
        assert_eq!(restored.owned_scalars(), 0, "tabled load shares storage");
    }
}
