//! The common interface of the sequence-to-sequence models (transformer and
//! the RNN ablation baseline) plus a small training driver.

/// A trainable sequence-to-sequence model.
pub trait Seq2Seq {
    /// Teacher-forced loss on one `(source, shifted-target-in, target-out)`
    /// pair; gradients are accumulated (call [`Seq2Seq::step`] to apply).
    fn train_pair(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32;

    /// Applies one optimizer step with learning rate `lr` and clears grads.
    fn step(&mut self, lr: f32);

    /// Moves the accumulated parameter gradients out of the model, zeroing
    /// its buffers — the worker side of data-parallel training (a cloned
    /// replica trains on its shard, then its gradients are merged back).
    fn take_grads(&mut self) -> Vec<crate::tensor::Tensor>;

    /// Accumulates a gradient set produced by [`Seq2Seq::take_grads`] on a
    /// replica. Merge shards in a fixed order for reproducible f32 sums.
    fn merge_grads(&mut self, grads: &[crate::tensor::Tensor]);

    /// Greedy decoding: starts from `bos`, stops at `eos` or `max_len`.
    /// Returns the generated ids (without `bos`/`eos`).
    fn greedy(&mut self, src: &[usize], bos: usize, eos: usize, max_len: usize) -> Vec<usize>;

    /// Serializes the model (architecture + weights) to JSON.
    fn save_json(&self) -> String;

    /// Teacher-forced log-probability of `tgt_out` given `src` and the
    /// shifted decoder input `tgt_in` (no gradients). Used for constrained
    /// decoding: scoring candidate realizations of a template.
    fn forced_logprob(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32;

    /// Log-probability of emitting `tgt` (with BOS/EOS handling) given `src`.
    fn sequence_logprob(&mut self, src: &[usize], tgt: &[usize], bos: usize, eos: usize) -> f32 {
        let mut tgt_in = Vec::with_capacity(tgt.len() + 1);
        tgt_in.push(bos);
        tgt_in.extend_from_slice(tgt);
        let mut tgt_out = tgt.to_vec();
        tgt_out.push(eos);
        self.forced_logprob(src, &tgt_in, &tgt_out)
    }

    /// Teacher-forced training loss for `(src, tgt)` with BOS prepended.
    fn train_example(&mut self, src: &[usize], tgt: &[usize], bos: usize, eos: usize) -> f32 {
        let mut tgt_in = Vec::with_capacity(tgt.len() + 1);
        tgt_in.push(bos);
        tgt_in.extend_from_slice(tgt);
        let mut tgt_out = tgt.to_vec();
        tgt_out.push(eos);
        self.train_pair(src, &tgt_in, &tgt_out)
    }
}

/// NaN-safe argmax over a logits row, tie-breaking to the **lowest** token
/// id. Returns `None` for an empty or all-NaN row.
///
/// Both greedy decoders route through this one helper: the previous
/// per-model `max_by(partial_cmp().unwrap())` panicked on NaN logits and
/// tie-broke to the *last* index, which made token choice depend on vocab
/// order in a surprising way. Lowest-id tie-breaking is deterministic and
/// identical across the graph and incremental decode paths.
pub fn argmax(row: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &v) in row.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Detects degenerate greedy decodes: the tail repeats a short cycle
/// (period 1–4) at least three times. Decoders break out early when this
/// fires instead of filling the budget with the loop.
pub fn looks_degenerate(out: &[usize]) -> bool {
    for period in 1..=4usize {
        let need = period * 3;
        if out.len() < need + 1 {
            continue;
        }
        let tail = &out[out.len() - need..];
        if (0..period * 2).all(|i| tail[i] == tail[i + period]) {
            return true;
        }
    }
    false
}

/// Trains on `(src, tgt)` pairs (one optimizer step per pair) for at most
/// `max_steps` passes over single pairs, returning the final running loss.
/// Stops early when the running loss drops below `target_loss`.
pub fn train_until<M: Seq2Seq>(
    model: &mut M,
    pairs: &[(Vec<usize>, Vec<usize>)],
    bos: usize,
    eos: usize,
    max_steps: usize,
    lr: f32,
    target_loss: f32,
) -> f32 {
    let mut running = f32::INFINITY;
    for step in 0..max_steps {
        let (src, tgt) = &pairs[step % pairs.len()];
        let loss = model.train_example(src, tgt, bos, eos);
        model.step(lr);
        running = if running.is_finite() {
            0.9 * running + 0.1 * loss
        } else {
            loss
        };
        if step >= pairs.len() && running < target_loss {
            break;
        }
    }
    running
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_ties_break_to_lowest_index() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), Some(1));
        assert_eq!(argmax(&[5.0, 5.0, 5.0]), Some(0));
        assert_eq!(argmax(&[-1.0, -0.5]), Some(1));
    }

    #[test]
    fn argmax_skips_nans_instead_of_panicking() {
        assert_eq!(argmax(&[f32::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(argmax(&[1.0, f32::NAN, 9.0]), Some(2));
        assert_eq!(argmax(&[f32::NAN, f32::NAN]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn argmax_handles_infinities() {
        assert_eq!(argmax(&[f32::NEG_INFINITY, 0.0]), Some(1));
        assert_eq!(argmax(&[f32::INFINITY, f32::INFINITY]), Some(0));
    }

    #[test]
    fn degenerate_detects_short_cycles() {
        assert!(looks_degenerate(&[9, 1, 1, 1, 1]));
        assert!(looks_degenerate(&[5, 6, 1, 2, 1, 2, 1, 2]));
        assert!(looks_degenerate(&[0, 1, 2, 3, 1, 2, 3, 1, 2, 3]));
    }

    #[test]
    fn degenerate_ignores_normal_sequences() {
        assert!(!looks_degenerate(&[1, 2, 3, 4, 5, 6, 7]));
        assert!(!looks_degenerate(&[1, 2, 1, 3, 1, 4, 1, 5]));
        assert!(!looks_degenerate(&[1, 1])); // too short to call
        assert!(!looks_degenerate(&[]));
    }
}
