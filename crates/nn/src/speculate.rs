//! Exact greedy speculative decoding: a cheap GRU drafts `k` tokens, the
//! transformer verifies all of them in **one** multi-position forward pass
//! ([`crate::DecodeState::step_many`]), and the longest matching prefix plus
//! one corrected token is accepted per round.
//!
//! # Why this is *exact*
//!
//! Every emitted token is the argmax of a verifier logits row computed on a
//! confirmed greedy prefix:
//!
//! * Round entry invariant: the verifier KV cache holds exactly the positions
//!   plain greedy would hold after emitting `out[1..]` (the cache length is
//!   `out.len() - 1`).
//! * `step_many(&[last, d1..dj])` computes row `i` attending over the causal
//!   prefix ending at its own position — bit-identical to `j + 1` sequential
//!   [`crate::DecodeState::step`] calls (each row's matmuls batch through the
//!   same kernels with the same per-row f32 operation order).
//! * Row `i`'s argmax `g_i` is emitted with the *same* bookkeeping plain
//!   greedy uses (EOS break, push, degenerate-tail break). If `g_i` disagrees
//!   with the draft's guess `feed[i + 1]`, the rows after `i` were computed on
//!   a prefix greedy would never visit, so they are discarded and the KV cache
//!   is rolled back with [`crate::DecodeState::truncate`].
//!
//! By induction the emitted stream equals plain greedy token-for-token and
//! bit-for-bit; the draft model only decides how much verifier work is wasted,
//! never what is emitted.
//!
//! # Draft synchronisation
//!
//! The GRU draft is a running hidden state, not a KV cache, so rollback uses
//! cheap `O(d_model)` snapshots ([`crate::GruDecodeState::save`] /
//! [`crate::GruDecodeState::restore`]): while drafting we snapshot after every
//! step, and on a mismatch at row `i` we restore the snapshot taken after the
//! draft consumed `feed[0..=i]` — exactly the tokens `out[..len - 1]` of the
//! corrected output. A fully-accepted round does one extra catch-up
//! `dr.step(feed[j])` (logits discarded) to re-establish the invariant.

use crate::gru::GruSeq2Seq;
use crate::seq2seq::{argmax, looks_degenerate};
use crate::transformer::Transformer;

/// Counters from one [`speculative_greedy`] call.
///
/// `accepted / drafted` is the acceptance rate — how often the draft model
/// predicted the verifier's next token. `tokens` counts emitted output tokens
/// (BOS excluded), and `rounds` counts verifier forward passes; plain greedy
/// would have used `tokens + 1` passes at most, so `tokens / rounds` is the
/// effective per-pass speedup ceiling.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecReport {
    /// Tokens proposed by the draft model across all rounds.
    pub drafted: u64,
    /// Drafted tokens the verifier confirmed (emitted as-is).
    pub accepted: u64,
    /// Verifier forward passes (one `step_many` call per round).
    pub rounds: u64,
    /// Tokens emitted in the final output (BOS excluded).
    pub tokens: u64,
}

impl SpecReport {
    /// `accepted / drafted`, or 0.0 when nothing was drafted.
    pub fn accept_ratio(&self) -> f64 {
        if self.drafted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.drafted as f64
        }
    }
}

/// Greedy decode of `src` with `target`, speculatively drafted by `draft`.
///
/// Produces a token stream **bit-identical** to
/// `target.greedy(src, bos, eos, max_len)` (see the module docs for the
/// argument), typically in far fewer verifier forward passes. `k` is the
/// speculation depth — how many tokens the draft proposes per verifier pass;
/// `k == 0` is treated as `k == 1` (callers that want plain greedy should
/// call it directly). Returns the output tokens (BOS stripped, like
/// [`crate::Seq2Seq::greedy`]) and a [`SpecReport`] of draft/accept counters.
///
/// Observability: emits `decode.tokens` / `decode.step_seconds` /
/// [`crate::decode::tally`] exactly like plain greedy (one
/// `step_seconds` observation per verify round), plus `spec.rounds`,
/// `spec.draft_tokens` and `spec.accepted_tokens` counters.
pub fn speculative_greedy(
    target: &Transformer,
    draft: &GruSeq2Seq,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
    k: usize,
) -> (Vec<usize>, SpecReport) {
    let k = k.max(1);
    let cap = max_len.min(target.cfg.max_len);
    let obs = vega_obs::global();
    let mut st = target.begin_decode(src);
    let mut dr = draft.begin_decode(src);
    let mut out: Vec<usize> = vec![bos];
    let mut report = SpecReport::default();
    let vocab = target.cfg.vocab;

    'decode: while out.len() < cap {
        let t0 = std::time::Instant::now();
        // remaining == plain greedy's remaining step budget; row i of the
        // verify pass is greedy step `out.len() - 1 + i`, so j + 1 rows must
        // not exceed it.
        let remaining = cap - out.len();
        let j = k.min(remaining - 1);

        // Draft j tokens, snapshotting the hidden state after each step so a
        // mismatch at row i can restore "draft has consumed feed[0..=i]".
        let last = *out.last().expect("out starts with bos");
        let mut feed: Vec<usize> = Vec::with_capacity(j + 1);
        feed.push(last);
        let mut snaps: Vec<Vec<f32>> = Vec::with_capacity(j);
        for _ in 0..j {
            let cur = *feed.last().expect("feed starts with last");
            let guess = argmax(dr.step(cur)).unwrap_or(eos);
            snaps.push(dr.save());
            feed.push(guess);
        }
        report.drafted += j as u64;
        report.rounds += 1;

        // One multi-position verifier pass over all j + 1 candidates.
        // `rows_used` counts the rows plain greedy would actually have
        // executed as steps — rows after an EOS / degenerate break / draft
        // mismatch are wasted speculative work and do not feed the
        // `decode.tokens` accounting.
        let len_before = st.len();
        let rows = st.step_many(&feed);
        let mut rows_used = 0u64;
        let mut halt = false; // EOS or degenerate tail: decode is over
        let mut matched_all = true;
        for i in 0..feed.len() {
            let g = argmax(&rows[i * vocab..(i + 1) * vocab]).unwrap_or(eos);
            rows_used += 1;
            if g == eos {
                halt = true;
                matched_all = false;
                break;
            }
            out.push(g);
            if looks_degenerate(&out) {
                halt = true;
                matched_all = false;
                break;
            }
            if i < j {
                if g == feed[i + 1] {
                    report.accepted += 1;
                } else {
                    // Corrected token: rows after i were computed on a prefix
                    // greedy never visits. Roll both models back.
                    st.truncate(len_before + i + 1);
                    dr.restore(&snaps[i]);
                    matched_all = false;
                    break;
                }
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        obs.observe("decode.step_seconds", dt);
        obs.counter_add("decode.tokens", rows_used);
        crate::decode::tally::bump_n(rows_used, dt);
        if halt {
            // The KV caches are about to be dropped; no rollback needed.
            break 'decode;
        }
        if matched_all && out.len() < cap {
            // Draft consumed feed[0..j]; the next round's prefix is
            // feed[0..=j], so replay the final accepted token into it.
            let _ = dr.step(feed[j]);
        }
    }
    out.remove(0);
    report.tokens = out.len() as u64;
    obs.counter_add("spec.rounds", report.rounds);
    obs.counter_add("spec.draft_tokens", report.drafted);
    obs.counter_add("spec.accepted_tokens", report.accepted);
    (out, report)
}
