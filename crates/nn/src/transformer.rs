//! A from-scratch encoder–decoder transformer (pre-LN, multi-head attention,
//! learned positional embeddings), sized for CPU training.
//!
//! This is the architecture behind CodeBE: the paper fine-tunes UniXcoder in
//! encoder-decoder mode; we train the same *shape* of model from scratch (or
//! from a denoising pre-training pass, see `vega-model`), scaled down to run
//! on one core.

use crate::graph::{Graph, NodeId};
use crate::params::{Init, OutProjCache, ParamId, ParamStore};
use crate::seq2seq::Seq2Seq;
use crate::tensor::Tensor;
use std::sync::Arc;
use vega_obs::json::{Json, JsonError};

/// Transformer hyperparameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub d_model: usize,
    /// Number of attention heads (`d_model % n_heads == 0`).
    pub n_heads: usize,
    /// Feed-forward inner width.
    pub d_ff: usize,
    /// Encoder depth.
    pub n_enc_layers: usize,
    /// Decoder depth.
    pub n_dec_layers: usize,
    /// Maximum sequence length (positional table size).
    pub max_len: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl TransformerConfig {
    /// A small configuration suitable for the full experiments on one core.
    pub fn small(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 40,
            n_heads: 2,
            d_ff: 80,
            n_enc_layers: 1,
            n_dec_layers: 2,
            max_len: 96,
            seed: 0xC0DE,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        TransformerConfig {
            vocab,
            d_model: 16,
            n_heads: 2,
            d_ff: 32,
            n_enc_layers: 1,
            n_dec_layers: 1,
            max_len: 24,
            seed: 7,
        }
    }
}

fn pid_json(p: ParamId) -> Json {
    Json::num_usize(p.0)
}

fn pid_from(v: &Json) -> Result<ParamId, JsonError> {
    Ok(ParamId(v.as_usize()?))
}

fn pids_json(ps: &[ParamId]) -> Json {
    Json::Arr(ps.iter().map(|&p| pid_json(p)).collect())
}

fn pids_from(v: &Json) -> Result<Vec<ParamId>, JsonError> {
    v.as_array()?.iter().map(pid_from).collect()
}

#[derive(Debug, Clone)]
pub(crate) struct AttnParams {
    pub(crate) wq: Vec<ParamId>,
    pub(crate) wk: Vec<ParamId>,
    pub(crate) wv: Vec<ParamId>,
    pub(crate) wo: ParamId,
}

impl AttnParams {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("wq", pids_json(&self.wq)),
            ("wk", pids_json(&self.wk)),
            ("wv", pids_json(&self.wv)),
            ("wo", pid_json(self.wo)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(AttnParams {
            wq: pids_from(v.field("wq")?)?,
            wk: pids_from(v.field("wk")?)?,
            wv: pids_from(v.field("wv")?)?,
            wo: pid_from(v.field("wo")?)?,
        })
    }
}

#[derive(Debug, Clone)]
pub(crate) struct LnParams {
    pub(crate) gain: ParamId,
    pub(crate) bias: ParamId,
}

impl LnParams {
    fn to_json_value(&self) -> Json {
        Json::obj([("gain", pid_json(self.gain)), ("bias", pid_json(self.bias))])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(LnParams {
            gain: pid_from(v.field("gain")?)?,
            bias: pid_from(v.field("bias")?)?,
        })
    }
}

#[derive(Debug, Clone)]
pub(crate) struct FfParams {
    pub(crate) w1: ParamId,
    pub(crate) b1: ParamId,
    pub(crate) w2: ParamId,
    pub(crate) b2: ParamId,
}

impl FfParams {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("w1", pid_json(self.w1)),
            ("b1", pid_json(self.b1)),
            ("w2", pid_json(self.w2)),
            ("b2", pid_json(self.b2)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(FfParams {
            w1: pid_from(v.field("w1")?)?,
            b1: pid_from(v.field("b1")?)?,
            w2: pid_from(v.field("w2")?)?,
            b2: pid_from(v.field("b2")?)?,
        })
    }
}

#[derive(Debug, Clone)]
pub(crate) struct EncLayer {
    pub(crate) ln1: LnParams,
    pub(crate) attn: AttnParams,
    pub(crate) ln2: LnParams,
    pub(crate) ff: FfParams,
}

impl EncLayer {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("ln1", self.ln1.to_json_value()),
            ("attn", self.attn.to_json_value()),
            ("ln2", self.ln2.to_json_value()),
            ("ff", self.ff.to_json_value()),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(EncLayer {
            ln1: LnParams::from_json_value(v.field("ln1")?)?,
            attn: AttnParams::from_json_value(v.field("attn")?)?,
            ln2: LnParams::from_json_value(v.field("ln2")?)?,
            ff: FfParams::from_json_value(v.field("ff")?)?,
        })
    }
}

#[derive(Debug, Clone)]
pub(crate) struct DecLayer {
    pub(crate) ln1: LnParams,
    pub(crate) self_attn: AttnParams,
    pub(crate) ln2: LnParams,
    pub(crate) cross_attn: AttnParams,
    pub(crate) ln3: LnParams,
    pub(crate) ff: FfParams,
}

impl DecLayer {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("ln1", self.ln1.to_json_value()),
            ("self_attn", self.self_attn.to_json_value()),
            ("ln2", self.ln2.to_json_value()),
            ("cross_attn", self.cross_attn.to_json_value()),
            ("ln3", self.ln3.to_json_value()),
            ("ff", self.ff.to_json_value()),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(DecLayer {
            ln1: LnParams::from_json_value(v.field("ln1")?)?,
            self_attn: AttnParams::from_json_value(v.field("self_attn")?)?,
            ln2: LnParams::from_json_value(v.field("ln2")?)?,
            cross_attn: AttnParams::from_json_value(v.field("cross_attn")?)?,
            ln3: LnParams::from_json_value(v.field("ln3")?)?,
            ff: FfParams::from_json_value(v.field("ff")?)?,
        })
    }
}

/// An encoder–decoder transformer with trainable parameters.
#[derive(Debug, Clone)]
pub struct Transformer {
    /// Hyperparameters.
    pub cfg: TransformerConfig,
    pub(crate) store: ParamStore,
    pub(crate) tok_emb: ParamId,
    pub(crate) pos_emb: ParamId,
    pub(crate) enc_layers: Vec<EncLayer>,
    pub(crate) dec_layers: Vec<DecLayer>,
    pub(crate) final_ln: LnParams,
    pub(crate) w_out: ParamId,
    pub(crate) b_out: ParamId,
    /// Cached `w_out` transpose for the dot-form logits path. `Clone` resets
    /// it (the clone's store has its own epoch sequence), so fine-tuned
    /// replicas never read a stale projection.
    pub(crate) out_t: OutProjCache,
}

impl Transformer {
    /// Initializes a transformer with Xavier-uniform weights.
    ///
    /// # Panics
    /// Panics if `d_model` is not divisible by `n_heads`.
    pub fn new(cfg: TransformerConfig) -> Self {
        assert_eq!(cfg.d_model % cfg.n_heads, 0, "d_model % n_heads");
        let mut store = ParamStore::new();
        let mut init = Init::new(cfg.seed);
        let d = cfg.d_model;
        let dh = d / cfg.n_heads;
        let ln = |store: &mut ParamStore, init: &mut Init, name: &str| LnParams {
            gain: store.add(format!("{name}.g"), init.ones(1, d)),
            bias: store.add(format!("{name}.b"), init.zeros(1, d)),
        };
        let attn = |store: &mut ParamStore, init: &mut Init, name: &str| AttnParams {
            wq: (0..cfg.n_heads)
                .map(|h| store.add(format!("{name}.wq{h}"), init.xavier(d, dh)))
                .collect(),
            wk: (0..cfg.n_heads)
                .map(|h| store.add(format!("{name}.wk{h}"), init.xavier(d, dh)))
                .collect(),
            wv: (0..cfg.n_heads)
                .map(|h| store.add(format!("{name}.wv{h}"), init.xavier(d, dh)))
                .collect(),
            wo: store.add(format!("{name}.wo"), init.xavier(d, d)),
        };
        let ff = |store: &mut ParamStore, init: &mut Init, name: &str| FfParams {
            w1: store.add(format!("{name}.w1"), init.xavier(d, cfg.d_ff)),
            b1: store.add(format!("{name}.b1"), init.zeros(1, cfg.d_ff)),
            w2: store.add(format!("{name}.w2"), init.xavier(cfg.d_ff, d)),
            b2: store.add(format!("{name}.b2"), init.zeros(1, d)),
        };
        let tok_emb = store.add("tok_emb", init.xavier(cfg.vocab, d));
        let pos_emb = store.add("pos_emb", init.xavier(cfg.max_len, d));
        let enc_layers = (0..cfg.n_enc_layers)
            .map(|l| EncLayer {
                ln1: ln(&mut store, &mut init, &format!("enc{l}.ln1")),
                attn: attn(&mut store, &mut init, &format!("enc{l}.attn")),
                ln2: ln(&mut store, &mut init, &format!("enc{l}.ln2")),
                ff: ff(&mut store, &mut init, &format!("enc{l}.ff")),
            })
            .collect();
        let dec_layers = (0..cfg.n_dec_layers)
            .map(|l| DecLayer {
                ln1: ln(&mut store, &mut init, &format!("dec{l}.ln1")),
                self_attn: attn(&mut store, &mut init, &format!("dec{l}.self")),
                ln2: ln(&mut store, &mut init, &format!("dec{l}.ln2")),
                cross_attn: attn(&mut store, &mut init, &format!("dec{l}.cross")),
                ln3: ln(&mut store, &mut init, &format!("dec{l}.ln3")),
                ff: ff(&mut store, &mut init, &format!("dec{l}.ff")),
            })
            .collect();
        let final_ln = ln(&mut store, &mut init, "final_ln");
        let w_out = store.add("w_out", init.xavier(d, cfg.vocab));
        let b_out = store.add("b_out", init.zeros(1, cfg.vocab));
        Transformer {
            cfg,
            store,
            tok_emb,
            pos_emb,
            enc_layers,
            dec_layers,
            final_ln,
            w_out,
            b_out,
            out_t: OutProjCache::default(),
        }
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    fn clamp_len<'a>(&self, ids: &'a [usize]) -> &'a [usize] {
        &ids[..ids.len().min(self.cfg.max_len)]
    }

    /// The output projection pre-transposed to `vocab × d` (one contiguous
    /// weight row per vocab id), built lazily and cached until the weights
    /// mutate. Decode states snapshot the `Arc` once per generation.
    pub(crate) fn out_proj_t(&self) -> Arc<Tensor> {
        self.out_t.get(&self.store, self.w_out)
    }

    /// Applies the decode output projection to each row of `xn` exactly as
    /// the incremental fast path does — including the dot-form branch — so
    /// the graph reference twins stay bit-identical to
    /// [`crate::DecodeState::step`] in every kernel mode.
    fn project_rows(&self, xn: &Tensor) -> Tensor {
        let w = self.store.value(self.w_out);
        let b = self.store.value(self.b_out);
        let wt = self.out_proj_t();
        let mut out = Tensor::zeros(xn.rows, self.cfg.vocab);
        for r in 0..xn.rows {
            crate::decode::project_logits_row(xn.row(r), w, &wt, b.as_slice(), out.row_mut(r));
        }
        out
    }
}

impl Seq2Seq for Transformer {
    fn train_pair(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        // Detach the tiny layer descriptors so `store` can be lent mutably.
        let me = self.clone_shallow();
        let mut g = Graph::new(&mut self.store);
        let enc = me.encode(&mut g, src);
        let logits = me.decode(&mut g, tgt_in, enc);
        g.cross_entropy_backward(logits, tgt_out)
    }

    fn step(&mut self, lr: f32) {
        self.store.adam_step(lr);
    }

    fn take_grads(&mut self) -> Vec<Tensor> {
        self.store.take_grads()
    }

    fn merge_grads(&mut self, grads: &[Tensor]) {
        self.store.merge_grads(grads);
    }

    fn greedy(&mut self, src: &[usize], bos: usize, eos: usize, max_len: usize) -> Vec<usize> {
        let cap = max_len.min(self.cfg.max_len);
        let mut st = self.begin_decode(src);
        let mut out: Vec<usize> = vec![bos];
        let obs = vega_obs::global();
        while out.len() < cap {
            let t0 = std::time::Instant::now();
            let last = *out.last().expect("out starts with bos");
            let next = crate::seq2seq::argmax(st.step(last)).unwrap_or(eos);
            let dt = t0.elapsed().as_secs_f64();
            obs.observe("decode.step_seconds", dt);
            obs.counter_add("decode.tokens", 1);
            crate::decode::tally::bump(dt);
            if next == eos {
                break;
            }
            out.push(next);
            if crate::seq2seq::looks_degenerate(&out) {
                break;
            }
        }
        out.remove(0);
        out
    }

    fn save_json(&self) -> String {
        self.to_json_value().render()
    }

    fn forced_logprob(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        let vocab = self.cfg.vocab;
        let mut probs = vec![0.0f32; vocab];
        // The whole forced prefix is known up front, so score it in one
        // multi-position pass (prompt prefill) instead of n single steps.
        // Bit-identical to the token-at-a-time loop: `step_many` is pinned
        // against repeated `step` by the spec-equivalence suite.
        let mut st = self.begin_decode(src);
        let rows = st.step_many(tgt_in);
        let mut lp = 0.0f32;
        for (r, &to) in tgt_out.iter().enumerate() {
            probs.copy_from_slice(&rows[r * vocab..(r + 1) * vocab]);
            crate::decode::softmax_row(&mut probs);
            lp += probs[to].max(1e-12).ln();
        }
        vega_obs::global().counter_add("decode.scored_tokens", n as u64);
        lp
    }
}

impl Transformer {
    /// The pre-fast-path greedy decode: re-runs the full decoder over the
    /// whole prefix through an autograd [`Graph`] for every emitted token
    /// (O(T²) layer passes). Kept as the reference implementation the
    /// equivalence suite and `vega-bench decode` compare the incremental
    /// [`Seq2Seq::greedy`] against — the two must produce bit-identical
    /// token streams.
    pub fn greedy_graph(
        &mut self,
        src: &[usize],
        bos: usize,
        eos: usize,
        max_len: usize,
    ) -> Vec<usize> {
        let src = self.clamp_len(src).to_vec();
        let me = self.clone_shallow();
        let mut out: Vec<usize> = vec![bos];
        let cap = max_len.min(self.cfg.max_len);
        // Encode once; reuse the encoder output tensor as a constant.
        let enc_value = {
            let mut g = Graph::new(&mut self.store);
            let enc = me.encode(&mut g, &src);
            g.value(enc).clone()
        };
        while out.len() < cap {
            let xn = {
                let mut g = Graph::new(&mut self.store);
                let enc = g.constant(enc_value.clone());
                let xn = me.decode_xn(&mut g, &out, enc);
                g.value(xn).clone()
            };
            let v = self.project_rows(&xn);
            let next = crate::seq2seq::argmax(v.row(v.rows - 1)).unwrap_or(eos);
            vega_obs::global().counter_add("decode.graph_tokens", 1);
            if next == eos {
                break;
            }
            out.push(next);
            if crate::seq2seq::looks_degenerate(&out) {
                break;
            }
        }
        out.remove(0);
        out
    }

    /// Graph-path teacher-forced log-probability (reference twin of the
    /// incremental [`Seq2Seq::forced_logprob`]; the two must agree bitwise).
    pub fn forced_logprob_graph(
        &mut self,
        src: &[usize],
        tgt_in: &[usize],
        tgt_out: &[usize],
    ) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        let me = self.clone_shallow();
        let xn = {
            let mut g = Graph::new(&mut self.store);
            let enc = me.encode(&mut g, src);
            let xn = me.decode_xn(&mut g, tgt_in, enc);
            g.value(xn).clone()
        };
        let probs = self.project_rows(&xn).softmax_rows();
        let mut lp = 0.0f32;
        for (r, &t) in tgt_out.iter().enumerate() {
            lp += probs.at(r, t).max(1e-12).ln();
        }
        lp
    }

    /// Graph-path logits for a full teacher-forced decode (`tgt_in.len()`
    /// rows, clamped to `max_len`). Exposed so the equivalence suite can
    /// compare raw logits bits against [`crate::DecodeState::step`].
    pub fn logits_rows_graph(&mut self, src: &[usize], tgt_in: &[usize]) -> Tensor {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let tgt_in = &tgt_in[..tgt_in.len().min(self.cfg.max_len)];
        let me = self.clone_shallow();
        let xn = {
            let mut g = Graph::new(&mut self.store);
            let enc = me.encode(&mut g, src);
            let xn = me.decode_xn(&mut g, tgt_in, enc);
            g.value(xn).clone()
        };
        self.project_rows(&xn)
    }

    /// Graph-path forced decode: feeds each token of `feed` (clamped to
    /// `max_len`) and returns the argmax id after every step, re-running the
    /// decoder over the growing prefix each time — the O(T²) twin of
    /// [`Transformer::forced_steps`], used by the decode bench for
    /// controlled-length comparisons.
    pub fn forced_steps_graph(&mut self, src: &[usize], feed: &[usize]) -> Vec<usize> {
        let src = self.clamp_len(src).to_vec();
        let feed = &feed[..feed.len().min(self.cfg.max_len)];
        let me = self.clone_shallow();
        let enc_value = {
            let mut g = Graph::new(&mut self.store);
            let enc = me.encode(&mut g, &src);
            g.value(enc).clone()
        };
        let mut out = Vec::with_capacity(feed.len());
        for i in 1..=feed.len() {
            let xn = {
                let mut g = Graph::new(&mut self.store);
                let enc = g.constant(enc_value.clone());
                let xn = me.decode_xn(&mut g, &feed[..i], enc);
                g.value(xn).clone()
            };
            let v = self.project_rows(&xn);
            out.push(crate::seq2seq::argmax(v.row(v.rows - 1)).unwrap_or(0));
            vega_obs::global().counter_add("decode.graph_tokens", 1);
        }
        out
    }
}

impl Transformer {
    /// A parameter-id-only copy used to borrow layer descriptors while the
    /// store is mutably lent to a [`Graph`]. Weights are shared through the
    /// store, not this copy.
    fn clone_shallow(&self) -> ShallowRef {
        ShallowRef {
            cfg: self.cfg.clone(),
            tok_emb: self.tok_emb,
            pos_emb: self.pos_emb,
            enc_layers: self.enc_layers.clone(),
            dec_layers: self.dec_layers.clone(),
            final_ln: self.final_ln.clone(),
            w_out: self.w_out,
            b_out: self.b_out,
        }
    }

    /// Scalars held in owned (heap) storage, as opposed to borrowed from a
    /// shared checkpoint mapping. Zero for a freshly mapped model; grows
    /// only when weights are mutated (copy-on-write).
    pub fn owned_scalars(&self) -> usize {
        self.store.owned_scalars()
    }

    /// Restores a transformer saved with [`Seq2Seq::save_json`].
    ///
    /// # Errors
    /// Returns an error if the JSON does not describe a transformer.
    pub fn load_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(s)?)
    }

    /// Serializes to a JSON value for embedding in a larger document.
    pub fn to_json_value(&self) -> Json {
        self.to_json_with(self.store.to_json_value())
    }

    /// Like [`Transformer::to_json_value`], but tensor data goes into
    /// `table` and the JSON holds only shapes and byte offsets (the
    /// `vega-ckpt/v2` binary layout).
    pub fn to_json_value_tabled(&self, table: &mut crate::storage::TensorTable) -> Json {
        let store = self.store.to_json_value_tabled(table);
        self.to_json_with(store)
    }

    fn to_json_with(&self, store: Json) -> Json {
        let cfg = Json::obj([
            ("vocab", Json::num_usize(self.cfg.vocab)),
            ("d_model", Json::num_usize(self.cfg.d_model)),
            ("n_heads", Json::num_usize(self.cfg.n_heads)),
            ("d_ff", Json::num_usize(self.cfg.d_ff)),
            ("n_enc_layers", Json::num_usize(self.cfg.n_enc_layers)),
            ("n_dec_layers", Json::num_usize(self.cfg.n_dec_layers)),
            ("max_len", Json::num_usize(self.cfg.max_len)),
            ("seed", Json::num_u64(self.cfg.seed)),
        ]);
        Json::obj([
            ("cfg", cfg),
            ("store", store),
            ("tok_emb", pid_json(self.tok_emb)),
            ("pos_emb", pid_json(self.pos_emb)),
            (
                "enc_layers",
                Json::Arr(
                    self.enc_layers
                        .iter()
                        .map(EncLayer::to_json_value)
                        .collect(),
                ),
            ),
            (
                "dec_layers",
                Json::Arr(
                    self.dec_layers
                        .iter()
                        .map(DecLayer::to_json_value)
                        .collect(),
                ),
            ),
            ("final_ln", self.final_ln.to_json_value()),
            ("w_out", pid_json(self.w_out)),
            ("b_out", pid_json(self.b_out)),
        ])
    }

    /// Restores from [`Transformer::to_json_value`] output.
    ///
    /// # Errors
    /// Returns an error if the value does not describe a transformer.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let store = ParamStore::from_json_value(v.field("store")?)?;
        Self::from_json_with(v, store)
    }

    /// Restores from [`Transformer::to_json_value_tabled`] output, reading
    /// tensor data straight out of `region` (shared, zero-copy where the
    /// platform allows).
    ///
    /// # Errors
    /// Returns an error if the value does not describe a tabled transformer
    /// or a tensor entry falls outside the region.
    pub fn from_json_value_tabled(
        v: &Json,
        region: &std::sync::Arc<crate::storage::ByteRegion>,
        data_base: usize,
    ) -> Result<Self, JsonError> {
        let store = ParamStore::from_json_value_tabled(v.field("store")?, region, data_base)?;
        Self::from_json_with(v, store)
    }

    fn from_json_with(v: &Json, store: ParamStore) -> Result<Self, JsonError> {
        let c = v.field("cfg")?;
        let cfg = TransformerConfig {
            vocab: c.field("vocab")?.as_usize()?,
            d_model: c.field("d_model")?.as_usize()?,
            n_heads: c.field("n_heads")?.as_usize()?,
            d_ff: c.field("d_ff")?.as_usize()?,
            n_enc_layers: c.field("n_enc_layers")?.as_usize()?,
            n_dec_layers: c.field("n_dec_layers")?.as_usize()?,
            max_len: c.field("max_len")?.as_usize()?,
            seed: c.field("seed")?.as_u64()?,
        };
        let t = Transformer {
            cfg,
            store,
            tok_emb: pid_from(v.field("tok_emb")?)?,
            pos_emb: pid_from(v.field("pos_emb")?)?,
            enc_layers: v
                .field("enc_layers")?
                .as_array()?
                .iter()
                .map(EncLayer::from_json_value)
                .collect::<Result<Vec<EncLayer>, JsonError>>()?,
            dec_layers: v
                .field("dec_layers")?
                .as_array()?
                .iter()
                .map(DecLayer::from_json_value)
                .collect::<Result<Vec<DecLayer>, JsonError>>()?,
            final_ln: LnParams::from_json_value(v.field("final_ln")?)?,
            w_out: pid_from(v.field("w_out")?)?,
            b_out: pid_from(v.field("b_out")?)?,
            out_t: OutProjCache::default(),
        };
        // Pre-transpose the output projection once at checkpoint load so the
        // first decode doesn't pay for it (the cache is epoch-keyed, so a
        // later fine-tune step just rebuilds it).
        let _ = t.out_proj_t();
        Ok(t)
    }
}

/// Layer descriptors detached from the parameter store (see
/// [`Transformer::clone_shallow`]).
struct ShallowRef {
    cfg: TransformerConfig,
    tok_emb: ParamId,
    pos_emb: ParamId,
    enc_layers: Vec<EncLayer>,
    dec_layers: Vec<DecLayer>,
    final_ln: LnParams,
    w_out: ParamId,
    b_out: ParamId,
}

impl ShallowRef {
    fn embed_with_pos(&self, g: &mut Graph<'_>, ids: &[usize]) -> NodeId {
        let tok = g.param(self.tok_emb);
        let pos = g.param(self.pos_emb);
        let te = g.embed(tok, ids);
        let positions: Vec<usize> = (0..ids.len())
            .map(|i| i.min(self.cfg.max_len - 1))
            .collect();
        let pe = g.embed(pos, &positions);
        g.add(te, pe)
    }

    fn ln(&self, g: &mut Graph<'_>, x: NodeId, p: &LnParams) -> NodeId {
        let gain = g.param(p.gain);
        let bias = g.param(p.bias);
        g.layer_norm(x, gain, bias)
    }

    fn attention(
        &self,
        g: &mut Graph<'_>,
        q_input: NodeId,
        kv_input: NodeId,
        p: &AttnParams,
        mask: Option<&Tensor>,
    ) -> NodeId {
        let dh = self.cfg.d_model / self.cfg.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outs: Vec<NodeId> = Vec::with_capacity(self.cfg.n_heads);
        for h in 0..self.cfg.n_heads {
            let wq = g.param(p.wq[h]);
            let wk = g.param(p.wk[h]);
            let wv = g.param(p.wv[h]);
            let q = g.matmul(q_input, wq, false);
            let k = g.matmul(kv_input, wk, false);
            let v = g.matmul(kv_input, wv, false);
            let scores = g.matmul(q, k, true);
            let scores = g.scale(scores, scale);
            let scores = match mask {
                Some(m) => g.add_const(scores, m),
                None => scores,
            };
            let a = g.softmax_rows(scores);
            head_outs.push(g.matmul(a, v, false));
        }
        let mut concat = head_outs[0];
        for h in &head_outs[1..] {
            concat = g.concat_cols(concat, *h);
        }
        let wo = g.param(p.wo);
        g.matmul(concat, wo, false)
    }

    fn feed_forward(&self, g: &mut Graph<'_>, x: NodeId, p: &FfParams) -> NodeId {
        let w1 = g.param(p.w1);
        let b1 = g.param(p.b1);
        let w2 = g.param(p.w2);
        let b2 = g.param(p.b2);
        let h = g.matmul(x, w1, false);
        let h = g.add_row_broadcast(h, b1);
        let h = g.relu(h);
        let h = g.matmul(h, w2, false);
        g.add_row_broadcast(h, b2)
    }

    fn encode(&self, g: &mut Graph<'_>, src: &[usize]) -> NodeId {
        let mut x = self.embed_with_pos(g, src);
        for layer in &self.enc_layers {
            let xn = self.ln(g, x, &layer.ln1);
            let att = self.attention(g, xn, xn, &layer.attn, None);
            x = g.add(x, att);
            let xn = self.ln(g, x, &layer.ln2);
            let ffo = self.feed_forward(g, xn, &layer.ff);
            x = g.add(x, ffo);
        }
        x
    }

    /// The decoder stack through the final layer norm — everything *before*
    /// the output projection. Reference twins that must match the
    /// incremental fast path bitwise take these rows out of the graph and
    /// project them through [`Transformer::project_rows`], which branches on
    /// the same dot-form predicate the fast path uses.
    fn decode_xn(&self, g: &mut Graph<'_>, tgt_in: &[usize], enc: NodeId) -> NodeId {
        let l = tgt_in.len();
        let mut mask = Tensor::zeros(l, l);
        let ms = mask.as_mut_slice();
        for r in 0..l {
            for c in (r + 1)..l {
                ms[r * l + c] = -1e9;
            }
        }
        let mut x = self.embed_with_pos(g, tgt_in);
        for layer in &self.dec_layers {
            let xn = self.ln(g, x, &layer.ln1);
            let att = self.attention(g, xn, xn, &layer.self_attn, Some(&mask));
            x = g.add(x, att);
            let xn = self.ln(g, x, &layer.ln2);
            let cross = self.attention(g, xn, enc, &layer.cross_attn, None);
            x = g.add(x, cross);
            let xn = self.ln(g, x, &layer.ln3);
            let ffo = self.feed_forward(g, xn, &layer.ff);
            x = g.add(x, ffo);
        }
        self.ln(g, x, &self.final_ln)
    }

    fn decode(&self, g: &mut Graph<'_>, tgt_in: &[usize], enc: NodeId) -> NodeId {
        let xn = self.decode_xn(g, tgt_in, enc);
        let w = g.param(self.w_out);
        let b = g.param(self.b_out);
        let logits = g.matmul(xn, w, false);
        g.add_row_broadcast(logits, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq2seq::train_until;

    #[test]
    fn learns_to_copy_short_sequences() {
        // Task: echo the source sequence. BOS=0, EOS=1, tokens 2..8.
        let mut t = Transformer::new(TransformerConfig::tiny(10));
        let pairs: Vec<(Vec<usize>, Vec<usize>)> = vec![
            (vec![2, 3, 4], vec![2, 3, 4]),
            (vec![5, 6], vec![5, 6]),
            (vec![7, 8, 2], vec![7, 8, 2]),
            (vec![4, 4, 5], vec![4, 4, 5]),
        ];
        let loss = train_until(&mut t, &pairs, 0, 1, 300, 3e-3, 0.05);
        assert!(loss < 0.3, "did not converge: {loss}");
        let out = t.greedy(&[5, 6], 0, 1, 10);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn save_load_roundtrip_preserves_decoding() {
        let mut t = Transformer::new(TransformerConfig::tiny(12));
        let pairs = vec![(vec![3usize, 4], vec![4usize, 3])];
        let _ = train_until(&mut t, &pairs, 0, 1, 150, 3e-3, 0.05);
        let json = t.save_json();
        let mut t2 = Transformer::load_json(&json).unwrap();
        assert_eq!(t.greedy(&[3, 4], 0, 1, 8), t2.greedy(&[3, 4], 0, 1, 8));
    }

    #[test]
    fn param_count_scales_with_config() {
        let small = Transformer::new(TransformerConfig::tiny(10));
        let big = Transformer::new(TransformerConfig::small(10));
        assert!(big.num_params() > small.num_params());
        assert!(small.num_params() > 1000);
    }
}
