//! Shared read-only weight storage.
//!
//! A [`ByteRegion`] is an immutable byte buffer that tensor views can borrow
//! through an `Arc`: either a private read-only `mmap` of a checkpoint file
//! (unix, little-endian targets) or an 8-byte-aligned heap copy everywhere
//! else. The v2 checkpoint format lays its tensor data out little-endian and
//! 64-byte aligned precisely so a mapped region can be used in place — every
//! replica of a served model then shares one weight copy and spawning a
//! replica costs descriptors, not a parse.
//!
//! [`TensorTable`] is the writer side: it appends tensor payloads to a data
//! region, aligning each to [`DATA_ALIGN`] and returning its offset for the
//! checkpoint header's tensor table.
//!
//! This is the only module in the crate that uses `unsafe` (the crate is
//! otherwise `deny(unsafe_code)`): the raw `mmap`/`munmap` calls and the
//! byte/f32 reinterpretation views live here, behind safe accessors that
//! check bounds and alignment.
#![allow(unsafe_code)]

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// Alignment (bytes) of every tensor payload inside a data region. 64 bytes
/// covers a cache line and any SIMD width a future kernel tier might want.
pub const DATA_ALIGN: usize = 64;

/// Raw bindings for memory mapping. `std` already links libc on unix, so the
/// symbols resolve without adding a dependency.
#[cfg(all(unix, target_endian = "little"))]
mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    /// `MADV_WILLNEED`: same value on linux and the BSDs/macOS.
    pub const MADV_WILLNEED: i32 = 3;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// The backing buffer of a [`ByteRegion`].
enum RegionBuf {
    /// A heap copy. Backed by `u64` words so the byte view is 8-byte aligned
    /// (f32 reinterpretation needs 4).
    Heap { words: Vec<u64>, len: usize },
    /// A private read-only file mapping (unmapped on drop).
    #[cfg(all(unix, target_endian = "little"))]
    Mapped { ptr: *mut u8, len: usize },
}

/// An immutable, aligned byte buffer that outlives every tensor view into it.
///
/// Constructed once per checkpoint load and shared via `Arc`; [`ByteRegion`]
/// never mutates its contents, so sharing it across threads is sound even
/// for the raw-pointer mapped variant.
pub struct ByteRegion {
    buf: RegionBuf,
}

// SAFETY: the buffer is immutable after construction — the mapped variant is
// PROT_READ/MAP_PRIVATE and no `&mut` accessor exists — so shared references
// across threads cannot race.
unsafe impl Send for ByteRegion {}
unsafe impl Sync for ByteRegion {}

impl Drop for ByteRegion {
    fn drop(&mut self) {
        #[cfg(all(unix, target_endian = "little"))]
        if let RegionBuf::Mapped { ptr, len } = self.buf {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once, here.
            unsafe {
                sys::munmap(ptr.cast(), len);
            }
        }
    }
}

impl std::fmt::Debug for ByteRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ByteRegion")
            .field("len", &self.len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl ByteRegion {
    /// Maps `path` read-only. On unix little-endian targets this is a true
    /// `mmap` (the file's pages are shared, not copied); elsewhere — or if
    /// the map call fails — the file is read into an aligned heap buffer.
    ///
    /// # Errors
    /// Returns the underlying I/O error if the file cannot be opened or read.
    pub fn from_file(path: &Path) -> std::io::Result<ByteRegion> {
        let mut f = File::open(path)?;
        let len = usize::try_from(f.metadata()?.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        #[cfg(all(unix, target_endian = "little"))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            // SAFETY: plain read-only private mapping of an open fd; failure
            // is reported via MAP_FAILED and falls through to the heap path.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    f.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::map_failed() {
                return Ok(ByteRegion {
                    buf: RegionBuf::Mapped {
                        ptr: ptr.cast(),
                        len,
                    },
                });
            }
        }
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: `words` owns at least `len` initialized bytes; u64 has no
        // invalid bit patterns, so writing raw file bytes through the view
        // is sound.
        let bytes = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        f.read_exact(bytes)?;
        Ok(ByteRegion {
            buf: RegionBuf::Heap { words, len },
        })
    }

    /// An aligned heap region holding a copy of `bytes` (tests, in-memory
    /// loads).
    pub fn from_bytes(bytes: &[u8]) -> ByteRegion {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: same as in `from_file` — the word buffer owns `len` bytes.
        let dst = unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr().cast::<u8>(), len) };
        dst.copy_from_slice(bytes);
        ByteRegion {
            buf: RegionBuf::Heap { words, len },
        }
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        match &self.buf {
            RegionBuf::Heap { len, .. } => *len,
            #[cfg(all(unix, target_endian = "little"))]
            RegionBuf::Mapped { len, .. } => *len,
        }
    }

    /// True when the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when backed by a live file mapping (false for heap copies).
    pub fn is_mapped(&self) -> bool {
        match &self.buf {
            RegionBuf::Heap { .. } => false,
            #[cfg(all(unix, target_endian = "little"))]
            RegionBuf::Mapped { .. } => true,
        }
    }

    /// The whole region as bytes (digest verification, header parsing).
    pub fn bytes(&self) -> &[u8] {
        match &self.buf {
            // SAFETY: `words` owns `len` initialized bytes for the lifetime
            // of `self`.
            RegionBuf::Heap { words, len } => unsafe {
                std::slice::from_raw_parts(words.as_ptr().cast::<u8>(), *len)
            },
            // SAFETY: the mapping is valid for `len` bytes until drop.
            #[cfg(all(unix, target_endian = "little"))]
            RegionBuf::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Warm-touches the whole region so serving never pays page-fault
    /// latency on the first token: advises the kernel to read ahead
    /// (`MADV_WILLNEED`) when backed by a mapping, then reads one byte per
    /// 4 KiB page so every page is resident before the region is used.
    /// Returns the number of bytes made resident (the region length). Heap
    /// copies skip the advice (their pages already exist) but still run the
    /// touch pass, which is cheap and keeps the call's cost shape uniform.
    pub fn prefault(&self) -> usize {
        let bytes = self.bytes();
        if bytes.is_empty() {
            return 0;
        }
        #[cfg(all(unix, target_endian = "little"))]
        if let RegionBuf::Mapped { ptr, len } = self.buf {
            // SAFETY: the mapping is live for `len` bytes until drop;
            // madvise is purely advisory, so the result can be ignored.
            unsafe {
                sys::madvise(ptr.cast(), len, sys::MADV_WILLNEED);
            }
        }
        let mut acc = 0u8;
        let mut i = 0;
        while i < bytes.len() {
            acc ^= bytes[i];
            i += 4096;
        }
        acc ^= bytes[bytes.len() - 1];
        // Keep the touch loop from being optimized away.
        std::hint::black_box(acc);
        bytes.len()
    }

    /// `count` f32 values starting at byte offset `off`, viewed in place.
    ///
    /// Only meaningful on little-endian targets (the v2 data region is
    /// little-endian); big-endian loaders copy through
    /// [`f32::from_le_bytes`] instead of constructing shared views.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or `off` is not 4-byte aligned —
    /// loaders validate both before building a view, so a panic here means a
    /// checkpoint-loader bug, not bad input.
    pub fn f32s(&self, off: usize, count: usize) -> &[f32] {
        let bytes = self.bytes();
        let nbytes = count.checked_mul(4).expect("f32 view size overflow");
        let end = off.checked_add(nbytes).expect("f32 view end overflow");
        assert!(end <= bytes.len(), "f32 view out of bounds");
        let sub = &bytes[off..end];
        assert_eq!(sub.as_ptr() as usize % 4, 0, "f32 view misaligned");
        #[cfg(target_endian = "little")]
        // SAFETY: bounds and 4-byte alignment checked above; f32 has no
        // invalid bit patterns; the region is immutable and outlives the
        // returned slice.
        unsafe {
            std::slice::from_raw_parts(sub.as_ptr().cast::<f32>(), count)
        }
        #[cfg(not(target_endian = "little"))]
        unreachable!("shared f32 views are little-endian only")
    }
}

/// Writer for a v2 data region: tensor payloads appended little-endian, each
/// aligned to [`DATA_ALIGN`], with offsets handed back for the header table.
#[derive(Debug, Default)]
pub struct TensorTable {
    data: Vec<u8>,
}

impl TensorTable {
    /// An empty data region.
    pub fn new() -> Self {
        TensorTable::default()
    }

    /// Appends `vals` (little-endian f32) at the next aligned offset and
    /// returns that offset, relative to the start of the data region.
    pub fn push_f32s(&mut self, vals: &[f32]) -> usize {
        let pad = self.data.len().next_multiple_of(DATA_ALIGN) - self.data.len();
        self.data.extend(std::iter::repeat(0u8).take(pad));
        let off = self.data.len();
        for v in vals {
            self.data.extend_from_slice(&v.to_le_bytes());
        }
        off
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The finished data region.
    pub fn into_bytes(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_every_tensor_and_region_roundtrips() {
        let mut table = TensorTable::new();
        let a = [1.0f32, -2.5, 3.25];
        let b = [0.5f32; 20];
        let off_a = table.push_f32s(&a);
        let off_b = table.push_f32s(&b);
        assert_eq!(off_a, 0);
        assert_eq!(off_b % DATA_ALIGN, 0);
        assert!(off_b >= a.len() * 4);
        let bytes = table.into_bytes();
        let region = ByteRegion::from_bytes(&bytes);
        assert_eq!(region.bytes(), &bytes[..]);
        assert!(!region.is_mapped());
        assert_eq!(region.f32s(off_a, a.len()), &a[..]);
        assert_eq!(region.f32s(off_b, b.len()), &b[..]);
    }

    #[test]
    fn file_region_maps_and_matches_contents() {
        let dir = std::env::temp_dir().join("vega-nn-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("region.bin");
        let mut table = TensorTable::new();
        let vals: Vec<f32> = (0..100).map(|i| i as f32 * 0.125).collect();
        let off = table.push_f32s(&vals);
        let bytes = table.into_bytes();
        std::fs::write(&path, &bytes).unwrap();
        let region = ByteRegion::from_file(&path).unwrap();
        assert_eq!(region.len(), bytes.len());
        assert_eq!(region.bytes(), &bytes[..]);
        assert_eq!(region.f32s(off, vals.len()), &vals[..]);
        #[cfg(all(unix, target_endian = "little"))]
        assert!(region.is_mapped(), "unix little-endian should mmap");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_file_region_is_empty_not_an_error() {
        let dir = std::env::temp_dir().join("vega-nn-storage-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let region = ByteRegion::from_file(&path).unwrap();
        assert!(region.is_empty());
        assert_eq!(region.bytes(), b"");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_view_panics() {
        let region = ByteRegion::from_bytes(&[0u8; 8]);
        let _ = region.f32s(4, 2);
    }
}
