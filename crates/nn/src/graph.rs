//! Reverse-mode autograd over a flat operation tape.
//!
//! Each forward pass builds a fresh [`Graph`]; [`Graph::cross_entropy_backward`]
//! seeds the loss gradient and walks the tape in reverse, accumulating
//! parameter gradients into the shared [`ParamStore`]. Ops cover exactly what
//! the transformer and GRU need; every backward rule is verified against
//! finite differences in the test suite.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node in the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Matmul {
        a: usize,
        b: usize,
        transpose_b: bool,
    },
    Add {
        a: usize,
        b: usize,
    },
    AddRowBroadcast {
        a: usize,
        row: usize,
    },
    Hadamard {
        a: usize,
        b: usize,
    },
    Scale {
        a: usize,
        s: f32,
    },
    AddScalar {
        a: usize,
    },
    Relu {
        a: usize,
    },
    Tanh {
        a: usize,
    },
    Sigmoid {
        a: usize,
    },
    SoftmaxRows {
        a: usize,
    },
    AddConst {
        a: usize,
    },
    LayerNorm {
        a: usize,
        gain: usize,
        bias: usize,
        cache: Vec<(f32, f32)>,
    },
    Embed {
        table: usize,
        ids: Vec<usize>,
    },
    ConcatCols {
        a: usize,
        b: usize,
    },
    ConcatRows {
        parts: Vec<usize>,
    },
    MeanRows {
        a: usize,
    },
}

struct Node {
    op: Op,
    value: Tensor,
    param: Option<ParamId>,
}

/// An autograd tape bound to a parameter store.
pub struct Graph<'p> {
    store: &'p mut ParamStore,
    nodes: Vec<Node>,
}

impl<'p> Graph<'p> {
    /// Starts a fresh tape over `store`.
    pub fn new(store: &'p mut ParamStore) -> Self {
        vega_obs::global().counter_add("nn.forward_passes", 1);
        Graph {
            store,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, op: Op, value: Tensor) -> NodeId {
        self.nodes.push(Node {
            op,
            value,
            param: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// The value computed at a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id.0].value
    }

    /// Loads a parameter onto the tape (gradients flow back to the store).
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = self.store.value(id).clone();
        self.nodes.push(Node {
            op: Op::Leaf,
            value,
            param: Some(id),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Loads a constant tensor (no gradient).
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(Op::Leaf, t)
    }

    /// `a · b`, optionally with `b` transposed.
    pub fn matmul(&mut self, a: NodeId, b: NodeId, transpose_b: bool) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .matmul(&self.nodes[b.0].value, transpose_b);
        self.push(
            Op::Matmul {
                a: a.0,
                b: b.0,
                transpose_b,
            },
            v,
        )
    }

    /// `a + b` elementwise.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(Op::Add { a: a.0, b: b.0 }, v)
    }

    /// `a + row` with `row` broadcast over rows (bias add).
    pub fn add_row_broadcast(&mut self, a: NodeId, row: NodeId) -> NodeId {
        let v = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[row.0].value);
        self.push(Op::AddRowBroadcast { a: a.0, row: row.0 }, v)
    }

    /// Elementwise product.
    pub fn hadamard(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(Op::Hadamard { a: a.0, b: b.0 }, v)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: NodeId, s: f32) -> NodeId {
        let v = self.nodes[a.0].value.scale(s);
        self.push(Op::Scale { a: a.0, s }, v)
    }

    /// `a + s` elementwise (scalar shift; used for `1 - z` as `-z + 1`).
    pub fn add_scalar(&mut self, a: NodeId, s: f32) -> NodeId {
        let src = &self.nodes[a.0].value;
        let v = Tensor::from_vec(
            src.rows,
            src.cols,
            src.as_slice().iter().map(|x| x + s).collect(),
        );
        self.push(Op::AddScalar { a: a.0 }, v)
    }

    /// ReLU.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let src = &self.nodes[a.0].value;
        let v = Tensor::from_vec(
            src.rows,
            src.cols,
            src.as_slice().iter().map(|x| x.max(0.0)).collect(),
        );
        self.push(Op::Relu { a: a.0 }, v)
    }

    /// tanh.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let src = &self.nodes[a.0].value;
        let v = Tensor::from_vec(
            src.rows,
            src.cols,
            src.as_slice().iter().map(|x| x.tanh()).collect(),
        );
        self.push(Op::Tanh { a: a.0 }, v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let src = &self.nodes[a.0].value;
        let v = Tensor::from_vec(
            src.rows,
            src.cols,
            src.as_slice()
                .iter()
                .map(|x| 1.0 / (1.0 + (-x).exp()))
                .collect(),
        );
        self.push(Op::Sigmoid { a: a.0 }, v)
    }

    /// Row-wise softmax (attention weights).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a.0].value.softmax_rows();
        self.push(Op::SoftmaxRows { a: a.0 }, v)
    }

    /// Adds a constant tensor (e.g. a causal attention mask); no gradient
    /// flows into the constant.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_const(&mut self, a: NodeId, c: &Tensor) -> NodeId {
        let v = self.nodes[a.0].value.add(c);
        self.push(Op::AddConst { a: a.0 }, v)
    }

    /// Row-wise layer normalization with learned gain/bias (1×d each).
    ///
    /// The forward math is [`crate::kernel::layer_norm_row`] — the same code
    /// the decode fast path runs — which hands back the per-row `(mean, std)`
    /// this op caches for backward.
    pub fn layer_norm(&mut self, a: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        let x = &self.nodes[a.0].value;
        let g = &self.nodes[gain.0].value;
        let b = &self.nodes[bias.0].value;
        let mut out = Tensor::zeros(x.rows, x.cols);
        let mut cache = Vec::with_capacity(x.rows);
        let (gs, bs) = (g.as_slice(), b.as_slice());
        for r in 0..x.rows {
            let stats = crate::kernel::layer_norm_row(x.row(r), gs, bs, out.row_mut(r));
            cache.push(stats);
        }
        self.push(
            Op::LayerNorm {
                a: a.0,
                gain: gain.0,
                bias: bias.0,
                cache,
            },
            out,
        )
    }

    /// Gathers embedding rows for `ids` from `table`.
    pub fn embed(&mut self, table: NodeId, ids: &[usize]) -> NodeId {
        let t = &self.nodes[table.0].value;
        let mut out = Tensor::zeros(ids.len(), t.cols);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(t.row(id));
        }
        self.push(
            Op::Embed {
                table: table.0,
                ids: ids.to_vec(),
            },
            out,
        )
    }

    /// Concatenates two equal-row tensors along columns (GRU gate input).
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ta, tb) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(ta.rows, tb.rows, "concat rows");
        let mut out = Tensor::zeros(ta.rows, ta.cols + tb.cols);
        for r in 0..ta.rows {
            out.row_mut(r)[..ta.cols].copy_from_slice(ta.row(r));
            out.row_mut(r)[ta.cols..].copy_from_slice(tb.row(r));
        }
        self.push(Op::ConcatCols { a: a.0, b: b.0 }, out)
    }

    /// Stacks tensors with equal column counts along rows (per-step logits
    /// into one matrix).
    ///
    /// # Panics
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_rows of nothing");
        let cols = self.nodes[parts[0].0].value.cols;
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.rows).sum();
        let mut out = Tensor::zeros(total, cols);
        let mut r = 0;
        for p in parts {
            let t = &self.nodes[p.0].value;
            assert_eq!(t.cols, cols, "concat_rows width");
            for i in 0..t.rows {
                out.row_mut(r).copy_from_slice(t.row(i));
                r += 1;
            }
        }
        self.push(
            Op::ConcatRows {
                parts: parts.iter().map(|p| p.0).collect(),
            },
            out,
        )
    }

    /// Mean over rows, yielding a 1×cols tensor (sequence pooling).
    pub fn mean_rows(&mut self, a: NodeId) -> NodeId {
        let t = &self.nodes[a.0].value;
        let mut out = vec![0.0f32; t.cols];
        for r in 0..t.rows {
            for c in 0..t.cols {
                out[c] += t.at(r, c);
            }
        }
        let n = t.rows.max(1) as f32;
        for v in &mut out {
            *v /= n;
        }
        let out = Tensor::from_vec(1, t.cols, out);
        self.push(Op::MeanRows { a: a.0 }, out)
    }

    /// Softmax cross-entropy over `logits` rows against `targets`, then full
    /// backward pass; parameter gradients are accumulated into the store.
    /// Returns the mean loss.
    ///
    /// # Panics
    /// Panics if `targets.len()` differs from the logits row count.
    pub fn cross_entropy_backward(&mut self, logits: NodeId, targets: &[usize]) -> f32 {
        let lt = &self.nodes[logits.0].value;
        assert_eq!(lt.rows, targets.len(), "targets per logits row");
        let probs = lt.softmax_rows();
        let n = targets.len() as f32;
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        for (r, &t) in targets.iter().enumerate() {
            loss -= probs.at(r, t).max(1e-12).ln();
            *grad.at_mut(r, t) -= 1.0;
        }
        for v in grad.as_mut_slice() {
            *v /= n;
        }
        self.backward(logits, grad);
        loss / n
    }

    /// The softmax probabilities of a logits node (for inference).
    pub fn probs(&self, logits: NodeId) -> Tensor {
        self.nodes[logits.0].value.softmax_rows()
    }

    /// Runs reverse-mode accumulation from `seed_node` with gradient `seed`.
    pub fn backward(&mut self, seed_node: NodeId, seed: Tensor) {
        let mut grads: Vec<Option<Tensor>> = (0..self.nodes.len()).map(|_| None).collect();
        grads[seed_node.0] = Some(seed);
        for i in (0..self.nodes.len()).rev() {
            let Some(gy) = grads[i].take() else { continue };
            // Re-insert for param extraction at the end.
            let acc = |slot: &mut Option<Tensor>, add: Tensor| match slot {
                Some(t) => {
                    for (a, b) in t.as_mut_slice().iter_mut().zip(add.as_slice()) {
                        *a += b;
                    }
                }
                None => *slot = Some(add),
            };
            match &self.nodes[i].op {
                Op::Leaf => {
                    if let Some(pid) = self.nodes[i].param {
                        self.store.accumulate_grad(pid, &gy);
                    }
                    continue;
                }
                Op::Matmul { a, b, transpose_b } => {
                    let (a, b, tb) = (*a, *b, *transpose_b);
                    let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                    let (da, db) = if tb {
                        // C = A·Bᵀ: dA = dC·B ; dB = dCᵀ·A
                        (gy.matmul(vb, false), gy.transposed().matmul(va, false))
                    } else {
                        // C = A·B: dA = dC·Bᵀ ; dB = Aᵀ·dC
                        (
                            gy.matmul(&vb.transposed(), false),
                            va.transposed().matmul(&gy, false),
                        )
                    };
                    acc(&mut grads[a], da);
                    acc(&mut grads[b], db);
                }
                Op::Add { a, b } => {
                    let (a, b) = (*a, *b);
                    acc(&mut grads[a], gy.clone());
                    acc(&mut grads[b], gy);
                }
                Op::AddRowBroadcast { a, row } => {
                    let (a, row) = (*a, *row);
                    let mut drow = Tensor::zeros(1, gy.cols);
                    let ds = drow.as_mut_slice();
                    for r in 0..gy.rows {
                        for c in 0..gy.cols {
                            ds[c] += gy.at(r, c);
                        }
                    }
                    acc(&mut grads[a], gy);
                    acc(&mut grads[row], drow);
                }
                Op::Hadamard { a, b } => {
                    let (a, b) = (*a, *b);
                    let da = gy.hadamard(&self.nodes[b].value);
                    let db = gy.hadamard(&self.nodes[a].value);
                    acc(&mut grads[a], da);
                    acc(&mut grads[b], db);
                }
                Op::Scale { a, s } => {
                    let (a, s) = (*a, *s);
                    acc(&mut grads[a], gy.scale(s));
                }
                Op::AddScalar { a } | Op::AddConst { a } => {
                    let a = *a;
                    acc(&mut grads[a], gy);
                }
                Op::Relu { a } => {
                    let a = *a;
                    let mut dx = gy;
                    for (d, x) in dx
                        .as_mut_slice()
                        .iter_mut()
                        .zip(self.nodes[a].value.as_slice())
                    {
                        if *x <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    acc(&mut grads[a], dx);
                }
                Op::Tanh { a } => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let mut dx = gy;
                    for (d, yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= 1.0 - yv * yv;
                    }
                    acc(&mut grads[a], dx);
                }
                Op::Sigmoid { a } => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let mut dx = gy;
                    for (d, yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                        *d *= yv * (1.0 - yv);
                    }
                    acc(&mut grads[a], dx);
                }
                Op::SoftmaxRows { a } => {
                    let a = *a;
                    let y = &self.nodes[i].value;
                    let mut dx = Tensor::zeros(y.rows, y.cols);
                    let dxs = dx.as_mut_slice();
                    for r in 0..y.rows {
                        let dot: f32 = (0..y.cols).map(|c| gy.at(r, c) * y.at(r, c)).sum();
                        for c in 0..y.cols {
                            dxs[r * y.cols + c] = (gy.at(r, c) - dot) * y.at(r, c);
                        }
                    }
                    acc(&mut grads[a], dx);
                }
                Op::LayerNorm {
                    a,
                    gain,
                    bias,
                    cache,
                } => {
                    let (a, gain, bias) = (*a, *gain, *bias);
                    let cache = cache.clone();
                    let x = &self.nodes[a].value;
                    let g = &self.nodes[gain].value;
                    let d = x.cols as f32;
                    let mut dx = Tensor::zeros(x.rows, x.cols);
                    let mut dg = Tensor::zeros(1, x.cols);
                    let mut db = Tensor::zeros(1, x.cols);
                    let gs = g.as_slice();
                    let dxs = dx.as_mut_slice();
                    let dgs = dg.as_mut_slice();
                    let dbs = db.as_mut_slice();
                    for r in 0..x.rows {
                        let (mean, std) = cache[r];
                        // xhat and row reductions.
                        let mut sum_gdy = 0.0f32;
                        let mut sum_gdy_xhat = 0.0f32;
                        let mut xhat = vec![0.0f32; x.cols];
                        for c in 0..x.cols {
                            xhat[c] = (x.at(r, c) - mean) / std;
                            let gdy = gs[c] * gy.at(r, c);
                            sum_gdy += gdy;
                            sum_gdy_xhat += gdy * xhat[c];
                            dgs[c] += gy.at(r, c) * xhat[c];
                            dbs[c] += gy.at(r, c);
                        }
                        for c in 0..x.cols {
                            let gdy = gs[c] * gy.at(r, c);
                            dxs[r * x.cols + c] =
                                (gdy - sum_gdy / d - xhat[c] * sum_gdy_xhat / d) / std;
                        }
                    }
                    acc(&mut grads[a], dx);
                    acc(&mut grads[gain], dg);
                    acc(&mut grads[bias], db);
                }
                Op::Embed { table, ids } => {
                    let table = *table;
                    let ids = ids.clone();
                    let cols = gy.cols;
                    let t_rows = self.nodes[table].value.rows;
                    let mut dt = Tensor::zeros(t_rows, cols);
                    let dts = dt.as_mut_slice();
                    for (r, id) in ids.iter().enumerate() {
                        for c in 0..cols {
                            dts[id * cols + c] += gy.at(r, c);
                        }
                    }
                    acc(&mut grads[table], dt);
                }
                Op::ConcatCols { a, b } => {
                    let (a, b) = (*a, *b);
                    let ca = self.nodes[a].value.cols;
                    let cb = self.nodes[b].value.cols;
                    let mut da = Tensor::zeros(gy.rows, ca);
                    let mut db = Tensor::zeros(gy.rows, cb);
                    for r in 0..gy.rows {
                        da.row_mut(r).copy_from_slice(&gy.row(r)[..ca]);
                        db.row_mut(r).copy_from_slice(&gy.row(r)[ca..]);
                    }
                    acc(&mut grads[a], da);
                    acc(&mut grads[b], db);
                }
                Op::ConcatRows { parts } => {
                    let parts = parts.clone();
                    let mut r = 0;
                    for p in parts {
                        let rows = self.nodes[p].value.rows;
                        let mut dp = Tensor::zeros(rows, gy.cols);
                        for i in 0..rows {
                            dp.row_mut(i).copy_from_slice(gy.row(r));
                            r += 1;
                        }
                        acc(&mut grads[p], dp);
                    }
                }
                Op::MeanRows { a } => {
                    let a = *a;
                    let rows = self.nodes[a].value.rows;
                    let n = rows.max(1) as f32;
                    let mut dx = Tensor::zeros(rows, gy.cols);
                    let gys = gy.as_slice();
                    let dxs = dx.as_mut_slice();
                    for r in 0..rows {
                        for c in 0..gys.len() {
                            dxs[r * gys.len() + c] = gys[c] / n;
                        }
                    }
                    acc(&mut grads[a], dx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Init;

    /// Finite-difference check of d(loss)/d(param) for a builder closure.
    fn grad_check<F>(param_shape: (usize, usize), build: F)
    where
        F: Fn(&mut Graph<'_>, NodeId) -> (NodeId, Vec<usize>),
    {
        let mut store = ParamStore::new();
        let mut init = Init::new(11);
        let w = store.add("w", init.xavier(param_shape.0, param_shape.1));

        // Analytic gradient.
        {
            let mut g = Graph::new(&mut store);
            let wp = g.param(w);
            let (logits, targets) = build(&mut g, wp);
            g.cross_entropy_backward(logits, &targets);
        }
        let analytic = store.grad(w).clone();

        // Numeric gradient at a few entries.
        let eps = 1e-3f32;
        for &idx in &[0usize, param_shape.1 / 2, param_shape.0 * param_shape.1 - 1] {
            let orig = store.value(w).as_slice()[idx];
            let loss_at = |store: &mut ParamStore, v: f32| {
                store.value_mut(w).as_mut_slice()[idx] = v;
                let mut g = Graph::new(store);
                let wp = g.param(w);
                let (logits, targets) = build(&mut g, wp);
                // Compute loss without touching grads.
                let probs = g.probs(logits);
                let mut loss = 0.0f32;
                for (r, &t) in targets.iter().enumerate() {
                    loss -= probs.at(r, t).max(1e-12).ln();
                }
                loss / targets.len() as f32
            };
            let lp = loss_at(&mut store, orig + eps);
            let lm = loss_at(&mut store, orig - eps);
            store.value_mut(w).as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[idx];
            assert!(
                (a - numeric).abs() < 2e-2 * (1.0 + a.abs().max(numeric.abs())),
                "idx {idx}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_check_linear_softmax() {
        grad_check((4, 5), |g, w| {
            let x = g.constant(Tensor::from_vec(
                3,
                4,
                (0..12).map(|i| (i as f32) * 0.1 - 0.5).collect(),
            ));
            let logits = g.matmul(x, w, false);
            (logits, vec![1, 4, 2])
        });
    }

    #[test]
    fn grad_check_through_relu_layernorm_softmaxrows() {
        grad_check((6, 6), |g, w| {
            let x = g.constant(Tensor::from_vec(
                4,
                6,
                (0..24).map(|i| ((i * 7 % 11) as f32) * 0.1 - 0.4).collect(),
            ));
            let h = g.matmul(x, w, false);
            let h = g.relu(h);
            let gain = g.constant(Tensor::from_vec(1, 6, vec![1.0; 6]));
            let bias = g.constant(Tensor::zeros(1, 6));
            let h = g.layer_norm(h, gain, bias);
            let att = g.matmul(h, h, true);
            let att = g.softmax_rows(att);
            let h2 = g.matmul(att, h, false);
            let logits = g.matmul(h2, w, true);
            (logits, vec![0, 2, 1, 3])
        });
    }

    #[test]
    fn grad_check_embedding_and_gates() {
        grad_check((8, 4), |g, w| {
            let ids = vec![1usize, 3, 5, 1];
            let e = g.embed(w, &ids);
            let z = g.sigmoid(e);
            let t = g.tanh(e);
            let h = g.hadamard(z, t);
            let one_minus = {
                let neg = g.scale(z, -1.0);
                g.add_scalar(neg, 1.0)
            };
            let h2 = g.hadamard(one_minus, e);
            let h = g.add(h, h2);
            let logits = g.matmul(h, w, true);
            (logits, vec![2, 0, 7, 4])
        });
    }

    #[test]
    fn grad_check_concat_and_mean() {
        grad_check((4, 3), |g, w| {
            let x = g.constant(Tensor::from_vec(
                2,
                4,
                vec![0.1, -0.2, 0.3, 0.4, -0.5, 0.6, 0.2, 0.0],
            ));
            let h = g.matmul(x, w, false);
            let hc = g.concat_cols(h, h);
            let m = g.mean_rows(hc);
            // Project 1x6 back through w twice (3+3): split via matmul with
            // constant to get logits 1x4.
            let proj = g.constant(Tensor::from_vec(
                6,
                4,
                (0..24).map(|i| (i as f32) * 0.05 - 0.3).collect(),
            ));
            let logits = g.matmul(m, proj, false);
            (logits, vec![3])
        });
    }

    #[test]
    fn cross_entropy_decreases_under_sgd_like_updates() {
        let mut store = ParamStore::new();
        let mut init = Init::new(5);
        let w = store.add("w", init.xavier(3, 4));
        let mut last = f32::INFINITY;
        for _ in 0..50 {
            let mut g = Graph::new(&mut store);
            let wp = g.param(w);
            let x = g.constant(Tensor::from_vec(2, 3, vec![1., 0., -1., 0.5, 0.5, 0.]));
            let logits = g.matmul(x, wp, false);
            let loss = g.cross_entropy_backward(logits, &[2, 1]);
            store.adam_step(0.05);
            last = loss;
        }
        assert!(last < 0.1, "loss did not converge: {last}");
    }
}
