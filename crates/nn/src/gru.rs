//! A GRU encoder–decoder baseline (no attention).
//!
//! The paper reports that the UniXcoder-based VEGA beats an RNN-based
//! variant by 35–78% in function accuracy; this model is the "RNN-based
//! VEGA" side of that ablation.

use crate::graph::{Graph, NodeId};
use crate::params::{Init, OutProjCache, ParamId, ParamStore};
use crate::seq2seq::Seq2Seq;
use crate::tensor::Tensor;
use std::sync::Arc;
use vega_obs::json::{Json, JsonError};

/// GRU hyperparameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GruConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Maximum sequence length processed.
    pub max_len: usize,
    /// Weight-init seed.
    pub seed: u64,
}

impl GruConfig {
    /// Configuration matched in width to [`crate::TransformerConfig::small`].
    pub fn small(vocab: usize) -> Self {
        GruConfig {
            vocab,
            d_model: 64,
            max_len: 96,
            seed: 0x6B0,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny(vocab: usize) -> Self {
        GruConfig {
            vocab,
            d_model: 16,
            max_len: 24,
            seed: 5,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct GruCell {
    pub(crate) wz: ParamId,
    pub(crate) bz: ParamId,
    pub(crate) wr: ParamId,
    pub(crate) br: ParamId,
    pub(crate) wh: ParamId,
    pub(crate) bh: ParamId,
}

fn pid_json(p: ParamId) -> Json {
    Json::num_usize(p.0)
}

fn pid_from(v: &Json) -> Result<ParamId, JsonError> {
    Ok(ParamId(v.as_usize()?))
}

impl GruCell {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("wz", pid_json(self.wz)),
            ("bz", pid_json(self.bz)),
            ("wr", pid_json(self.wr)),
            ("br", pid_json(self.br)),
            ("wh", pid_json(self.wh)),
            ("bh", pid_json(self.bh)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        Ok(GruCell {
            wz: pid_from(v.field("wz")?)?,
            bz: pid_from(v.field("bz")?)?,
            wr: pid_from(v.field("wr")?)?,
            br: pid_from(v.field("br")?)?,
            wh: pid_from(v.field("wh")?)?,
            bh: pid_from(v.field("bh")?)?,
        })
    }
}

/// GRU encoder–decoder with trainable parameters.
#[derive(Debug, Clone)]
pub struct GruSeq2Seq {
    /// Hyperparameters.
    pub cfg: GruConfig,
    pub(crate) store: ParamStore,
    pub(crate) emb: ParamId,
    pub(crate) enc: GruCell,
    pub(crate) dec: GruCell,
    pub(crate) w_out: ParamId,
    pub(crate) b_out: ParamId,
    /// Cached `w_out` transpose for the dot-form logits path (see
    /// [`crate::Transformer`]'s field of the same name).
    pub(crate) out_t: OutProjCache,
}

fn make_cell(store: &mut ParamStore, init: &mut Init, name: &str, d: usize) -> GruCell {
    GruCell {
        wz: store.add(format!("{name}.wz"), init.xavier(2 * d, d)),
        bz: store.add(format!("{name}.bz"), init.zeros(1, d)),
        wr: store.add(format!("{name}.wr"), init.xavier(2 * d, d)),
        br: store.add(format!("{name}.br"), init.zeros(1, d)),
        wh: store.add(format!("{name}.wh"), init.xavier(2 * d, d)),
        bh: store.add(format!("{name}.bh"), init.zeros(1, d)),
    }
}

fn cell_step(g: &mut Graph<'_>, cell: &GruCell, x: NodeId, h: NodeId) -> NodeId {
    let xin = g.concat_cols(x, h);
    let wz = g.param(cell.wz);
    let bz = g.param(cell.bz);
    let zlin = g.matmul(xin, wz, false);
    let zlin = g.add_row_broadcast(zlin, bz);
    let z = g.sigmoid(zlin);
    let wr = g.param(cell.wr);
    let br = g.param(cell.br);
    let rlin = g.matmul(xin, wr, false);
    let rlin = g.add_row_broadcast(rlin, br);
    let r = g.sigmoid(rlin);
    let rh = g.hadamard(r, h);
    let xrh = g.concat_cols(x, rh);
    let wh = g.param(cell.wh);
    let bh = g.param(cell.bh);
    let hlin = g.matmul(xrh, wh, false);
    let hlin = g.add_row_broadcast(hlin, bh);
    let hcand = g.tanh(hlin);
    // h' = (1 - z) ⊙ h + z ⊙ ĥ
    let negz = g.scale(z, -1.0);
    let one_minus_z = g.add_scalar(negz, 1.0);
    let keep = g.hadamard(one_minus_z, h);
    let new = g.hadamard(z, hcand);
    g.add(keep, new)
}

impl GruSeq2Seq {
    /// Initializes a GRU seq2seq model.
    pub fn new(cfg: GruConfig) -> Self {
        let mut store = ParamStore::new();
        let mut init = Init::new(cfg.seed);
        let d = cfg.d_model;
        let emb = store.add("emb", init.xavier(cfg.vocab, d));
        let enc = make_cell(&mut store, &mut init, "enc", d);
        let dec = make_cell(&mut store, &mut init, "dec", d);
        let w_out = store.add("w_out", init.xavier(d, cfg.vocab));
        let b_out = store.add("b_out", init.zeros(1, cfg.vocab));
        GruSeq2Seq {
            cfg,
            store,
            emb,
            enc,
            dec,
            w_out,
            b_out,
            out_t: OutProjCache::default(),
        }
    }

    /// Number of trainable scalars.
    pub fn num_params(&self) -> usize {
        self.store.num_scalars()
    }

    /// The output projection pre-transposed to `vocab × d` (see
    /// [`crate::Transformer::out_proj_t`]).
    pub(crate) fn out_proj_t(&self) -> Arc<Tensor> {
        self.out_t.get(&self.store, self.w_out)
    }

    /// Projects hidden rows to logits exactly as the incremental fast path
    /// does, including the dot-form branch (see
    /// [`crate::Transformer::project_rows`]).
    fn project_rows(&self, hs: &Tensor) -> Tensor {
        let w = self.store.value(self.w_out);
        let b = self.store.value(self.b_out);
        let wt = self.out_proj_t();
        let mut out = Tensor::zeros(hs.rows, self.cfg.vocab);
        for r in 0..hs.rows {
            crate::decode::project_logits_row(hs.row(r), w, &wt, b.as_slice(), out.row_mut(r));
        }
        out
    }

    /// Restores a model saved with [`Seq2Seq::save_json`].
    ///
    /// # Errors
    /// Returns an error if the JSON does not describe a GRU model.
    pub fn load_json(s: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&Json::parse(s)?)
    }

    /// Scalars held in owned (heap) storage, as opposed to borrowed from a
    /// shared checkpoint mapping. Zero for a freshly mapped model; grows
    /// only when weights are mutated (copy-on-write).
    pub fn owned_scalars(&self) -> usize {
        self.store.owned_scalars()
    }

    /// Serializes to a JSON value for embedding in a larger document.
    pub fn to_json_value(&self) -> Json {
        self.to_json_with(self.store.to_json_value())
    }

    /// Like [`GruSeq2Seq::to_json_value`], but tensor data goes into `table`
    /// and the JSON holds only shapes and byte offsets (the `vega-ckpt/v2`
    /// binary layout).
    pub fn to_json_value_tabled(&self, table: &mut crate::storage::TensorTable) -> Json {
        let store = self.store.to_json_value_tabled(table);
        self.to_json_with(store)
    }

    fn to_json_with(&self, store: Json) -> Json {
        let cfg = Json::obj([
            ("vocab", Json::num_usize(self.cfg.vocab)),
            ("d_model", Json::num_usize(self.cfg.d_model)),
            ("max_len", Json::num_usize(self.cfg.max_len)),
            ("seed", Json::num_u64(self.cfg.seed)),
        ]);
        Json::obj([
            ("cfg", cfg),
            ("store", store),
            ("emb", pid_json(self.emb)),
            ("enc", self.enc.to_json_value()),
            ("dec", self.dec.to_json_value()),
            ("w_out", pid_json(self.w_out)),
            ("b_out", pid_json(self.b_out)),
        ])
    }

    /// Restores from [`GruSeq2Seq::to_json_value`] output.
    ///
    /// # Errors
    /// Returns an error if the value does not describe a GRU model.
    pub fn from_json_value(v: &Json) -> Result<Self, JsonError> {
        let store = ParamStore::from_json_value(v.field("store")?)?;
        Self::from_json_with(v, store)
    }

    /// Restores from [`GruSeq2Seq::to_json_value_tabled`] output, reading
    /// tensor data straight out of `region` (shared, zero-copy where the
    /// platform allows).
    ///
    /// # Errors
    /// Returns an error if the value does not describe a tabled GRU model or
    /// a tensor entry falls outside the region.
    pub fn from_json_value_tabled(
        v: &Json,
        region: &std::sync::Arc<crate::storage::ByteRegion>,
        data_base: usize,
    ) -> Result<Self, JsonError> {
        let store = ParamStore::from_json_value_tabled(v.field("store")?, region, data_base)?;
        Self::from_json_with(v, store)
    }

    fn from_json_with(v: &Json, store: ParamStore) -> Result<Self, JsonError> {
        let c = v.field("cfg")?;
        let cfg = GruConfig {
            vocab: c.field("vocab")?.as_usize()?,
            d_model: c.field("d_model")?.as_usize()?,
            max_len: c.field("max_len")?.as_usize()?,
            seed: c.field("seed")?.as_u64()?,
        };
        let m = GruSeq2Seq {
            cfg,
            store,
            emb: pid_from(v.field("emb")?)?,
            enc: GruCell::from_json_value(v.field("enc")?)?,
            dec: GruCell::from_json_value(v.field("dec")?)?,
            w_out: pid_from(v.field("w_out")?)?,
            b_out: pid_from(v.field("b_out")?)?,
            out_t: OutProjCache::default(),
        };
        // Pre-transpose the output projection once at checkpoint load.
        let _ = m.out_proj_t();
        Ok(m)
    }

    fn encode(cell: &GruCell, emb: ParamId, g: &mut Graph<'_>, src: &[usize], d: usize) -> NodeId {
        let table = g.param(emb);
        let mut h = g.constant(Tensor::zeros(1, d));
        for &id in src {
            let x = g.embed(table, &[id]);
            h = cell_step(g, cell, x, h);
        }
        h
    }
}

impl Seq2Seq for GruSeq2Seq {
    fn train_pair(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        let me = self.clone_descriptors();
        let mut g = Graph::new(&mut self.store);
        let h = Self::encode(&me.0, me.1, &mut g, src, me.2);
        let logits = me.3.decode_logits_ref(&mut g, h, tgt_in);
        g.cross_entropy_backward(logits, tgt_out)
    }

    fn step(&mut self, lr: f32) {
        self.store.adam_step(lr);
    }

    fn take_grads(&mut self) -> Vec<Tensor> {
        self.store.take_grads()
    }

    fn merge_grads(&mut self, grads: &[Tensor]) {
        self.store.merge_grads(grads);
    }

    fn greedy(&mut self, src: &[usize], bos: usize, eos: usize, max_len: usize) -> Vec<usize> {
        let cap = max_len.min(self.cfg.max_len);
        let mut st = self.begin_decode(src);
        let mut out = vec![bos];
        let obs = vega_obs::global();
        while out.len() < cap {
            let t0 = std::time::Instant::now();
            let last = *out.last().expect("out starts with bos");
            let next = crate::seq2seq::argmax(st.step(last)).unwrap_or(eos);
            let dt = t0.elapsed().as_secs_f64();
            obs.observe("decode.step_seconds", dt);
            obs.counter_add("decode.tokens", 1);
            crate::decode::tally::bump(dt);
            if next == eos {
                break;
            }
            out.push(next);
            if crate::seq2seq::looks_degenerate(&out) {
                break;
            }
        }
        out.remove(0);
        out
    }

    fn save_json(&self) -> String {
        self.to_json_value().render()
    }

    fn forced_logprob(&mut self, src: &[usize], tgt_in: &[usize], tgt_out: &[usize]) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        let mut probs = vec![0.0f32; self.cfg.vocab];
        let mut st = self.begin_decode(src);
        let mut lp = 0.0f32;
        for (&ti, &to) in tgt_in.iter().zip(tgt_out.iter()) {
            probs.copy_from_slice(st.step(ti));
            crate::decode::softmax_row(&mut probs);
            lp += probs[to].max(1e-12).ln();
        }
        vega_obs::global().counter_add("decode.scored_tokens", n as u64);
        lp
    }
}

impl GruSeq2Seq {
    /// The pre-fast-path greedy decode: re-encodes `src` and re-runs the
    /// decoder over the whole prefix on a fresh autograd [`Graph`] for every
    /// emitted token. Kept as the reference implementation the equivalence
    /// suite compares the incremental [`Seq2Seq::greedy`] against.
    pub fn greedy_graph(
        &mut self,
        src: &[usize],
        bos: usize,
        eos: usize,
        max_len: usize,
    ) -> Vec<usize> {
        let src = src[..src.len().min(self.cfg.max_len)].to_vec();
        let me = self.clone_descriptors();
        let cap = max_len.min(self.cfg.max_len);
        let mut out = vec![bos];
        while out.len() < cap {
            let hs = {
                let mut g = Graph::new(&mut self.store);
                let h = Self::encode(&me.0, me.1, &mut g, &src, me.2);
                let hs = me.3.decode_hidden_ref(&mut g, h, &out);
                g.value(hs).clone()
            };
            let v = self.project_rows(&hs);
            let next = crate::seq2seq::argmax(v.row(v.rows - 1)).unwrap_or(eos);
            vega_obs::global().counter_add("decode.graph_tokens", 1);
            if next == eos {
                break;
            }
            out.push(next);
            if crate::seq2seq::looks_degenerate(&out) {
                break;
            }
        }
        out.remove(0);
        out
    }

    /// Graph-path teacher-forced log-probability (reference twin of the
    /// incremental [`Seq2Seq::forced_logprob`]; the two must agree bitwise).
    pub fn forced_logprob_graph(
        &mut self,
        src: &[usize],
        tgt_in: &[usize],
        tgt_out: &[usize],
    ) -> f32 {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let n = tgt_in.len().min(tgt_out.len()).min(self.cfg.max_len);
        let (tgt_in, tgt_out) = (&tgt_in[..n], &tgt_out[..n]);
        let me = self.clone_descriptors();
        let hs = {
            let mut g = Graph::new(&mut self.store);
            let h = Self::encode(&me.0, me.1, &mut g, src, me.2);
            let hs = me.3.decode_hidden_ref(&mut g, h, tgt_in);
            g.value(hs).clone()
        };
        let probs = self.project_rows(&hs).softmax_rows();
        let mut lp = 0.0f32;
        for (r, &t) in tgt_out.iter().enumerate() {
            lp += probs.at(r, t).max(1e-12).ln();
        }
        lp
    }

    /// Graph-path logits for a full teacher-forced decode (see
    /// [`Transformer::logits_rows_graph`](crate::Transformer::logits_rows_graph)).
    pub fn logits_rows_graph(&mut self, src: &[usize], tgt_in: &[usize]) -> Tensor {
        let src = &src[..src.len().min(self.cfg.max_len)];
        let tgt_in = &tgt_in[..tgt_in.len().min(self.cfg.max_len)];
        let me = self.clone_descriptors();
        let hs = {
            let mut g = Graph::new(&mut self.store);
            let h = Self::encode(&me.0, me.1, &mut g, src, me.2);
            let hs = me.3.decode_hidden_ref(&mut g, h, tgt_in);
            g.value(hs).clone()
        };
        self.project_rows(&hs)
    }

    /// Graph-path forced decode twin of [`GruSeq2Seq::forced_steps`],
    /// re-running encoder and decoder from scratch per step exactly as the
    /// old greedy loop did.
    pub fn forced_steps_graph(&mut self, src: &[usize], feed: &[usize]) -> Vec<usize> {
        let src = src[..src.len().min(self.cfg.max_len)].to_vec();
        let feed = &feed[..feed.len().min(self.cfg.max_len)];
        let me = self.clone_descriptors();
        let mut out = Vec::with_capacity(feed.len());
        for i in 1..=feed.len() {
            let hs = {
                let mut g = Graph::new(&mut self.store);
                let h = Self::encode(&me.0, me.1, &mut g, &src, me.2);
                let hs = me.3.decode_hidden_ref(&mut g, h, &feed[..i]);
                g.value(hs).clone()
            };
            let v = self.project_rows(&hs);
            out.push(crate::seq2seq::argmax(v.row(v.rows - 1)).unwrap_or(0));
            vega_obs::global().counter_add("decode.graph_tokens", 1);
        }
        out
    }
}

/// Detached descriptors mirroring [`GruSeq2Seq`] minus the store.
struct GruRef {
    emb: ParamId,
    dec: GruCell,
    w_out: ParamId,
    b_out: ParamId,
}

impl GruRef {
    fn decode_logits_ref(&self, g: &mut Graph<'_>, mut h: NodeId, tgt_in: &[usize]) -> NodeId {
        let table = g.param(self.emb);
        let w_out = g.param(self.w_out);
        let b_out = g.param(self.b_out);
        let mut rows = Vec::with_capacity(tgt_in.len());
        for &id in tgt_in {
            let x = g.embed(table, &[id]);
            h = cell_step(g, &self.dec, x, h);
            let logit = g.matmul(h, w_out, false);
            rows.push(g.add_row_broadcast(logit, b_out));
        }
        g.concat_rows(&rows)
    }

    /// The decoder hidden state after each fed token, *without* the output
    /// projection — the twins take these rows out of the graph and project
    /// them through [`GruSeq2Seq::project_rows`] so they branch on the same
    /// dot-form predicate the incremental fast path uses. Training keeps
    /// [`GruRef::decode_logits_ref`] (the projection must live on the tape
    /// for backprop).
    fn decode_hidden_ref(&self, g: &mut Graph<'_>, mut h: NodeId, tgt_in: &[usize]) -> NodeId {
        let table = g.param(self.emb);
        let mut rows = Vec::with_capacity(tgt_in.len());
        for &id in tgt_in {
            let x = g.embed(table, &[id]);
            h = cell_step(g, &self.dec, x, h);
            rows.push(h);
        }
        g.concat_rows(&rows)
    }
}

impl GruSeq2Seq {
    fn clone_descriptors(&self) -> (GruCell, ParamId, usize, GruRef) {
        (
            self.enc.clone(),
            self.emb,
            self.cfg.d_model,
            GruRef {
                emb: self.emb,
                dec: self.dec.clone(),
                w_out: self.w_out,
                b_out: self.b_out,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq2seq::train_until;

    #[test]
    fn learns_a_tiny_mapping() {
        let mut m = GruSeq2Seq::new(GruConfig::tiny(8));
        let pairs = vec![(vec![2usize, 3], vec![3usize]), (vec![4, 5], vec![5])];
        let loss = train_until(&mut m, &pairs, 0, 1, 400, 5e-3, 0.05);
        assert!(loss < 0.3, "gru did not converge: {loss}");
        assert_eq!(m.greedy(&[2, 3], 0, 1, 4), vec![3]);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut m = GruSeq2Seq::new(GruConfig::tiny(8));
        let json = m.save_json();
        let mut m2 = GruSeq2Seq::load_json(&json).unwrap();
        assert_eq!(m.greedy(&[2], 0, 1, 4), m2.greedy(&[2], 0, 1, 4));
        assert_eq!(m.num_params(), m2.num_params());
    }
}
